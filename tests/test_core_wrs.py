"""Tests for the Weighted Request Size formula (§4.3.1)."""

import pytest

from repro.core.wrs import WorkloadBounds, WrsParams, compute_wrs, max_possible_wrs

BOUNDS = WorkloadBounds(max_input_tokens=1000, max_output_tokens=500,
                        max_adapter_bytes=1000)


def test_formula_value():
    # (0.4 * 0.5 + 0.6 * 0.2) * 0.5 = 0.16
    wrs = compute_wrs(500, 100, 500, BOUNDS)
    assert wrs == pytest.approx((0.4 * 0.5 + 0.6 * 0.2) * 0.5)


def test_maximal_request_hits_bound():
    wrs = compute_wrs(1000, 500, 1000, BOUNDS)
    assert wrs == pytest.approx(1.0)
    assert wrs == pytest.approx(max_possible_wrs())


def test_monotone_in_each_knob():
    base = compute_wrs(500, 100, 500, BOUNDS)
    assert compute_wrs(800, 100, 500, BOUNDS) > base
    assert compute_wrs(500, 300, 500, BOUNDS) > base
    assert compute_wrs(500, 100, 900, BOUNDS) > base


def test_adapter_size_multiplies():
    """The degree-2 polynomial: adapter size scales the whole length term."""
    small = compute_wrs(500, 100, 100, BOUNDS)
    large = compute_wrs(500, 100, 800, BOUNDS)
    assert large == pytest.approx(8 * small)


def test_output_weighted_more_than_input():
    """B (0.6) > A (0.4): output dominates the size estimate."""
    more_output = compute_wrs(100, 500, 500, BOUNDS)
    more_input = compute_wrs(1000, 50, 500, BOUNDS)
    assert more_output > more_input


def test_base_request_uses_floor_factor():
    params = WrsParams()
    wrs = compute_wrs(500, 100, None, BOUNDS, params)
    expected = (0.4 * 0.5 + 0.6 * 0.2) * params.base_adapter_factor
    assert wrs == pytest.approx(expected)


def test_values_clamped_at_bounds():
    over = compute_wrs(5000, 9999, 5000, BOUNDS)
    assert over == pytest.approx(1.0)


def test_output_only_mode():
    params = WrsParams(mode="output_only")
    assert compute_wrs(1000, 250, 1000, BOUNDS, params) == pytest.approx(0.5)
    assert max_possible_wrs(params) == 1.0
    # Input and adapter are ignored.
    assert compute_wrs(1, 250, 1, BOUNDS, params) == compute_wrs(1000, 250, 1000, BOUNDS, params)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        WrsParams(mode="bogus")


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        WorkloadBounds(0, 10, 10)
    with pytest.raises(ValueError):
        WorkloadBounds(10, 10, 0)


def test_linear_mode_adds_adapter_term():
    params = WrsParams(mode="linear")
    wrs = compute_wrs(500, 100, 500, BOUNDS, params)
    expected = (0.4 * 0.5 + 0.6 * 0.2 + 0.5 * 0.5) / 1.5
    assert wrs == pytest.approx(expected)


def test_linear_mode_nonzero_for_zero_length_term():
    """Unlike the degree-2 product, the linear form keeps adapter-only mass."""
    params = WrsParams(mode="linear")
    tiny_lengths = compute_wrs(1, 1, 1000, BOUNDS, params)
    assert tiny_lengths > 0.3  # the adapter term alone carries weight


def test_linear_max_possible():
    params = WrsParams(mode="linear")
    top = compute_wrs(1000, 500, 1000, BOUNDS, params)
    assert top == pytest.approx(max_possible_wrs(params))


def test_linear_vs_degree2_disagree_on_ordering():
    """The degree-2 form couples adapter size with length; the linear form
    does not — a big-adapter/short request can outrank a small-adapter/long
    request only under the linear form."""
    params2 = WrsParams(mode="chameleon")
    params1 = WrsParams(mode="linear")
    short_big = (50, 20, 1000)     # short lengths, max adapter
    long_small = (450, 200, 120)   # longer lengths, small adapter
    assert compute_wrs(*short_big, BOUNDS, params2) < compute_wrs(*long_small, BOUNDS, params2)
    assert compute_wrs(*short_big, BOUNDS, params1) > compute_wrs(*long_small, BOUNDS, params1)
