"""Lifecycle invariants of the elastic cluster under random interleavings.

Hypothesis drives random sequences of arrivals, finishes, scale-outs (with
and without cold-start delays), scale-ins and clock advances against the
real :class:`DataParallelCluster` + :class:`Simulator`, for every dispatch
policy, and asserts after every operation:

* **No dispatch to non-ACTIVE replicas** — the fake engine asserts its
  handle is ACTIVE on every ``submit`` (provisioning/warming replicas have
  not joined; draining/retired ones accept nothing new).
* **Request conservation** — every arrival is in exactly one place
  (submitted to exactly one engine, pending at the cluster, or shed), with
  no duplicates, through arbitrary scale events and scale-in drains.
* **Drain completion** — a DRAINING replica still holds in-flight work;
  the moment it drains it is RETIRED (never stuck), and its previously
  submitted requests remain accounted.
* **Lifecycle sanity** — states only move along legal edges (the handle
  itself enforces this), cold replicas cancelled by a scale-in never
  activate later, and capability weights stay normalized over the active
  set.

With fault ops in the mix (crashes with/without migration, transient
stalls) the conservation law grows a term: every arrival is submitted,
pending, shed *or lost* — ``completed + shed + lost == submitted`` at the
end of a drained run — dispatch never targets FAILED or stalled replicas,
and the offer accounting closes as ``arrivals == fresh arrivals +
migrations``.  Fault-free op sequences exercise exactly the historic
assertions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import DataParallelCluster
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import Autoscaler, AutoscaleConfig
from repro.sim.simulator import Simulator
from repro.workload.request import Request


class _LifecycleEngine:
    """Saturable fake engine that asserts the lifecycle dispatch contract."""

    def __init__(self, capacity, sim):
        self.capacity = capacity
        self.sim = sim
        self.submitted = []
        self.in_flight = []
        self.finished = []
        self._callbacks = []
        self.adapter_manager = self
        # The cluster creates the handle inside add_replica (and a zero-delay
        # scale-out may drain queued work into this engine before the call
        # returns), so the handle is looked up lazily from the cluster.
        self.cluster = None
        self._handle = None

    @property
    def handle(self):
        if self._handle is None and self.cluster is not None:
            for candidate in self.cluster.handles:
                if candidate.engine is self:
                    self._handle = candidate
                    break
        return self._handle

    def in_flight_count(self):
        return len(self.in_flight)

    def is_resident(self, adapter_id):
        return adapter_id is not None and adapter_id % 2 == 0

    def is_saturated(self):
        return len(self.in_flight) >= self.capacity

    def on_finish(self, callback):
        self._callbacks.append(callback)

    def submit(self, request):
        assert self.handle is not None and self.handle.accepts_work, \
            f"dispatch to ineligible replica (state={self.handle.state}, " \
            f"stalled={self.handle.stalled})"
        assert not self.is_saturated(), "submitted to a saturated engine"
        self.submitted.append(request)
        self.in_flight.append(request)

    def finish_one(self):
        request = self.in_flight.pop(0)
        self.finished.append(request)
        for callback in self._callbacks:
            callback(request)

    def fail(self, *, migrate=True, retry_started=True):
        # Crash contract of the real engine, in miniature: the first half
        # of the in-flight set counts as "started serving", the rest as
        # recoverable; recoverable work leaves this engine's accounting.
        half = len(self.in_flight) // 2
        started, fresh = self.in_flight[:half], self.in_flight[half:]
        self.in_flight = []
        if migrate:
            recoverable = fresh + (started if retry_started else [])
            lost = [] if retry_started else started
        else:
            recoverable, lost = [], started + fresh
        for request in recoverable:
            self.submitted.remove(request)
        return recoverable, lost


def _ops(faults: bool = False):
    """Random op sequences over the elastic cluster."""
    kinds = ["arrive", "finish", "scale_out", "scale_in", "advance"]
    if faults:
        kinds += ["fail", "stall"]
    return st.lists(
        st.tuples(
            st.sampled_from(kinds),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1, max_size=50,
    )


def _run_lifecycle(policy, ops, capacity, slo_policy=None):
    sim = Simulator()
    engines = [_LifecycleEngine(capacity, sim) for _ in range(2)]
    cluster = DataParallelCluster(
        engines, policy=policy, slo_policy=slo_policy, sim=sim,
        rng=np.random.default_rng(7))
    for engine in engines:
        engine.cluster = cluster
    arrived: list = []
    for kind, draw in ops:
        if kind == "arrive":
            request = Request(
                request_id=len(arrived), arrival_time=sim.now,
                input_tokens=10, output_tokens=2,
                adapter_id=draw if draw < 4 else None)
            arrived.append(request)
            cluster.dispatch(request)
        elif kind == "finish":
            busy = [e for e in cluster.engines if e.in_flight]
            if busy:
                busy[draw % len(busy)].finish_one()
        elif kind == "scale_out":
            if cluster.fleet_size() < 5:
                delay = (draw % 3) * 0.4  # 0, 0.4 or 0.8s cold start
                engine = _LifecycleEngine(capacity, sim)
                engine.cluster = cluster
                cluster.add_replica(engine, provision_delay=delay)
        elif kind == "scale_in":
            candidates = [h for h in cluster.handles if h.in_fleet]
            if len(candidates) > 1:  # keep one replica on its way in
                cluster.drain_replica(candidates[draw % len(candidates)].index)
        elif kind == "fail":
            candidates = [h for h in cluster.handles
                          if not (h.is_retired or h.is_failed)]
            if candidates:
                # Crash with every recovery model the fault layer offers:
                # full migration, no started-retry, and total no-recovery.
                cluster.fail_replica(
                    candidates[draw % len(candidates)].index,
                    migrate=draw % 3 != 0,
                    retry_started=draw % 2 == 0)
        elif kind == "stall":
            active = [h for h in cluster.handles if h.is_active]
            if active:
                cluster.stall_replica(active[draw % len(active)].index,
                                      0.2 + 0.1 * (draw % 4))
        else:  # advance: fire pending cold-start and stall timers
            sim.run(until=sim.now + 0.5)

        # --- invariants, after every operation -------------------------- #
        # Lost requests stay in their dead engine's ``submitted`` (the
        # all_requests analog), so the identity conservation is unchanged;
        # the lost set is additionally flagged and engine-resident.
        in_engines = [r.request_id for e in cluster.engines for r in e.submitted]
        pending = [r.request_id for r in cluster.pending_requests()]
        shed = [r.request_id for r in cluster.shed_requests()]
        lost = [r.request_id for r in cluster.lost_requests()]
        assert len(in_engines) == len(set(in_engines)), "duplicated dispatch"
        assert sorted(in_engines + pending + shed) == \
            [r.request_id for r in arrived], "request lost or duplicated"
        assert all(r.lost for r in cluster.lost_requests())
        assert set(lost) <= set(in_engines)
        # Offer accounting: every offer (fresh arrival or migration
        # re-offer) ends dispatched, queued or shed — exactly once.
        assert cluster.stats.arrivals == \
            len(arrived) + cluster.stats.migrations
        assert cluster.stats.dispatched + cluster.queue_len() \
            + cluster.stats.shed == cluster.stats.arrivals
        for handle in cluster.handles:
            if handle.is_draining:
                assert handle.in_flight() > 0, \
                    "idle DRAINING replica not retired"
            if handle.is_retired:
                assert handle.retired_at is not None
            if handle.is_failed:
                assert handle.failed_at is not None
                assert handle.in_flight() == 0, \
                    "FAILED replica still holds in-flight work"
        # Weights stay normalized over the active set (mean 1.0) and every
        # non-active replica keeps the neutral weight.
        active = cluster.active_indices()
        weights = cluster.capability_weights()
        if active:
            assert sum(weights[i] for i in active) / len(active) == \
                pytest.approx(1.0)
        for i, handle in enumerate(cluster.handles):
            if not handle.is_active:
                assert weights[i] == 1.0
    # Drain everything that can still run: activate pending cold starts,
    # then finish all in-flight work.
    sim.run()
    for _ in range(10_000):
        busy = [e for e in cluster.engines if e.in_flight]
        if not busy:
            break
        busy[0].finish_one()
    # Every draining replica retired once empty; nothing was dropped.
    for handle in cluster.handles:
        assert not handle.is_draining
    in_engines = [r.request_id for e in cluster.engines for r in e.submitted]
    pending = [r.request_id for r in cluster.pending_requests()]
    shed = [r.request_id for r in cluster.shed_requests()]
    assert sorted(in_engines + pending + shed) == \
        [r.request_id for r in arrived]
    # Terminal conservation with faults in play: every arrival either
    # completed, was shed, was stranded by a crash, or is still pending
    # (possible only when the whole fleet died under it).
    finished = [r.request_id for e in cluster.engines for r in e.finished]
    lost = [r.request_id for r in cluster.lost_requests()]
    assert sorted(finished + shed + lost + pending) == \
        [r.request_id for r in arrived]
    return cluster


@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
@given(ops=_ops(), capacity=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_lifecycle_interleavings_conserve_requests(policy, ops, capacity):
    _run_lifecycle(policy, ops, capacity)


@pytest.mark.parametrize("mode", SloPolicy.MODES)
@given(ops=_ops(),
       policy=st.sampled_from(DataParallelCluster.POLICIES),
       deadline=st.floats(min_value=0.05, max_value=2.0))
@settings(max_examples=15, deadline=None)
def test_lifecycle_interleavings_with_slo(mode, ops, policy, deadline):
    slo_policy = SloPolicy(ttft_deadline=deadline, mode=mode)
    cluster = _run_lifecycle(policy, ops, capacity=1, slo_policy=slo_policy)
    assert all(r.shed for r in cluster.shed_requests())


@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
@given(ops=_ops(faults=True), capacity=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_fault_interleavings_conserve_requests(policy, ops, capacity):
    """Crashes (all three recovery models) and transient stalls woven into
    arbitrary scale/arrival/finish interleavings: conservation now reads
    ``completed + shed + lost (+ pending on a dead fleet) == submitted``,
    and no dispatch ever targets a FAILED or stalled replica."""
    _run_lifecycle(policy, ops, capacity)


@given(ops=_ops(faults=True),
       policy=st.sampled_from(DataParallelCluster.POLICIES),
       deadline=st.floats(min_value=0.05, max_value=2.0))
@settings(max_examples=15, deadline=None)
def test_fault_interleavings_with_slo_shed(ops, policy, deadline):
    # Migrated re-offers go through SLO admission like fresh arrivals: a
    # re-offer past the knee is shed, and the shed set stays consistent.
    slo_policy = SloPolicy(ttft_deadline=deadline, mode="shed")
    cluster = _run_lifecycle(policy, ops, capacity=1, slo_policy=slo_policy)
    assert all(r.shed for r in cluster.shed_requests())


# --------------------------------------------------------------------- #
# Autoscaled interleavings: the control loop (reactive and predictive)
# drives every scale event itself — bounds, cooldowns and conservation
# must hold through arbitrary arrival/finish/advance interleavings.
# --------------------------------------------------------------------- #
def _autoscale_ops():
    return st.lists(
        st.tuples(
            st.sampled_from(["arrive", "burst", "finish", "advance"]),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=5, max_size=40,
    )


def _assert_autoscale_invariants(cluster, scaler, config, arrived):
    # Fleet bounds: the floor counts provisioning/warming/active replicas,
    # the ceiling everything still holding a GPU (draining included).
    assert cluster.fleet_size() >= config.min_replicas
    assert cluster.holding_count() <= config.max_replicas
    # Request conservation through forecast-driven scale events.
    in_engines = [r.request_id for e in cluster.engines for r in e.submitted]
    pending = [r.request_id for r in cluster.pending_requests()]
    assert len(in_engines) == len(set(in_engines))
    assert sorted(in_engines + pending) == [r.request_id for r in arrived]
    # Cooldowns: consecutive same-direction events are spaced >= cooldown
    # (predictive and reactive scale-outs share one cooldown clock).
    for action in ("scale_out", "scale_in"):
        times = [e["time"] for e in scaler.events if e["action"] == action]
        assert all(b - a >= config.cooldown - 1e-9
                   for a, b in zip(times, times[1:]))


def test_throughput_counts_replicas_retired_mid_tick():
    # Regression: a draining replica that flushes its last batch and
    # retires inside a tick still contributed those finishes — crediting
    # them to the survivors alone would latch phantom per-replica capacity
    # in the peak ratchet (it never decays) and under-provision every
    # later predictive target.
    sim = Simulator()
    engines = [_LifecycleEngine(4, sim) for _ in range(2)]
    cluster = DataParallelCluster(engines, policy="least_loaded", sim=sim,
                                  rng=np.random.default_rng(7))
    for engine in engines:
        engine.cluster = cluster
    config = AutoscaleConfig(min_replicas=1, max_replicas=4,
                             tick_interval=1.0, mode="predictive")
    scaler = Autoscaler(sim=sim, cluster=cluster, config=config,
                        provision=lambda *a, **k: None)
    scaler.start(until=3.0)
    for i in range(8):  # fill both engines (JSQ alternates)
        cluster.dispatch(Request(request_id=i, arrival_time=0.0,
                                 input_tokens=10, output_tokens=2))
    sim.run(until=1.2)  # first tick (t=1) passes with zero finishes
    cluster.drain_replica(1)
    for _ in range(4):  # the drainer flushes its whole batch mid-tick...
        engines[1].finish_one()
    assert cluster.handles[1].is_retired  # ...and retires on its last finish
    sim.run(until=2.2)  # tick at t=2 observes the 4 finishes
    # 4 finishes over 1s across 2 serving replicas (the survivor + the
    # mid-tick retiree) = 2/s per replica, not 4/s.
    assert scaler._peak_service_rate == pytest.approx(2.0)


@pytest.mark.parametrize("mode", AutoscaleConfig.MODES)
@given(ops=_autoscale_ops(), capacity=st.integers(min_value=1, max_value=3))
@settings(max_examples=12, deadline=None)
def test_autoscaled_interleavings_respect_bounds(mode, ops, capacity):
    sim = Simulator()
    engines = [_LifecycleEngine(capacity, sim)]
    cluster = DataParallelCluster(
        engines, policy="least_loaded", sim=sim,
        rng=np.random.default_rng(7))
    engines[0].cluster = cluster
    config = AutoscaleConfig(
        min_replicas=1, max_replicas=4, tick_interval=0.5,
        provision_delay=0.5, cooldown=1.0, sustain_ticks=1,
        queue_wait_threshold=0.2, idle_sustain_ticks=2,
        mode=mode, forecast_window=5.0, forecast_cycle=10.0)

    def provision(spec, *, provision_delay, warmup_delay):
        engine = _LifecycleEngine(capacity, sim)
        engine.cluster = cluster
        return cluster.add_replica(engine, provision_delay=provision_delay,
                                   warmup_delay=warmup_delay)

    scaler = Autoscaler(sim=sim, cluster=cluster, config=config,
                        provision=provision)
    scaler.start(until=100.0)
    arrived: list = []

    def arrive(n):
        for _ in range(n):
            request = Request(request_id=len(arrived), arrival_time=sim.now,
                              input_tokens=10, output_tokens=2)
            arrived.append(request)
            cluster.dispatch(request)

    for kind, draw in ops:
        if kind == "arrive":
            arrive(1)
        elif kind == "burst":
            arrive(4 + draw)
        elif kind == "finish":
            busy = [e for e in cluster.engines if e.in_flight]
            if busy:
                busy[draw % len(busy)].finish_one()
        else:  # advance: fire ticks and cold-start timers
            sim.run(until=sim.now + 0.6)
        _assert_autoscale_invariants(cluster, scaler, config, arrived)

    # Drain: finish everything (queued work re-dispatches on finish
    # events), then let pending timers fire and ticks wind down.
    for _ in range(10_000):
        busy = [e for e in cluster.engines if e.in_flight]
        if not busy:
            break
        busy[0].finish_one()
    scaler.stop()
    sim.run()
    _assert_autoscale_invariants(cluster, scaler, config, arrived)
    if mode == "reactive":
        assert scaler.predictive_scale_out_count == 0
    else:
        # Every forecast-driven event stayed within the ceiling and left a
        # full diagnostic record.
        for event in scaler.events:
            if event.get("reason") == "predictive":
                assert event["holding"] <= config.max_replicas
                assert event["forecast_lower"] > 0
                # The recorded fleet size includes the newcomers; the target
                # must have exceeded the fleet as it stood before them.
                assert event["target_replicas"] > \
                    event["fleet_size"] - len(event["replicas"])
