"""Tests for the request lifecycle record."""

import pytest

from repro.workload.request import Request, RequestState


def _req(**kw):
    defaults = dict(request_id=0, arrival_time=0.0, input_tokens=100, output_tokens=10)
    defaults.update(kw)
    return Request(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        _req(input_tokens=0)
    with pytest.raises(ValueError):
        _req(output_tokens=0)


def test_initial_state():
    r = _req()
    assert r.state is RequestState.CREATED
    assert not r.finished
    assert r.uses_adapter is False
    assert _req(adapter_id=3).uses_adapter is True


def test_context_tokens_track_generation():
    r = _req()
    assert r.context_tokens == 100
    r.tokens_generated = 4
    assert r.context_tokens == 104


def test_remaining_prefill():
    r = _req()
    assert r.remaining_prefill_tokens == 100
    r.prefill_done_tokens = 60
    assert r.remaining_prefill_tokens == 40


def test_ttft_and_e2e():
    r = _req(arrival_time=1.0)
    r.first_token_time = 1.5
    r.finish_time = 3.0
    r.state = RequestState.FINISHED
    assert r.ttft == pytest.approx(0.5)
    assert r.e2e_latency == pytest.approx(2.0)


def test_ttft_before_first_token_raises():
    with pytest.raises(RuntimeError):
        _req().ttft
    with pytest.raises(RuntimeError):
        _req().e2e_latency


def test_queueing_delay():
    r = _req()
    r.enqueue_time = 2.0
    r.admit_time = 2.7
    assert r.queueing_delay == pytest.approx(0.7)
    r2 = _req()
    with pytest.raises(RuntimeError):
        r2.queueing_delay


def test_token_gaps():
    r = _req()
    r.token_times = [1.0, 1.1, 1.35]
    gaps = r.token_gaps()
    assert gaps == [pytest.approx(0.1), pytest.approx(0.25)]
    assert _req().token_gaps() == []
