"""Tests for the cache eviction policies (§4.2.2, §5.3.3)."""

import pytest

from repro.core.eviction import (
    ChameleonScorePolicy,
    FairSharePolicy,
    GdsfPolicy,
    LruPolicy,
    make_policy,
)
from repro.serving.adapter_manager import AdapterEntry

MB = 1024 * 1024


def _entry(aid, rank, size_mb, last_used=0.0, uses=0, use_times=None):
    entry = AdapterEntry(adapter_id=aid, rank=rank, size_bytes=size_mb * MB)
    times = use_times if use_times is not None else [last_used] * max(1, uses)
    for t in times if uses or use_times else []:
        entry.record_use(t)
    if entry.last_used == float("-inf"):
        entry.last_used = last_used
    return entry


def test_chameleon_evicts_small_cold_first():
    """Small + cold + unpopular scores lowest; big + hot + popular survives."""
    cold_small = _entry(0, 8, 16, last_used=0.0, uses=1)
    hot_big = _entry(1, 128, 256, last_used=99.0, uses=20, use_times=[99.0] * 20)
    order = ChameleonScorePolicy().order([hot_big, cold_small], now=100.0)
    assert order[0] is cold_small


def test_chameleon_size_term_protects_large_adapters():
    """§4.2.2: larger adapters are costlier to reload, evict smaller first."""
    small = _entry(0, 8, 16, last_used=50.0, uses=3, use_times=[50.0] * 3)
    large = _entry(1, 128, 256, last_used=50.0, uses=3, use_times=[50.0] * 3)
    order = ChameleonScorePolicy().order([large, small], now=60.0)
    assert order[0] is small


def test_chameleon_frequency_term():
    popular = _entry(0, 32, 64, uses=30, use_times=[40.0] * 30)
    unpopular = _entry(1, 32, 64, uses=1, use_times=[40.0])
    order = ChameleonScorePolicy().order([popular, unpopular], now=50.0)
    assert order[0] is unpopular


def test_chameleon_recency_term():
    recent = _entry(0, 32, 64, use_times=[99.0])
    stale = _entry(1, 32, 64, use_times=[1.0])
    order = ChameleonScorePolicy().order([recent, stale], now=100.0)
    assert order[0] is stale


def test_chameleon_weights_sum_close_to_one():
    p = ChameleonScorePolicy()
    assert p.f_weight + p.r_weight + p.s_weight == pytest.approx(1.0)
    assert (p.f_weight, p.r_weight, p.s_weight) == (0.45, 0.10, 0.45)


def test_fairshare_equal_weights():
    p = FairSharePolicy()
    assert p.f_weight == pytest.approx(1 / 3)
    assert p.name == "fairshare"


def test_fairshare_differs_from_chameleon():
    """FairShare weights recency 3.3x more than the tuned policy, so a
    fresh-but-small-and-rarer adapter can outrank a stale large one."""
    fresh_small = _entry(0, 8, 205)
    fresh_small.frequency = 0.8
    fresh_small._freq_updated = 100.0
    fresh_small.last_used = 100.0          # recency ~ 1
    stale_large = _entry(1, 128, 256)
    stale_large.frequency = 1.0
    stale_large._freq_updated = 100.0
    stale_large.last_used = -1000.0        # recency ~ 0
    fair = FairSharePolicy().order([fresh_small, stale_large], now=100.0)
    cham = ChameleonScorePolicy().order([fresh_small, stale_large], now=100.0)
    assert fair[0] is stale_large          # recency dominates FairShare
    assert cham[0] is fresh_small          # cost-aware weights evict the small one


def test_lru_orders_by_last_used():
    a = _entry(0, 8, 16, use_times=[5.0])
    b = _entry(1, 8, 16, use_times=[1.0])
    c = _entry(2, 8, 16, use_times=[9.0])
    order = LruPolicy().order([a, b, c], now=10.0)
    assert [e.adapter_id for e in order] == [1, 0, 2]


def test_gdsf_prefers_evicting_low_frequency():
    policy = GdsfPolicy(link_bandwidth=10 * 1024 ** 3)
    rare = _entry(0, 32, 64, uses=1, use_times=[50.0])
    popular = _entry(1, 32, 64, uses=25, use_times=[50.0] * 25)
    policy.on_access(rare, 50.0)
    policy.on_access(popular, 50.0)
    order = policy.order([popular, rare], now=50.0)
    assert order[0] is rare


def test_gdsf_aggressively_evicts_large_moderate_frequency():
    """The §5.3.3 critique: cost/size ~ constant, so a large adapter with
    moderate frequency loses to a small one with the same frequency."""
    policy = GdsfPolicy(link_bandwidth=10 * 1024 ** 3)
    large = _entry(0, 128, 256, uses=3, use_times=[50.0] * 3)
    small = _entry(1, 8, 16, uses=3, use_times=[50.0] * 3)
    policy.on_access(large, 50.0)
    policy.on_access(small, 50.0)
    order = policy.order([large, small], now=50.0)
    assert order[0] is large


def test_gdsf_inflation_ages_out_old_entries():
    policy = GdsfPolicy(link_bandwidth=10 * 1024 ** 3)
    victim = _entry(0, 32, 64, uses=2, use_times=[10.0] * 2)
    policy.on_access(victim, 10.0)
    policy.on_evict(victim)
    assert policy.inflation > 0.0
    # A new entry accessed after the eviction starts above the old scores.
    newcomer = _entry(1, 32, 64, uses=1, use_times=[20.0])
    policy.on_access(newcomer, 20.0)
    assert newcomer.gdsf_h > victim.gdsf_h - policy.inflation


def test_make_policy_factory():
    assert isinstance(make_policy("chameleon"), ChameleonScorePolicy)
    assert isinstance(make_policy("fairshare"), FairSharePolicy)
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("gdsf", link_bandwidth=1e9), GdsfPolicy)
    with pytest.raises(ValueError):
        make_policy("gdsf")
    with pytest.raises(ValueError):
        make_policy("bogus")


def test_order_empty_candidates():
    assert ChameleonScorePolicy().order([], now=0.0) == []


def test_decayed_frequency_halves_at_half_life():
    from repro.serving.adapter_manager import FREQUENCY_HALF_LIFE

    entry = _entry(0, 8, 16)
    entry.record_use(0.0)
    assert entry.decayed_frequency(0.0) == pytest.approx(1.0)
    assert entry.decayed_frequency(FREQUENCY_HALF_LIFE) == pytest.approx(0.5)
