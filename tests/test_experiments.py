"""Tests for the experiment harness (tiny-scale runs of every figure)."""

import pytest

from repro.experiments import ExperimentResult, get_experiment, list_experiments
from repro.experiments.common import ExperimentResult as CommonResult
from repro.experiments.common import standard_registry, standard_trace, trace_slo


def test_registry_covers_all_figures():
    expected = {f"fig{n:02d}" for n in (2, 3, 4, 5, 6, 7, 8)} | {
        f"fig{n}" for n in range(11, 28)} | {
        "fig28_autoscale", "fig29_predictive_autoscale",
        "fig30_fault_recovery", "fig31_region_scaling",
        "fig32_tenant_fairness",
        "abl_wrs_degree", "abl_eviction_weights", "abl_gdsf",
        "abl_load_stall", "abl_dp_dispatch", "abl_slo_admission",
        "abl_capability_estimator", "abl_fault_chaos"}
    assert set(list_experiments()) == expected


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_result_table_rendering():
    result = ExperimentResult(
        experiment="demo", description="demo rows",
        rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}],
        notes=["hello"],
    )
    table = result.to_table()
    assert "demo rows" in table
    assert "hello" in table
    assert "0.125" in table
    assert result.column("a") == [1, 10]


def test_result_table_empty():
    result = ExperimentResult("demo", "x", rows=[])
    assert "no rows" in result.to_table()


def test_trace_slo_is_positive_and_scales():
    registry = standard_registry(n_adapters=20)
    trace = standard_trace(rps=4.0, duration=20.0, registry=registry, seed=2)
    slo5 = trace_slo(trace, registry, multiplier=5.0)
    slo10 = trace_slo(trace, registry, multiplier=10.0)
    assert slo5 > 0
    assert slo10 == pytest.approx(2 * slo5)


# ----------------------------------------------------------------------- #
# Analytic experiments run at full scale (they are instant).
# ----------------------------------------------------------------------- #
def test_fig02_matches_paper():
    result = get_experiment("fig02")()
    for row in result.rows:
        assert row["ttft_ms"] == pytest.approx(row["paper_ttft_ms"], rel=0.03)


def test_fig03_rank_ordering():
    result = get_experiment("fig03")()
    for row in result.rows:
        ranks = [row[f"ttft_r{r}_s"] for r in (8, 16, 32, 64, 128)]
        assert ranks == sorted(ranks)


def test_fig05_monotone_in_tp():
    result = get_experiment("fig05")()
    for row in result.rows:
        assert row["load_share_tp2"] < row["load_share_tp4"] < row["load_share_tp8"]


def test_fig07_lora_dominates_base():
    result = get_experiment("fig07")(n_requests=200)
    for row in result.rows:
        assert row["lora_e2e_s"] > row["base_e2e_s"]


# ----------------------------------------------------------------------- #
# Simulation experiments at miniature scale: structure and sanity only.
# ----------------------------------------------------------------------- #
def test_fig06_timeline_structure():
    result = get_experiment("fig06")(duration=30.0, sample_interval=2.0)
    assert len(result.rows) >= 5
    for row in result.rows:
        assert 0 <= row["idle_gb"] <= row["capacity_gb"]


def test_fig11_structure():
    result = get_experiment("fig11")(
        loads=(6.0, 10.0), duration=40.0, warmup=5.0,
        systems=("slora", "chameleon"))
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["slora_p99_s"] > 0
        assert row["chameleon_p99_s"] > 0
    assert isinstance(result, CommonResult)


def test_fig14_structure():
    result = get_experiment("fig14")(rps=8.0, duration=40.0, warmup=5.0)
    rows = {row["preset"]: row for row in result.rows}
    assert 0.0 <= rows["chameleon"]["zero_load_share"] <= 1.0
    assert rows["chameleon"]["zero_load_share"] >= rows["slora"]["zero_load_share"]


def test_fig19_structure():
    result = get_experiment("fig19")(
        rps=7.0, duration=40.0, accuracies=(1.0, 0.6), warmup=5.0)
    assert len(result.rows) == 4
    oracle_rows = [row for row in result.rows if row["accuracy"] == 1.0]
    assert all(row["observed_accuracy"] == 1.0 for row in oracle_rows)


def test_fig22_structure():
    result = get_experiment("fig22")(
        duration=40.0, warmup=5.0, loads={"low": 5.0, "high": 10.0})
    assert {row["load"] for row in result.rows} == {"low", "high"}
    for row in result.rows:
        assert row["chameleon_norm"] > 0


def test_abl_slo_admission_structure():
    result = get_experiment("abl_slo_admission")(
        rps=30.0, duration=30.0, warmup=5.0, n_replicas=2)
    by_mode = {row["mode"]: row for row in result.rows}
    assert set(by_mode) == {"none", "shed", "deprioritize"}
    assert by_mode["none"]["shed"] == 0
    assert by_mode["shed"]["shed"] > 0
    assert by_mode["deprioritize"]["deprioritized"] > 0
    # Past the knee, admission control protects goodput.
    assert by_mode["shed"]["goodput_rps"] > by_mode["none"]["goodput_rps"]
    for row in result.rows:
        assert 0.0 <= row["slo_attainment"] <= 1.0


def test_fig27_structure():
    result = get_experiment("fig27")(rps=36.0, duration=25.0, warmup=5.0)
    assert len(result.rows) == 4  # 2 policies x {raw, normalized}
    assert {row["policy"] for row in result.rows} == {"least_loaded", "p2c"}
    for row in result.rows:
        assert row["p99_ttft_s"] > 0
        assert row["load_imbalance"] >= 1.0
    weights = result.params["capability_weights"]
    assert len(weights) == 4
    assert weights[0] > 1.0 > weights[-1]
