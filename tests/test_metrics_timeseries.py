"""Tests for the windowed time-series metrics."""

import pytest

from repro.metrics.timeseries import (
    batch_occupancy_series,
    peak_concurrency,
    windowed_goodput,
    windowed_throughput,
)
from repro.workload.request import Request, RequestState


def _finished(rid, admit, finish, ttft=0.1):
    r = Request(request_id=rid, arrival_time=admit, input_tokens=10, output_tokens=2)
    r.enqueue_time = admit
    r.admit_time = admit
    r.first_token_time = admit + ttft
    r.finish_time = finish
    r.state = RequestState.FINISHED
    return r


def test_windowed_throughput_counts_completions():
    reqs = [_finished(i, 0.0, finish=float(i)) for i in range(1, 9)]
    series = windowed_throughput(reqs, window=4.0, horizon=8.0)
    assert len(series) == 2
    # Finishes at 1,2,3 land in bin 0; 4..8 (boundary included right) in bin 1.
    assert series[0].value == pytest.approx(3 / 4.0)
    assert series[1].value == pytest.approx(5 / 4.0)


def test_windowed_throughput_ignores_unfinished():
    pending = Request(request_id=0, arrival_time=0.0, input_tokens=5, output_tokens=5)
    series = windowed_throughput([pending], window=1.0, horizon=2.0)
    assert all(p.value == 0.0 for p in series)


def test_windowed_throughput_validates():
    with pytest.raises(ValueError):
        windowed_throughput([], window=0.0, horizon=1.0)


def test_goodput_excludes_slo_violations():
    good = _finished(0, 0.0, 1.0, ttft=0.1)
    bad = _finished(1, 0.0, 1.5, ttft=9.0)
    series = windowed_goodput([good, bad], window=2.0, horizon=2.0, slo_ttft=1.0)
    assert series[0].value == pytest.approx(0.5)   # 1 request / 2 s


def test_goodput_validates_slo():
    with pytest.raises(ValueError):
        windowed_goodput([], window=1.0, horizon=1.0, slo_ttft=0.0)


def test_batch_occupancy_series_means():
    samples = [(0.5, 4), (1.5, 8), (2.5, 6), (2.9, 10)]
    series = batch_occupancy_series(samples, window=2.0, horizon=4.0)
    assert series[0].value == pytest.approx(6.0)   # (4 + 8) / 2
    assert series[1].value == pytest.approx(8.0)   # (6 + 10) / 2


def test_batch_occupancy_empty_window_zero():
    series = batch_occupancy_series([], window=1.0, horizon=2.0)
    assert [p.value for p in series] == [0.0, 0.0]


def test_peak_concurrency_overlaps():
    reqs = [
        _finished(0, admit=0.0, finish=10.0),
        _finished(1, admit=1.0, finish=3.0),
        _finished(2, admit=2.0, finish=4.0),
        _finished(3, admit=5.0, finish=6.0),
    ]
    assert peak_concurrency(reqs) == 3


def test_peak_concurrency_empty():
    assert peak_concurrency([]) == 0


def test_engine_records_occupancy_when_enabled(big_registry, rng_streams):
    from repro.serving.engine import EngineConfig
    from repro.systems import build_system
    from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace

    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=10.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    system = build_system("slora", registry=big_registry,
                          engine_config=EngineConfig(record_batch_occupancy=True))
    system.run_trace(trace.fresh())
    assert len(system.engine.batch_occupancy) == system.engine.stats.iterations
    assert max(size for _, size in system.engine.batch_occupancy) >= 1


# --------------------------------------------------------------------- #
# Horizon handling: out-of-horizon points are dropped, the == horizon
# boundary stays in the last bin.  (Clamping time > horizon into the last
# bin used to inflate the final window.)
# --------------------------------------------------------------------- #
def test_windowed_throughput_drops_out_of_horizon_completions():
    reqs = [
        _finished(0, 0.0, finish=1.0),   # bin 0
        _finished(1, 0.0, finish=4.0),   # == horizon: stays in last bin
        _finished(2, 0.0, finish=4.5),   # past horizon: dropped
        _finished(3, 0.0, finish=9.0),   # far past horizon: dropped
    ]
    series = windowed_throughput(reqs, window=2.0, horizon=4.0)
    assert len(series) == 2
    assert series[0].value == pytest.approx(1 / 2.0)   # only finish=1.0
    assert series[1].value == pytest.approx(1 / 2.0)   # only finish=4.0


def test_windowed_goodput_drops_out_of_horizon_completions():
    reqs = [
        _finished(0, 0.0, finish=1.0, ttft=0.1),   # compliant, in horizon
        _finished(1, 0.0, finish=4.5, ttft=0.1),   # compliant but dropped
        _finished(2, 0.0, finish=1.5, ttft=9.0),   # in horizon, SLO-violating
    ]
    series = windowed_goodput(reqs, window=2.0, horizon=4.0, slo_ttft=1.0)
    assert series[0].value == pytest.approx(1 / 2.0)
    assert series[1].value == 0.0


def test_batch_occupancy_drops_out_of_horizon_samples():
    samples = [(1.0, 4), (4.0, 6), (5.0, 100)]
    series = batch_occupancy_series(samples, window=2.0, horizon=4.0)
    assert series[0].value == pytest.approx(4.0)
    # The boundary sample (4.0) lands in the last bin; 5.0 is dropped
    # instead of polluting it.
    assert series[1].value == pytest.approx(6.0)


# --------------------------------------------------------------------- #
# peak_concurrency tie-break: arrivals before departures at equal times,
# so a back-to-back hand-off counts as overlapping.  Sorting raw
# (time, ±1) tuples would process the -1 first and undercount.
# --------------------------------------------------------------------- #
def test_peak_concurrency_counts_handoff_instant():
    reqs = [
        _finished(0, admit=0.0, finish=1.0),
        _finished(1, admit=1.0, finish=2.0),
        _finished(2, admit=2.0, finish=3.0),
    ]
    assert peak_concurrency(reqs) == 2


def test_peak_concurrency_simultaneous_swap():
    # Two finish at t=2 exactly as two are admitted: all four overlap there.
    reqs = [
        _finished(0, admit=0.0, finish=2.0),
        _finished(1, admit=0.0, finish=2.0),
        _finished(2, admit=2.0, finish=3.0),
        _finished(3, admit=2.0, finish=3.0),
    ]
    assert peak_concurrency(reqs) == 4


def test_peak_concurrency_ignores_never_admitted():
    pending = Request(request_id=9, arrival_time=0.0, input_tokens=5, output_tokens=5)
    reqs = [pending, _finished(0, admit=0.0, finish=1.0)]
    assert peak_concurrency(reqs) == 1
