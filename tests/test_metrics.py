"""Tests for latency summaries, CDFs, slowdown, SLO and throughput search."""

import math

import numpy as np
import pytest

from repro.hardware.gpu import A40_48GB
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B
from repro.metrics.summary import (
    cdf_points,
    compute_slo,
    jain_fairness_index,
    percentile,
    slowdowns,
    summarize_run,
    tenant_breakdown,
    throughput_under_slo,
    windowed_p99_ttft,
)
from repro.workload.request import Request, RequestState


def _finished(rid, arrival, ttft, e2e, tokens=(0.0,)):
    r = Request(request_id=rid, arrival_time=arrival, input_tokens=10, output_tokens=5)
    r.enqueue_time = arrival
    r.admit_time = arrival + 0.01
    r.first_token_time = arrival + ttft
    r.finish_time = arrival + e2e
    r.token_times = [arrival + t for t in tokens]
    r.state = RequestState.FINISHED
    return r


def test_percentile_basics():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert math.isnan(percentile([], 99))


def test_summarize_run_counts_and_percentiles():
    reqs = [_finished(i, float(i), ttft=0.1 * (i + 1), e2e=1.0) for i in range(10)]
    s = summarize_run(reqs, duration=10.0)
    assert s.n_requests == 10
    assert s.p50_ttft == pytest.approx(percentile([0.1 * (i + 1) for i in range(10)], 50))
    assert s.completed_rps == pytest.approx(1.0)


def test_summarize_run_warmup_excludes_early():
    reqs = [_finished(i, float(i), ttft=1.0, e2e=2.0) for i in range(10)]
    s = summarize_run(reqs, warmup=5.0)
    assert s.n_requests == 5


def test_summarize_run_ignores_unfinished():
    done = _finished(0, 0.0, 0.2, 1.0)
    pending = Request(request_id=1, arrival_time=0.0, input_tokens=5, output_tokens=5)
    s = summarize_run([done, pending])
    assert s.n_requests == 1


def test_summarize_empty():
    s = summarize_run([])
    assert s.n_requests == 0
    assert math.isnan(s.p99_ttft)


def test_slo_attainment():
    reqs = [_finished(i, 0.0, ttft=t, e2e=1.0) for i, t in enumerate([0.1, 0.2, 5.0, 0.3])]
    s = summarize_run(reqs, slo_ttft=1.0)
    assert s.slo_attainment == pytest.approx(0.75)
    assert s.meets_slo() is False


def test_tbt_from_token_gaps():
    reqs = [_finished(0, 0.0, 0.1, 1.0, tokens=[0.1, 0.2, 0.5])]
    s = summarize_run(reqs)
    assert s.p99_tbt == pytest.approx(np.percentile([0.1, 0.3], 99))


def test_windowed_p99():
    reqs = [_finished(i, arrival=float(i), ttft=float(i + 1), e2e=2.0) for i in range(10)]
    series = windowed_p99_ttft(reqs, window=5.0, horizon=10.0)
    assert len(series) == 2
    (t1, p1), (t2, p2) = series
    assert t1 == 5.0 and t2 == 10.0
    assert p2 > p1


def test_cdf_points_sorted_and_complete():
    pts = cdf_points([3.0, 1.0, 2.0])
    values = [v for v, _ in pts]
    probs = [p for _, p in pts]
    assert values == [1.0, 2.0, 3.0]
    assert probs[-1] == pytest.approx(1.0)
    assert cdf_points([]) == []


def test_slowdowns_relative_to_isolated():
    cm = CostModel(LLAMA_7B, A40_48GB)
    iso = cm.isolated_request_time(10, 5)
    r = _finished(0, 0.0, 0.1, e2e=3 * iso)
    values = slowdowns([r], cm, rank_of=lambda r: None, load_time_of=lambda r: 0.0)
    assert values[0] == pytest.approx(3.0, rel=1e-6)


def test_compute_slo_is_multiple_of_mean_isolated():
    cm = CostModel(LLAMA_7B, A40_48GB)
    reqs = [Request(request_id=i, arrival_time=0.0, input_tokens=100, output_tokens=10)
            for i in range(5)]
    slo = compute_slo(reqs, cm, rank_of=lambda r: None, load_time_of=lambda r: 0.0,
                      multiplier=5.0)
    iso = cm.isolated_request_time(100, 10)
    assert slo == pytest.approx(5.0 * iso)


def test_compute_slo_empty_raises():
    cm = CostModel(LLAMA_7B, A40_48GB)
    with pytest.raises(ValueError):
        compute_slo([], cm, rank_of=lambda r: None, load_time_of=lambda r: 0.0)


def test_throughput_under_slo_interpolates():
    loads = [5.0, 6.0, 7.0, 8.0]
    p99 = [1.0, 2.0, 4.0, 8.0]
    # SLO of 3.0 crossed between 6 (2.0) and 7 (4.0): midpoint 6.5.
    assert throughput_under_slo(loads, p99, slo=3.0) == pytest.approx(6.5)


def test_throughput_under_slo_never_violated():
    assert throughput_under_slo([5, 6], [1.0, 1.5], slo=10.0) == 6


def test_throughput_under_slo_always_violated():
    assert throughput_under_slo([5, 6], [20.0, 30.0], slo=10.0) == 0.0


def test_throughput_under_slo_handles_nan():
    # The NaN point is skipped: interpolate between (5, 1.0) and (7, 20.0).
    assert throughput_under_slo([5, 6, 7], [1.0, float("nan"), 20.0], slo=10.0) == pytest.approx(
        5.0 + 2.0 * (10.0 - 1.0) / 19.0
    )


def test_throughput_under_slo_validates():
    with pytest.raises(ValueError):
        throughput_under_slo([], [], slo=1.0)
    with pytest.raises(ValueError):
        throughput_under_slo([1.0], [1.0, 2.0], slo=1.0)


def test_jain_fairness_hand_computed():
    assert jain_fairness_index([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)
    # One member holds everything: (1)^2 / (4 * 1) = 1/n.
    assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    # (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
    assert jain_fairness_index([1.0, 2.0, 3.0]) == pytest.approx(36.0 / 42.0)
    assert jain_fairness_index([0.0, 0.0]) == pytest.approx(1.0)
    assert math.isnan(jain_fairness_index([]))
    with pytest.raises(ValueError):
        jain_fairness_index([1.0, -0.5])


def _tenant_req(rid, tenant, arrival=0.0, ttft=0.1, done=True,
                shed=False, lost=False):
    if done:
        r = _finished(rid, arrival, ttft, e2e=1.0)
    else:
        r = Request(request_id=rid, arrival_time=arrival,
                    input_tokens=10, output_tokens=5)
        r.shed = shed
        r.lost = lost
    r.tenant_id = tenant
    return r


def test_tenant_breakdown_hand_computed():
    reqs = [
        _tenant_req(0, tenant=0),                      # done
        _tenant_req(1, tenant=0),                      # done
        _tenant_req(2, tenant=0, done=False, shed=True),
        _tenant_req(3, tenant=1),                      # done
        _tenant_req(4, tenant=1, done=False, lost=True),
        _tenant_req(5, tenant=None),                   # anonymous, done
    ]
    out = tenant_breakdown(reqs)
    assert out["tenant_ids"] == [0, 1, None]  # None sorts last
    assert out["arrivals"] == [3, 2, 1]
    assert out["completed"] == [2, 1, 1]
    assert out["shed"] == [1, 0, 0]
    assert out["lost"] == [0, 1, 0]
    # No predicate: attainment is the plain completion ratio.
    assert out["attainment"] == pytest.approx([2 / 3, 1 / 2, 1.0])


def test_tenant_breakdown_attained_predicate_counts_unfinished_against():
    reqs = [
        _tenant_req(0, tenant=0, ttft=0.1),            # within deadline
        _tenant_req(1, tenant=0, ttft=5.0),            # finished but late
        _tenant_req(2, tenant=0, done=False, shed=True),
    ]
    out = tenant_breakdown(reqs, attained=lambda r: r.ttft <= 1.0)
    # 1 attained of 3 arrivals: late and shed both count against.
    assert out["attainment"] == pytest.approx([1 / 3])


def test_tenant_breakdown_warmup_and_empty():
    reqs = [
        _tenant_req(0, tenant=0, arrival=1.0),
        _tenant_req(1, tenant=1, arrival=10.0),
    ]
    out = tenant_breakdown(reqs, warmup=5.0)
    assert out["tenant_ids"] == [1]
    assert out["arrivals"] == [1]
    empty = tenant_breakdown([])
    assert empty["tenant_ids"] == [] and empty["arrivals"] == []
