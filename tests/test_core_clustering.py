"""Tests for 1-D K-means, WCSS and the elbow K selection (§4.3.4)."""

import numpy as np
import pytest

from repro.core.clustering import choose_k_elbow, cluster_cutoffs, kmeans_1d, wcss


def test_kmeans_separates_two_clear_clusters():
    data = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8]
    centroids, labels = kmeans_1d(data, 2)
    assert centroids[0] == pytest.approx(1.0, abs=0.2)
    assert centroids[1] == pytest.approx(10.0, abs=0.3)
    assert list(labels[:3]) == [0, 0, 0]
    assert list(labels[3:]) == [1, 1, 1]


def test_kmeans_k1_centroid_is_mean():
    data = [1.0, 2.0, 3.0]
    centroids, labels = kmeans_1d(data, 1)
    assert centroids[0] == pytest.approx(2.0)
    assert (labels == 0).all()


def test_kmeans_centroids_sorted():
    data = list(np.random.default_rng(0).uniform(0, 1, 200))
    centroids, _ = kmeans_1d(data, 4)
    assert (np.diff(centroids) >= 0).all()


def test_kmeans_caps_k_at_distinct_values():
    centroids, labels = kmeans_1d([5.0, 5.0, 5.0], 3)
    assert centroids.size == 1


def test_kmeans_validation():
    with pytest.raises(ValueError):
        kmeans_1d([], 2)
    with pytest.raises(ValueError):
        kmeans_1d([1.0], 0)


def test_wcss_zero_for_perfect_fit():
    data = [1.0, 1.0, 5.0, 5.0]
    centroids, labels = kmeans_1d(data, 2)
    assert wcss(data, centroids, labels) == pytest.approx(0.0, abs=1e-12)


def test_wcss_non_increasing_in_k():
    data = list(np.random.default_rng(1).normal(0, 1, 300))
    scores = []
    for k in range(1, 5):
        centroids, labels = kmeans_1d(data, k)
        scores.append(wcss(data, centroids, labels))
    assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:]))


def test_elbow_picks_two_for_bimodal():
    rng = np.random.default_rng(2)
    data = np.concatenate([rng.normal(0.1, 0.01, 200), rng.normal(0.9, 0.01, 200)])
    assert choose_k_elbow(data, k_max=4) == 2


def test_elbow_picks_three_for_trimodal():
    rng = np.random.default_rng(3)
    data = np.concatenate([
        rng.normal(0.1, 0.005, 200),
        rng.normal(0.5, 0.005, 200),
        rng.normal(0.9, 0.005, 200),
    ])
    assert choose_k_elbow(data, k_max=4) == 3


def test_elbow_degenerate_cases():
    assert choose_k_elbow([5.0, 5.0, 5.0], k_max=4) == 1
    assert choose_k_elbow([1.0, 2.0], k_max=1) == 1
    with pytest.raises(ValueError):
        choose_k_elbow([], k_max=4)


def test_elbow_never_exceeds_kmax():
    rng = np.random.default_rng(4)
    data = rng.uniform(0, 1, 500)
    assert 1 <= choose_k_elbow(data, k_max=4) <= 4


def test_cutoffs_are_midpoints():
    cutoffs = cluster_cutoffs(np.array([1.0, 3.0, 9.0]))
    assert cutoffs == [2.0, 6.0]


def test_cutoffs_single_centroid_empty():
    assert cluster_cutoffs(np.array([4.0])) == []
