"""End-to-end paired-trace comparisons: the paper's headline behaviours."""

import pytest

from repro.systems import build_system
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def _run(preset, trace, registry, **kwargs):
    system = build_system(preset, registry=registry, seed=0, **kwargs)
    system.run_trace(trace.fresh())
    return system


def test_chameleon_hit_rate_beats_slora(loaded_trace, big_registry):
    """Caching idle adapters must raise the hit rate dramatically (§5.2.5)."""
    slora = _run("slora", loaded_trace, big_registry)
    cham = _run("chameleon", loaded_trace, big_registry)
    assert cham.adapter_manager.stats.hit_rate > 0.85
    assert cham.adapter_manager.stats.hit_rate > slora.adapter_manager.stats.hit_rate + 0.15


def test_chameleon_improves_p99_ttft_under_load(loaded_trace, big_registry):
    """Figure 11's ordering at one load point."""
    slora = _run("slora", loaded_trace, big_registry)
    cham = _run("chameleon", loaded_trace, big_registry)
    s1 = slora.summary(warmup=10.0)
    s2 = cham.summary(warmup=10.0)
    assert s2.p99_ttft < s1.p99_ttft
    assert s2.p50_ttft < s1.p50_ttft


def test_chameleon_reduces_critical_path_loading(loaded_trace, big_registry):
    """Figure 14: most Chameleon requests pay zero loading latency."""
    cham = _run("chameleon", loaded_trace, big_registry)
    done = [r for r in cham.engine.all_requests if r.finished]
    zero_load = sum(1 for r in done if r.adapter_load_critical_path == 0.0)
    assert zero_load / len(done) > 0.7
    slora = _run("slora", loaded_trace, big_registry)
    done_s = [r for r in slora.engine.all_requests if r.finished]
    zero_s = sum(1 for r in done_s if r.adapter_load_critical_path == 0.0)
    assert zero_load / len(done) > zero_s / len(done_s)


def test_chameleon_reduces_pcie_traffic(loaded_trace, big_registry):
    slora = _run("slora", loaded_trace, big_registry)
    cham = _run("chameleon", loaded_trace, big_registry)
    assert cham.link.total_bytes_moved < 0.5 * slora.link.total_bytes_moved


def test_same_seed_is_deterministic(tiny_trace, big_registry):
    a = _run("chameleon", tiny_trace, big_registry)
    b = _run("chameleon", tiny_trace, big_registry)
    ra = [(r.request_id, r.first_token_time, r.finish_time) for r in a.engine.all_requests]
    rb = [(r.request_id, r.first_token_time, r.finish_time) for r in b.engine.all_requests]
    assert ra == rb


def test_memory_fully_released_after_run(tiny_trace, big_registry):
    system = _run("chameleon", tiny_trace, big_registry)
    gpu = system.gpu
    # Only static reservations and the adapter cache may remain.
    assert gpu.used("kv") == 0
    assert gpu.used("adapter") == 0
    assert gpu.used("weights") == system.model.weight_bytes
    assert gpu.used("adapter_cache") >= 0
    assert all(r.finished for r in system.engine.all_requests)


def test_slora_leaves_no_cache_behind(tiny_trace, big_registry):
    system = _run("slora", tiny_trace, big_registry)
    assert system.gpu.used("adapter") == 0
    assert system.gpu.used("adapter_cache") == 0


def test_sjf_starves_long_requests(big_registry, rng_streams):
    """Figure 16: SJF's longest requests wait far longer than FIFO's.

    Starvation only shows when the system is genuinely backlogged, so this
    test drives a heavier load than the shared fixtures.
    """
    import numpy as np

    from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace

    heavy = synthesize_trace(SPLITWISE_PROFILE, rps=13.0, duration=120.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    fifo = _run("slora", heavy, big_registry)
    sjf = _run("slora_sjf", heavy, big_registry)

    def long_request_tail_ttft(system):
        done = [r for r in system.engine.all_requests if r.finished]
        sizes = np.array([r.output_tokens for r in done])  # SJF keys on output
        cut = np.quantile(sizes, 0.9)
        ttfts = [r.ttft for r, s in zip(done, sizes) if s >= cut]
        return float(np.percentile(ttfts, 99))

    assert long_request_tail_ttft(sjf) > long_request_tail_ttft(fifo)


def test_all_requests_complete_across_presets(tiny_trace, big_registry):
    for preset in ("slora", "slora_sjf", "slora_chunked", "chameleon",
                   "chameleon_prefetch", "chameleon_static"):
        system = _run(preset, tiny_trace, big_registry)
        assert all(r.finished for r in system.engine.all_requests), preset


def test_squash_rate_is_bounded(loaded_trace, big_registry):
    """§4.3.3: 'at most 5% of requests getting squashed'."""
    system = _run("chameleon", loaded_trace, big_registry)
    assert system.engine.stats.squashes <= 0.05 * len(loaded_trace)


def test_conservation_every_token_accounted(tiny_trace, big_registry):
    system = _run("chameleon", tiny_trace, big_registry)
    done = [r for r in system.engine.all_requests if r.finished]
    for r in done:
        assert r.tokens_generated == r.output_tokens
        assert len(r.token_times) == r.output_tokens
        assert r.prefill_done_tokens == r.input_tokens


def test_paired_traces_share_arrivals(tiny_trace, big_registry):
    """Trace.fresh() preserves the workload exactly (paired comparison)."""
    a = tiny_trace.fresh()
    b = tiny_trace.fresh()
    assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
    assert [r.adapter_id for r in a] == [r.adapter_id for r in b]


def test_mlq_quota_ledger_balanced_after_run(loaded_trace, big_registry):
    system = _run("chameleon", loaded_trace, big_registry)
    scheduler = system.scheduler
    assert sum(q.borrowed for q in scheduler.queues) == pytest.approx(0.0, abs=1e-6)
    assert scheduler.queue_len() == 0
