"""simlint: per-rule fixtures, suppressions, scoping, CLI, and the meta-test
that the repo's own tree is clean under its own analyzer."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.config import SimlintConfig, load_config, path_matches
from repro.analysis.engine import package_relpath, run_simlint
from repro.analysis.registry import all_rule_classes, get_rule_class
from repro.cli import main as repro_main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "simlint" / "repro"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

BAD_FIXTURES = [
    "bad_d001.py",
    "bad_d002.py",
    "malformed.py",
    "serving/bad_d003.py",
    "bad_d004.py",
    "bad_d005.py",
    "bad_d006.py",
    # Lives under serving/ so the fixture's package-relative path falls
    # inside the pyproject D007 scope, mirroring serving/bad_d003.py.
    "serving/d007",
    "bad_d008.py",
    # Lives under serving/ so the path falls inside the D009 runtime
    # scope (file writes are fine in offline tooling).
    "serving/bad_d009.py",
]


def lint(*names: str, config: SimlintConfig | None = None):
    paths = [FIXTURES / name for name in names]
    violations, _ = run_simlint(paths, config if config else SimlintConfig())
    return violations


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


# --------------------------------------------------------------------- #
# Rule catalogue
# --------------------------------------------------------------------- #
def test_catalogue_is_d001_through_d009_in_order():
    codes = [cls.code for cls in all_rule_classes()]
    assert codes == [f"D00{i}" for i in range(1, 10)]


def test_every_rule_carries_rationale_and_hint():
    for cls in all_rule_classes():
        assert cls.name and cls.rationale and cls.hint


def test_registry_lookup():
    assert get_rule_class("D004").name == "mutable-default"
    with pytest.raises(KeyError):
        get_rule_class("D999")


# --------------------------------------------------------------------- #
# True positives, one fixture per rule
# --------------------------------------------------------------------- #
def test_d001_flags_ambient_rng():
    violations = lint("bad_d001.py")
    assert [v.code for v in violations] == ["D001", "D001"]
    assert "random.random" in violations[0].message
    assert "numpy.random.default_rng" in violations[1].message


def test_d002_flags_wall_clock():
    violations = lint("bad_d002.py")
    assert [v.code for v in violations] == ["D002"]
    assert violations[0].line == 7


def test_d003_flags_unordered_iteration_in_scope():
    violations = lint("serving/bad_d003.py")
    assert [v.code for v in violations] == ["D003"] * 4
    messages = " / ".join(v.message for v in violations)
    assert "bare set" in messages
    assert "next(iter(...))" in messages
    assert "popitem" in messages
    assert "hash order" in messages


def test_d004_flags_mutable_defaults():
    violations = lint("bad_d004.py")
    assert [v.code for v in violations] == ["D004", "D004"]
    assert "enqueue" in violations[0].message
    assert "tally" in violations[1].message


def test_d005_flags_id_ordering():
    violations = lint("bad_d005.py")
    assert [v.code for v in violations] == ["D005", "D005"]


def test_d006_flags_unregistered_and_dynamic_stream_names():
    violations = lint("bad_d006.py")
    assert [v.code for v in violations] == ["D006", "D006"]
    messages = " / ".join(v.message for v in violations)
    assert "not-a-registered-stream" in messages
    assert "not a string literal" in messages


def test_d007_flags_read_of_never_written_key():
    violations = lint("serving/d007")
    assert [v.code for v in violations] == ["D007"]
    assert "never_written_key" in violations[0].message
    assert violations[0].path.endswith("reader.py")


def test_d008_flags_blanket_type_ignore():
    violations = lint("bad_d008.py")
    assert [v.code for v in violations] == ["D008"]


def test_d009_flags_runtime_file_writes_in_scope():
    violations = lint("serving/bad_d009.py")
    assert [v.code for v in violations] == ["D009"] * 3
    messages = " / ".join(v.message for v in violations)
    assert "'w'" in messages
    assert "'a'" in messages
    assert "write_text" in messages


# --------------------------------------------------------------------- #
# True negatives, suppressions, allowlists, scoping
# --------------------------------------------------------------------- #
def test_clean_fixture_has_no_violations():
    assert lint("clean.py") == []


def test_d003_does_not_fire_outside_its_scope():
    assert lint("unordered_out_of_scope.py") == []


def test_d009_does_not_fire_outside_its_scope():
    assert lint("filewrite_out_of_scope.py") == []


def test_justified_suppression_silences_the_line():
    assert lint("suppressed_d002.py") == []


def test_malformed_suppressions_are_reported_as_d000():
    violations = lint("malformed.py")
    # Line 7: ignore[D002] without '-- why' silences D002 but earns a D000.
    # Line 11: a code-less ignore suppresses nothing — D002 stays, plus D000.
    assert [(v.code, v.line) for v in violations] == [
        ("D000", 7), ("D002", 11), ("D000", 11)]
    assert "justification" in violations[0].message
    assert "rule code" in violations[2].message


def test_allowlist_switches_a_rule_off_for_a_path():
    config = SimlintConfig(allow={"D001": ("bad_d001.py",)})
    assert lint("bad_d001.py", config=config) == []


def test_select_restricts_the_rule_set():
    config = SimlintConfig(select=("D001",))
    assert lint("bad_d004.py", config=config) == []
    assert [v.code for v in lint("bad_d001.py", config=config)] == ["D001", "D001"]


def test_path_matches_exact_prefix_and_glob():
    assert path_matches("sim/rng.py", "sim/rng.py")
    assert path_matches("serving/engine.py", "serving/")
    assert not path_matches("serving_other.py", "serving/")
    assert path_matches("experiments/fig26.py", "experiments/fig*.py")


def test_package_relpath_anchors_at_the_repro_directory():
    assert package_relpath(FIXTURES / "serving" / "bad_d003.py") == \
        "serving/bad_d003.py"
    assert package_relpath(SRC_REPRO / "sim" / "rng.py") == "sim/rng.py"


def test_load_config_picks_up_pyproject_tables(tmp_path):
    pytest.importorskip("tomllib")  # Python 3.10 falls back to defaults
    (tmp_path / "pyproject.toml").write_text(
        '[tool.simlint.allow]\nD005 = ["legacy/"]\n')
    config = load_config(tmp_path)
    assert config.allowed("D005", "legacy/old.py")
    assert config.allowed("D002", "util/wallclock.py")  # defaults retained


def test_violation_render_format():
    violation = lint("bad_d002.py")[0]
    rendered = violation.render()
    assert rendered.startswith(f"{violation.path}:7:")
    assert " D002 " in rendered
    assert "[fix:" in rendered


# --------------------------------------------------------------------- #
# CLI entry points
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_cli_exits_nonzero_on_each_seeded_fixture(fixture):
    result = run_cli(str(FIXTURES / fixture))
    assert result.returncode == 1, result.stdout + result.stderr
    assert "violation" in result.stdout


def test_cli_exits_zero_on_clean_input():
    result = run_cli(str(FIXTURES / "clean.py"))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_exits_two_on_missing_path():
    result = run_cli(str(FIXTURES / "no_such_file.py"))
    assert result.returncode == 2


def test_cli_list_rules_prints_the_catalogue():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for i in range(1, 10):
        assert f"D00{i}" in result.stdout
    assert "D000" in result.stdout


def test_cli_select_runs_only_named_rules():
    result = run_cli("--select", "D001", str(FIXTURES / "bad_d004.py"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_repro_cli_lint_subcommand_delegates():
    assert repro_main(["lint", str(FIXTURES / "clean.py")]) == 0
    assert repro_main(["lint", str(FIXTURES / "bad_d004.py")]) == 1


def test_repo_source_tree_is_clean_under_its_own_analyzer():
    result = run_cli(str(SRC_REPRO))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout
