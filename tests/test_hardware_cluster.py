"""Tests for tensor-parallel groups and the data-parallel dispatcher."""

import pytest

from repro.hardware.cluster import DataParallelCluster, TensorParallelGroup
from repro.hardware.gpu import A100_80GB, GB
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.sim.simulator import Simulator


def test_tp_group_aggregates_memory():
    group = TensorParallelGroup(A100_80GB, tp_degree=4)
    assert group.capacity == 4 * 80 * GB


def test_tp_compute_speedup_sublinear():
    tp2 = TensorParallelGroup(A100_80GB, 2)
    tp4 = TensorParallelGroup(A100_80GB, 4)
    assert 1.0 < tp2.compute_speedup < 2.0
    assert tp2.compute_speedup < tp4.compute_speedup < 4.0


def test_tp1_is_identity():
    tp1 = TensorParallelGroup(A100_80GB, 1)
    assert tp1.compute_speedup == 1.0


def test_invalid_tp_degree():
    with pytest.raises(ValueError):
        TensorParallelGroup(A100_80GB, 0)


def test_tp_adapter_load_time_grows_with_degree():
    """Figure 5's mechanism: sharded loads pay per-shard sync overheads."""
    sim = Simulator()
    link = PcieLink(sim, PcieSpec())
    times = [
        TensorParallelGroup(A100_80GB, tp).adapter_load_time(link, 256 * 1024 * 1024)
        for tp in (1, 2, 4, 8)
    ]
    assert times == sorted(times)
    assert times[-1] > times[0]


def test_tp_sharded_load_through_link():
    sim = Simulator()
    link = PcieLink(sim, PcieSpec())
    group = TensorParallelGroup(A100_80GB, 4)
    done = []
    group.submit_adapter_load(link, 256 * 1024 * 1024, callback=lambda x: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(group.adapter_load_time(link, 256 * 1024 * 1024), rel=0.05)


class _FakeEngine:
    def __init__(self, load, resident=()):
        self._load = load
        self.submitted = []
        self.adapter_manager = self

    def in_flight_count(self):
        return self._load

    def is_resident(self, adapter_id):
        return False

    def submit(self, request):
        self.submitted.append(request)


class _FakeRequest:
    def __init__(self, adapter_id=None):
        self.adapter_id = adapter_id


def test_dp_least_loaded_picks_min():
    engines = [_FakeEngine(5), _FakeEngine(2), _FakeEngine(9)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.dispatch(_FakeRequest()) == 1
    assert engines[1].submitted


def test_dp_round_robin_cycles():
    engines = [_FakeEngine(0), _FakeEngine(0), _FakeEngine(0)]
    cluster = DataParallelCluster(engines, policy="round_robin")
    picks = [cluster.dispatch(_FakeRequest()) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_dp_adapter_affinity_falls_back_to_jsq():
    engines = [_FakeEngine(5), _FakeEngine(2)]
    cluster = DataParallelCluster(engines, policy="adapter_affinity")
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 1


def test_dp_adapter_affinity_prefers_resident():
    class _Resident(_FakeEngine):
        def is_resident(self, adapter_id):
            return True

    engines = [_Resident(9), _FakeEngine(0)]
    cluster = DataParallelCluster(engines, policy="adapter_affinity")
    # Engine 0 has the adapter resident, so it wins despite higher load.
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 0


def test_dp_rejects_unknown_policy():
    with pytest.raises(ValueError):
        DataParallelCluster([_FakeEngine(0)], policy="random")


def test_dp_rejects_empty_cluster():
    with pytest.raises(ValueError):
        DataParallelCluster([], policy="least_loaded")
