"""Tests for tensor-parallel groups and the data-parallel dispatcher."""

import pytest

from repro.hardware.cluster import DataParallelCluster, TensorParallelGroup
from repro.hardware.gpu import A100_80GB, GB
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.sim.simulator import Simulator


def test_tp_group_aggregates_memory():
    group = TensorParallelGroup(A100_80GB, tp_degree=4)
    assert group.capacity == 4 * 80 * GB


def test_tp_compute_speedup_sublinear():
    tp2 = TensorParallelGroup(A100_80GB, 2)
    tp4 = TensorParallelGroup(A100_80GB, 4)
    assert 1.0 < tp2.compute_speedup < 2.0
    assert tp2.compute_speedup < tp4.compute_speedup < 4.0


def test_tp1_is_identity():
    tp1 = TensorParallelGroup(A100_80GB, 1)
    assert tp1.compute_speedup == 1.0


def test_invalid_tp_degree():
    with pytest.raises(ValueError):
        TensorParallelGroup(A100_80GB, 0)


def test_tp_adapter_load_time_grows_with_degree():
    """Figure 5's mechanism: sharded loads pay per-shard sync overheads."""
    sim = Simulator()
    link = PcieLink(sim, PcieSpec())
    times = [
        TensorParallelGroup(A100_80GB, tp).adapter_load_time(link, 256 * 1024 * 1024)
        for tp in (1, 2, 4, 8)
    ]
    assert times == sorted(times)
    assert times[-1] > times[0]


def test_tp_sharded_load_through_link():
    sim = Simulator()
    link = PcieLink(sim, PcieSpec())
    group = TensorParallelGroup(A100_80GB, 4)
    done = []
    group.submit_adapter_load(link, 256 * 1024 * 1024, callback=lambda x: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(group.adapter_load_time(link, 256 * 1024 * 1024), rel=0.05)


class _FakeEngine:
    def __init__(self, load, resident=()):
        self._load = load
        self.submitted = []
        self.adapter_manager = self

    def in_flight_count(self):
        return self._load

    def is_resident(self, adapter_id):
        return False

    def submit(self, request):
        self.submitted.append(request)


class _TokenEngine(_FakeEngine):
    """Request count and token load disagree (one huge vs many small)."""

    def __init__(self, load, token_load):
        super().__init__(load)
        self._token_load = token_load

    def in_flight_token_load(self):
        return self._token_load


class _QueueEngine:
    """A saturable engine for exercising the global admission queue."""

    def __init__(self, capacity, sim=None):
        self.capacity = capacity
        self.sim = sim
        self.submitted = []
        self.in_flight = 0
        self._finish_callbacks = []
        self.adapter_manager = self

    def in_flight_count(self):
        return self.in_flight

    def is_resident(self, adapter_id):
        return False

    def is_saturated(self):
        return self.in_flight >= self.capacity

    def on_finish(self, callback):
        self._finish_callbacks.append(callback)

    def submit(self, request):
        self.submitted.append(request)
        self.in_flight += 1

    def finish_one(self):
        assert self.in_flight > 0
        self.in_flight -= 1
        for callback in self._finish_callbacks:
            callback(self.submitted[0])


class _FakeRequest:
    def __init__(self, adapter_id=None, rid=0):
        self.adapter_id = adapter_id
        self.request_id = rid
        self.dispatch_queue_delay = 0.0


def test_dp_least_loaded_picks_min():
    engines = [_FakeEngine(5), _FakeEngine(2), _FakeEngine(9)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.dispatch(_FakeRequest()) == 1
    assert engines[1].submitted


def test_dp_round_robin_cycles():
    engines = [_FakeEngine(0), _FakeEngine(0), _FakeEngine(0)]
    cluster = DataParallelCluster(engines, policy="round_robin")
    picks = [cluster.dispatch(_FakeRequest()) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_dp_adapter_affinity_falls_back_to_jsq():
    engines = [_FakeEngine(5), _FakeEngine(2)]
    cluster = DataParallelCluster(engines, policy="adapter_affinity")
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 1


def test_dp_adapter_affinity_prefers_resident():
    class _Resident(_FakeEngine):
        def is_resident(self, adapter_id):
            return True

    engines = [_Resident(9), _FakeEngine(0)]
    cluster = DataParallelCluster(engines, policy="adapter_affinity")
    # Engine 0 has the adapter resident, so it wins despite higher load.
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 0


def test_dp_rejects_unknown_policy():
    with pytest.raises(ValueError):
        DataParallelCluster([_FakeEngine(0)], policy="random")


def test_dp_rejects_empty_cluster():
    with pytest.raises(ValueError):
        DataParallelCluster([], policy="least_loaded")


def test_dp_rejects_bad_spill_factor():
    with pytest.raises(ValueError):
        DataParallelCluster([_FakeEngine(0)], policy="bounded_affinity",
                            spill_factor=0.5)


# --------------------------------------------------------------------- #
# New dispatch policies
# --------------------------------------------------------------------- #
def test_dp_p2c_picks_less_loaded_of_two():
    # With two engines, any two-of-two sample compares both; the idle one wins.
    engines = [_FakeEngine(5), _FakeEngine(0)]
    cluster = DataParallelCluster(engines, policy="p2c")
    for _ in range(8):
        assert cluster._pick(_FakeRequest()) == 1


def test_dp_p2c_single_engine():
    cluster = DataParallelCluster([_FakeEngine(3)], policy="p2c")
    assert cluster.dispatch(_FakeRequest()) == 0


def test_dp_token_weighted_ignores_request_count():
    # Engine 0 holds one huge request; engine 1 holds five tiny ones.  JSQ
    # would pick engine 0; token weighting sees where the work actually is.
    engines = [_TokenEngine(1, 10_000), _TokenEngine(5, 100)]
    jsq = DataParallelCluster([_TokenEngine(1, 10_000), _TokenEngine(5, 100)],
                              policy="least_loaded")
    tok = DataParallelCluster(engines, policy="token_weighted")
    assert jsq.dispatch(_FakeRequest()) == 0
    assert tok.dispatch(_FakeRequest()) == 1


def test_dp_token_weighted_falls_back_to_count():
    # Engines without a token-load probe degrade to plain JSQ.
    engines = [_FakeEngine(4), _FakeEngine(2)]
    cluster = DataParallelCluster(engines, policy="token_weighted")
    assert cluster.dispatch(_FakeRequest()) == 1


def test_dp_bounded_affinity_stays_affine_under_bound():
    class _Resident(_FakeEngine):
        def is_resident(self, adapter_id):
            return True

    # Loads [1, 1, 1]: bound = 1.5 x mean = 1.5, affine load 1 <= 1.5: hold.
    engines = [_Resident(1), _FakeEngine(1), _FakeEngine(1)]
    cluster = DataParallelCluster(engines, policy="bounded_affinity")
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 0
    assert cluster.stats.spills == 0


def test_dp_bounded_affinity_spills_past_threshold():
    class _Resident(_FakeEngine):
        def is_resident(self, adapter_id):
            return True

    # The affine replica is far above the mean load: fall back to JSQ.
    engines = [_Resident(9), _FakeEngine(0), _FakeEngine(1)]
    bounded = DataParallelCluster(engines, policy="bounded_affinity",
                                  spill_factor=1.5)
    assert bounded.dispatch(_FakeRequest(adapter_id=3)) == 1
    assert bounded.stats.spills == 1
    # The unbounded variant happily piles onto the hot replica.
    unbounded = DataParallelCluster(
        [_Resident(9), _FakeEngine(0), _FakeEngine(1)],
        policy="adapter_affinity")
    assert unbounded.dispatch(_FakeRequest(adapter_id=3)) == 0


# --------------------------------------------------------------------- #
# Global admission queue with backpressure
# --------------------------------------------------------------------- #
class _FakeSim:
    def __init__(self):
        self.now = 0.0


def test_dp_backpressure_queues_when_all_saturated():
    engines = [_QueueEngine(1), _QueueEngine(1)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.dispatch(_FakeRequest(rid=0)) == 0
    assert cluster.dispatch(_FakeRequest(rid=1)) == 1
    # Both engines are at capacity: arrivals wait in the global queue.
    assert cluster.dispatch(_FakeRequest(rid=2)) is None
    assert cluster.dispatch(_FakeRequest(rid=3)) is None
    assert cluster.queue_len() == 2
    assert cluster.stats.queued == 2


def test_dp_backpressure_drains_in_arrival_order():
    sim = _FakeSim()
    engines = [_QueueEngine(1, sim=sim), _QueueEngine(1, sim=sim)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    requests = [_FakeRequest(rid=i) for i in range(5)]
    for r in requests[:2]:
        cluster.dispatch(r)
    sim.now = 1.0
    for r in requests[2:]:
        cluster.dispatch(r)
    # Finish events pull from the queue head: strict arrival order.
    sim.now = 3.0
    engines[0].finish_one()
    assert engines[0].submitted[-1].request_id == 2
    sim.now = 4.0
    engines[1].finish_one()
    assert engines[1].submitted[-1].request_id == 3
    engines[0].finish_one()
    assert engines[0].submitted[-1].request_id == 4
    # Queue-delay accounting: r2 waited 3.0 - 1.0 = 2.0s, r3 waited 3.0s.
    assert requests[2].dispatch_queue_delay == pytest.approx(2.0)
    assert requests[3].dispatch_queue_delay == pytest.approx(3.0)
    assert cluster.queue_len() == 0
    assert len(cluster.stats.queue_delays) == 3


def test_dp_drain_targets_the_freed_engine():
    # Round-robin's cursor points at engine 0, but engine 1 owns the freed
    # slot: the drained request must not be force-fed to the full engine.
    engines = [_QueueEngine(2), _QueueEngine(2)]
    cluster = DataParallelCluster(engines, policy="round_robin")
    for i in range(4):
        cluster.dispatch(_FakeRequest(rid=i))
    assert cluster.dispatch(_FakeRequest(rid=4)) is None
    engines[1].finish_one()
    assert engines[1].submitted[-1].request_id == 4
    assert engines[0].in_flight == 2  # never pushed past capacity


def test_dp_dispatch_skips_saturated_engine():
    # Partial saturation: routing policies that don't follow load (here
    # round-robin) must still avoid engines with no room.
    engines = [_QueueEngine(1), _QueueEngine(5)]
    cluster = DataParallelCluster(engines, policy="round_robin")
    assert cluster.dispatch(_FakeRequest(rid=0)) == 0  # engine 0 now full
    assert cluster.dispatch(_FakeRequest(rid=1)) == 1
    assert cluster.dispatch(_FakeRequest(rid=2)) == 1
    assert engines[0].in_flight == 1


def test_dp_backpressure_disabled_force_submits():
    engines = [_QueueEngine(1), _QueueEngine(1)]
    cluster = DataParallelCluster(engines, policy="least_loaded",
                                  backpressure=False)
    for i in range(4):
        assert cluster.dispatch(_FakeRequest(rid=i)) is not None
    assert cluster.queue_len() == 0
    assert engines[0].in_flight + engines[1].in_flight == 4


# --------------------------------------------------------------------- #
# Capability-normalized routing (heterogeneous fleets)
# --------------------------------------------------------------------- #
class _CapEngine(_FakeEngine):
    def __init__(self, load, cap):
        super().__init__(load)
        self._cap = cap

    def capability(self):
        return self._cap


def test_capability_weights_normalize_to_mean_one():
    engines = [_CapEngine(0, 2.0), _CapEngine(0, 1.0)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.capability_weights() == pytest.approx([4 / 3, 2 / 3])


def test_homogeneous_capabilities_stay_exactly_one():
    # Equal capabilities must not perturb loads even by float rounding —
    # homogeneous clusters behave bit-for-bit as before.
    engines = [_CapEngine(0, 3.7) for _ in range(3)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.capability_weights() == [1.0, 1.0, 1.0]


def test_engines_without_probe_default_to_one():
    cluster = DataParallelCluster([_FakeEngine(0), _FakeEngine(0)],
                                  policy="least_loaded")
    assert cluster.capability_weights() == [1.0, 1.0]


def test_normalized_jsq_prefers_fast_replica():
    # Engine 0 is twice as capable and holds 4 in flight; engine 1 holds 3.
    # Raw JSQ picks engine 1; utilization says engine 0 is less loaded.
    engines = [_CapEngine(4, 2.0), _CapEngine(3, 1.0)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    assert cluster.dispatch(_FakeRequest()) == 0
    raw = DataParallelCluster([_CapEngine(4, 2.0), _CapEngine(3, 1.0)],
                              policy="least_loaded",
                              normalize_capability=False)
    assert raw.dispatch(_FakeRequest()) == 1


def test_normalized_token_weighted_load():
    class _CapTokenEngine(_CapEngine):
        def __init__(self, load, token_load, cap):
            super().__init__(load, cap)
            self._token_load = token_load

        def in_flight_token_load(self):
            return self._token_load

    # 8000 tokens on a 2x replica is lighter than 5000 on a 1x replica.
    engines = [_CapTokenEngine(1, 8000, 2.0), _CapTokenEngine(1, 5000, 1.0)]
    cluster = DataParallelCluster(engines, policy="token_weighted")
    assert cluster.dispatch(_FakeRequest()) == 0


def test_non_positive_capability_rejected():
    with pytest.raises(ValueError):
        DataParallelCluster([_CapEngine(0, 0.0)], policy="least_loaded")


def test_bounded_affinity_bound_uses_normalized_loads():
    class _ResidentCap(_CapEngine):
        def is_resident(self, adapter_id):
            return True

    # Affine replica holds 6 at 2x capability: normalized load 6/1.333=4.5.
    # Peers hold 3 at 1x: normalized 4.5 each.  Mean 4.5, bound 6.75: hold.
    engines = [_ResidentCap(6, 2.0), _CapEngine(3, 1.0), _CapEngine(3, 1.0)]
    cluster = DataParallelCluster(engines, policy="bounded_affinity",
                                  spill_factor=1.5)
    assert cluster.dispatch(_FakeRequest(adapter_id=3)) == 0
    assert cluster.stats.spills == 0
    # The raw-load view (6 vs 3, mean 4, bound 6) would have spilled.
    raw = DataParallelCluster(
        [_ResidentCap(6, 2.0), _CapEngine(3, 1.0), _CapEngine(3, 1.0)],
        policy="bounded_affinity", spill_factor=1.4,
        normalize_capability=False)
    assert raw.dispatch(_FakeRequest(adapter_id=3)) != 0
    assert raw.stats.spills == 1


# --------------------------------------------------------------------- #
# p2c probes each sampled candidate exactly once
# --------------------------------------------------------------------- #
class _CountingEngine(_FakeEngine):
    def __init__(self, load):
        super().__init__(load)
        self.probes = 0

    def in_flight_count(self):
        self.probes += 1
        return self._load


def test_p2c_probes_each_candidate_once():
    engines = [_CountingEngine(3), _CountingEngine(1)]
    cluster = DataParallelCluster(engines, policy="p2c")
    assert cluster._pick(_FakeRequest()) == 1
    assert [e.probes for e in engines] == [1, 1]


def test_p2c_probes_once_even_on_ties():
    engines = [_CountingEngine(2), _CountingEngine(2)]
    cluster = DataParallelCluster(engines, policy="p2c")
    assert cluster._pick(_FakeRequest()) == 0  # tie breaks to the low index
    assert [e.probes for e in engines] == [1, 1]


def test_dp_fifo_no_overtaking_while_queue_nonempty():
    # Even if capacity opens without a finish event having drained the queue,
    # a new arrival must not overtake the queued head.
    engines = [_QueueEngine(1), _QueueEngine(1)]
    cluster = DataParallelCluster(engines, policy="least_loaded")
    for i in range(3):
        cluster.dispatch(_FakeRequest(rid=i))
    assert cluster.queue_len() == 1
    engines[0].in_flight = 0  # capacity appears out of band
    assert cluster.dispatch(_FakeRequest(rid=3)) is None
    # Drain ran inside dispatch: the queued head (rid=2) took the slot, and
    # the new arrival stayed behind it in the queue.
    assert engines[0].submitted[-1].request_id == 2
    assert cluster.queue_len() == 1
