"""Differential checks: the fairness machinery is invisible when off.

The tenant-fairness stack must be pay-for-what-you-use:

* A system built without a ``tenancy`` policy executes **byte-identically**
  to the pre-fairness dispatcher — same per-engine request sequences, same
  stats, same event counts — whether or not the trace carries tenant or
  class labels (fig31 labels tenants without a fairness policy).
* A 1-tenant :class:`TenantPopulation` synthesizes **exactly** the
  anonymous generator's trace at equal seeds (same arrivals, lengths,
  adapter picks, ids), with only the labels added.
* Without a fairness policy, ``summary().extra`` carries no tenant block.

The driver-level guarantee (fig26–fig31 ``--quick`` JSONs byte-identical
across the PR) is the same property end-to-end; these tests pin it at the
component level so a regression fails fast and points at the layer.
"""

from __future__ import annotations

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.llm.model import LLAMA_7B
from repro.serving.admission import SloPolicy
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.tenants import DEFAULT_SLO_CLASSES, TenantPopulation
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace

_REGISTRY = None


def _registry():
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = AdapterRegistry.build(LLAMA_7B, 60)
    return _REGISTRY


def _anonymous_trace(rps=25.0, duration=12.0, seed=9):
    rng = RngStreams(seed).get("trace")
    return synthesize_trace(SPLITWISE_PROFILE, rps=rps, duration=duration,
                            rng=rng, registry=_registry())


def _run(trace, *, slo=None, seed=5, policy="least_loaded"):
    system = MultiReplicaSystem.build(
        "chameleon", n_replicas=2, dispatch_policy=policy,
        registry=_registry(), seed=seed, backpressure=True,
        engine_config=EngineConfig(max_batch_size=4), slo_policy=slo)
    system.run_trace(trace.fresh(), horizon=trace.duration)
    return system


def _fingerprint(system):
    stats = system.cluster.stats
    return {
        "per_engine": [[r.request_id for r in engine.all_requests]
                       for engine in system.engines],
        "dispatched": stats.dispatched,
        "queued": stats.queued,
        "shed": stats.shed,
        "queue_delays": list(stats.queue_delays),
        "events": system.sim.processed_events,
        "ttfts": sorted(
            (r.request_id, r.ttft) for r in system.all_requests()
            if r.first_token_time is not None),
    }


# --------------------------------------------------------------------- #
# Labels without a policy change nothing
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", ("least_loaded", "p2c", "round_robin"))
def test_tenant_labels_without_policy_are_inert(policy):
    anon = _anonymous_trace()
    labelled = _anonymous_trace()
    labelled.label_tenants(8, RngStreams(9).get("tenants"))
    base = _run(anon, policy=policy)
    tagged = _run(labelled, policy=policy)
    assert _fingerprint(base) == _fingerprint(tagged)
    assert not tagged.cluster.stats.tenants  # books never materialize


def test_class_labels_without_classes_are_inert():
    """slo_class labels replay unchanged against a class-blind SloPolicy."""
    population = TenantPopulation.build(4)
    trace = population.synthesize(
        rps=30.0, duration=12.0, rng=RngStreams(9).get("trace"),
        registry=_registry())
    slo = SloPolicy(ttft_deadline=1.0, mode="shed")  # classes=None
    labelled_print = _fingerprint(_run(trace, slo=slo))
    for request in trace.requests:
        request.tenant_id = None
        request.slo_class = None
    assert labelled_print == _fingerprint(_run(trace, slo=slo))


def test_no_tenant_block_without_policy():
    trace = _anonymous_trace()
    trace.label_tenants(4, RngStreams(9).get("tenants"))
    system = _run(trace)
    extra = system.summary(duration=trace.duration).extra
    assert not any(key.startswith("tenant_") for key in extra)


# --------------------------------------------------------------------- #
# 1-tenant population == anonymous generator
# --------------------------------------------------------------------- #
def test_one_tenant_population_matches_anonymous_generator():
    population = TenantPopulation.build(1)
    rng_a = RngStreams(9).get("trace")
    rng_b = RngStreams(9).get("trace")
    labelled = population.synthesize(rps=25.0, duration=12.0, rng=rng_a,
                                     registry=_registry())
    anon = synthesize_trace(SPLITWISE_PROFILE, rps=25.0, duration=12.0,
                            rng=rng_b, registry=_registry())
    assert len(labelled.requests) == len(anon.requests)
    for mine, theirs in zip(labelled.requests, anon.requests):
        assert mine.request_id == theirs.request_id
        assert mine.arrival_time == theirs.arrival_time
        assert mine.input_tokens == theirs.input_tokens
        assert mine.output_tokens == theirs.output_tokens
        assert mine.adapter_id == theirs.adapter_id
        assert mine.tenant_id == 0 and theirs.tenant_id is None
        assert mine.slo_class == "gold" and theirs.slo_class is None


def test_one_tenant_run_matches_anonymous_run():
    """End to end: the labelled 1-tenant trace executes identically to the
    anonymous one when no fairness policy is attached."""
    population = TenantPopulation.build(1)
    labelled = population.synthesize(
        rps=25.0, duration=12.0, rng=RngStreams(9).get("trace"),
        registry=_registry())
    assert _fingerprint(_run(labelled)) \
        == _fingerprint(_run(_anonymous_trace()))


# --------------------------------------------------------------------- #
# Class-aware deadlines degrade to the global deadline
# --------------------------------------------------------------------- #
def test_classless_policy_equals_class_policy_on_unlabelled_trace():
    trace = _anonymous_trace()
    plain = SloPolicy(ttft_deadline=1.0, mode="shed")
    classed = SloPolicy(ttft_deadline=1.0, mode="shed",
                        classes=DEFAULT_SLO_CLASSES)
    assert _fingerprint(_run(trace, slo=plain)) \
        == _fingerprint(_run(trace, slo=classed))
