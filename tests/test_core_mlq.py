"""Tests for the Chameleon multi-level-queue scheduler (§4.3)."""

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.core.mlq import MlqConfig, MlqScheduler
from repro.core.wrs import WorkloadBounds, WrsParams
from repro.hardware.gpu import A40_48GB
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B
from repro.serving.admission import AdmitResult
from repro.workload.request import Request, RequestState

BOUNDS = WorkloadBounds(max_input_tokens=4096, max_output_tokens=1024,
                        max_adapter_bytes=LLAMA_7B.adapter_bytes(128))


def make_mlq(config=None, n_adapters=20):
    registry = AdapterRegistry.build(LLAMA_7B, n_adapters)
    cost_model = CostModel(LLAMA_7B, A40_48GB)
    return MlqScheduler(LLAMA_7B, registry, cost_model, BOUNDS,
                        config or MlqConfig())


class FakeContext:
    """Scripted admission context for isolated scheduler testing."""

    def __init__(self, now=0.0, total_tokens=60_000, deny=None, results=None):
        self.now = now
        self.total_token_capacity = total_tokens
        self.deny = deny or {}
        self.admitted = []
        self.squashed = []
        self.free_bytes = 10 ** 12
        self._release_estimate = 100.0
        self._service_estimate = 1.0

    def try_admit(self, request):
        result = self.deny.get(request.request_id, AdmitResult.ADMITTED)
        if result is AdmitResult.ADMITTED:
            self.admitted.append(request)
            request.state = RequestState.PREFILL
        return result

    def is_adapter_available(self, request):
        return True

    def estimate_service_time(self, request):
        return self._service_estimate

    def estimate_earliest_release(self):
        return self._release_estimate

    def adapter_refcount(self, adapter_id):
        return 1

    scheduler = None  # set by tests that exercise squash re-queueing

    def squash(self, request):
        self.squashed.append(request)
        request.state = RequestState.QUEUED
        if self.scheduler is not None:
            self.scheduler.requeue_front(request, self.now)


def _req(rid, inp=100, out=50, adapter_id=0, predicted=None):
    r = Request(request_id=rid, arrival_time=0.0, input_tokens=inp,
                output_tokens=out, adapter_id=adapter_id)
    r.predicted_output_tokens = predicted if predicted is not None else out
    r.enqueue_time = 0.0
    return r


def test_enqueue_computes_wrs_and_token_cost():
    mlq = make_mlq()
    request = _req(0, inp=100, out=50, adapter_id=2)  # rank 32
    mlq.enqueue(request, 0.0)
    assert request.wrs is not None and request.wrs > 0
    adapter_tokens = -(-LLAMA_7B.adapter_bytes(32) // LLAMA_7B.kv_bytes_per_token)
    assert request.token_cost == 100 + 50 + adapter_tokens
    assert mlq.queue_len() == 1


def test_enqueue_requires_prediction():
    mlq = make_mlq()
    request = _req(0)
    request.predicted_output_tokens = None
    with pytest.raises(RuntimeError):
        mlq.enqueue(request, 0.0)


def test_single_queue_before_first_refresh():
    mlq = make_mlq()
    assert mlq.n_queues == 1


def test_select_admits_within_quota():
    mlq = make_mlq()
    for i in range(5):
        mlq.enqueue(_req(i), 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    assert len(ctx.admitted) == 5
    assert mlq.queue_len() == 0


def test_quota_charged_and_returned():
    mlq = make_mlq()
    request = _req(0)
    mlq.enqueue(request, 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    q = mlq.queues[0]
    assert q.borrowed == pytest.approx(request.token_cost)
    mlq.on_finish(request, 1.0)
    assert q.borrowed == 0.0


def test_quota_exhaustion_blocks_further_admissions():
    mlq = make_mlq(MlqConfig(token_overcommit=1.0))
    reqs = [_req(i, inp=1000, out=500) for i in range(10)]
    for r in reqs:
        mlq.enqueue(r, 0.0)
    cost = reqs[0].token_cost  # includes the (shared) adapter's tokens
    ctx = FakeContext(total_tokens=3 * cost)
    mlq.select(ctx)
    # The adapter is charged once, so three base costs plus one adapter
    # charge fit in the pool; the fourth request does not.
    assert len(ctx.admitted) == 3
    assert mlq.queue_len() == 7


def test_liveness_guard_admits_oversized_head():
    """A head larger than the whole quota must still run when the lane idles."""
    mlq = make_mlq()
    big = _req(0, inp=4000, out=1000)
    mlq.enqueue(big, 0.0)
    ctx = FakeContext(total_tokens=100)   # quota far below the request cost
    mlq.select(ctx)
    assert ctx.admitted == [big]


def test_refresh_reclusters_into_multiple_queues():
    config = MlqConfig(min_samples=20)
    mlq = make_mlq(config)
    # Two clearly-separated size groups.
    for i in range(15):
        mlq.enqueue(_req(i, inp=50, out=10, adapter_id=0), 0.0)        # small
    for i in range(15, 30):
        mlq.enqueue(_req(i, inp=3000, out=800, adapter_id=4), 0.0)     # large
    mlq.on_schedule(1.0)
    assert mlq.n_queues >= 2
    assert mlq.refresh_count == 1
    # Waiting requests got re-binned: smalls ahead of larges.
    small_q, large_q = mlq.queues[0], mlq.queues[-1]
    assert len(small_q.items) == 15
    assert len(large_q.items) == 15
    assert sum(q.quota for q in mlq.queues) == 0  # quotas assigned at select
    ctx = FakeContext()
    mlq.select(ctx)
    assert sum(q.quota for q in mlq.queues) > 0


def test_refresh_waits_for_min_samples():
    config = MlqConfig(min_samples=100)
    mlq = make_mlq(config)
    for i in range(10):
        mlq.enqueue(_req(i), 0.0)
    mlq.on_schedule(1.0)
    assert mlq.refresh_count == 0


def test_periodic_refresh_interval():
    config = MlqConfig(min_samples=5, t_refresh=300.0)
    mlq = make_mlq(config)
    for i in range(10):
        mlq.enqueue(_req(i, inp=100 * (1 + i % 3)), 0.0)
    mlq.on_schedule(1.0)
    assert mlq.refresh_count == 1
    mlq.on_schedule(100.0)             # too soon
    assert mlq.refresh_count == 1
    mlq.on_schedule(302.0)
    assert mlq.refresh_count == 2


def test_smaller_queue_admitted_first():
    config = MlqConfig(min_samples=4)
    mlq = make_mlq(config)
    for i in range(3):
        mlq.enqueue(_req(i, inp=3000, out=800, adapter_id=4), 0.0)   # large first
    for i in range(3, 6):
        mlq.enqueue(_req(i, inp=50, out=10, adapter_id=0), 0.0)      # small later
    mlq.on_schedule(1.0)  # build the two queues
    ctx = FakeContext()
    mlq.select(ctx)
    # The express lane goes first even though the larges arrived earlier.
    assert ctx.admitted[0].request_id in {3, 4, 5}
    # Nobody starves: every request is eventually admitted this round or the
    # next (quota churn), and the small lane is never empty-handed.
    small_admitted = [r for r in ctx.admitted if r.input_tokens == 50]
    assert small_admitted


def test_spare_redistribution_phase2():
    """An empty small queue lends its quota to the backlogged large queue."""
    config = MlqConfig(min_samples=4)
    mlq = make_mlq(config)
    for i in range(3):
        mlq.enqueue(_req(i, inp=50, out=10, adapter_id=0), 0.0)
    for i in range(3, 6):
        mlq.enqueue(_req(i, inp=3000, out=800, adapter_id=4), 0.0)
    mlq.on_schedule(1.0)
    large_cost = mlq.queues[-1].items[0].token_cost
    # Total tokens cover the smalls plus ~2.5 larges: phase 1 alone would
    # stop the large queue at its own (small) quota share.
    ctx = FakeContext(total_tokens=int(3 * 200 + 2.5 * large_cost))
    mlq.select(ctx)
    admitted_large = [r for r in ctx.admitted if r.input_tokens == 3000]
    assert len(admitted_large) >= 2


def test_bypass_on_adapter_room_failure():
    mlq = make_mlq()
    blocked = _req(0, adapter_id=4)           # rank-128 adapter, no room
    runner_up = _req(1, adapter_id=0)
    mlq.enqueue(blocked, 0.0)
    mlq.enqueue(runner_up, 0.0)
    ctx = FakeContext(deny={0: AdmitResult.NO_ADAPTER_ROOM})
    ctx._release_estimate = 100.0   # blocked request would wait a long time
    ctx._service_estimate = 1.0     # bypasser is short
    mlq.select(ctx)
    assert ctx.admitted == [runner_up]
    assert mlq.bypass_count == 1
    assert mlq.queue_len() == 1     # blocked stays at the head


def test_bypass_denied_when_wait_is_short():
    mlq = make_mlq()
    blocked = _req(0, adapter_id=4)
    runner_up = _req(1, adapter_id=0)
    mlq.enqueue(blocked, 0.0)
    mlq.enqueue(runner_up, 0.0)
    ctx = FakeContext(deny={0: AdmitResult.NO_ADAPTER_ROOM})
    ctx._release_estimate = 0.5     # memory frees soon
    ctx._service_estimate = 1.0     # bypasser would outlast the wait
    mlq.select(ctx)
    assert ctx.admitted == []
    assert mlq.bypass_count == 0


def test_bypass_disabled_by_config():
    mlq = make_mlq(MlqConfig(bypass_enabled=False))
    blocked = _req(0, adapter_id=4)
    runner_up = _req(1, adapter_id=0)
    mlq.enqueue(blocked, 0.0)
    mlq.enqueue(runner_up, 0.0)
    ctx = FakeContext(deny={0: AdmitResult.NO_ADAPTER_ROOM})
    mlq.select(ctx)
    assert ctx.admitted == []


def test_squash_when_memory_frees_early():
    mlq = make_mlq()
    blocked = _req(0, adapter_id=4)
    bypasser = _req(1, adapter_id=0)
    mlq.enqueue(blocked, 0.0)
    mlq.enqueue(bypasser, 0.0)
    ctx = FakeContext(deny={0: AdmitResult.NO_ADAPTER_ROOM})
    mlq.select(ctx)
    assert mlq.bypass_count == 1
    # Next round: plenty of free memory -> the bypasser is squashed.
    ctx2 = FakeContext()
    ctx2.scheduler = mlq
    bypasser.kv_reserved_bytes = 10 ** 9
    mlq.select(ctx2)
    assert ctx2.squashed == [bypasser]
    # Both the blocked head and the re-queued bypasser were then admitted.
    assert {r.request_id for r in ctx2.admitted} == {0, 1}


def test_static_config_fixed_queues():
    mlq = make_mlq(MlqConfig(static_k=4))
    assert mlq.n_queues == 4
    mlq.on_schedule(1000.0)
    assert mlq.refresh_count == 0      # never re-clusters
    for i in range(20):
        mlq.enqueue(_req(i, inp=100 * (1 + i % 4)), 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    assert len(ctx.admitted) == 20
    # Static quotas: equal split.
    quotas = {q.quota for q in mlq.queues}
    assert len(quotas) == 1


def test_output_only_mode_ignores_input_and_adapter():
    mlq = make_mlq(MlqConfig(wrs_params=WrsParams(mode="output_only")))
    a = _req(0, inp=4000, out=10, adapter_id=4)
    b = _req(1, inp=10, out=10, adapter_id=0)
    mlq.enqueue(a, 0.0)
    mlq.enqueue(b, 0.0)
    assert a.wrs == pytest.approx(b.wrs)


def test_requeue_front_preserves_lane():
    mlq = make_mlq()
    first, second = _req(0), _req(1)
    mlq.enqueue(first, 0.0)
    mlq.enqueue(second, 0.0)
    popped = mlq.queues[0].items.pop(0)
    mlq.requeue_front(popped, 1.0)
    assert mlq.queues[0].items[0] is popped


def test_queued_adapter_ids():
    mlq = make_mlq()
    mlq.enqueue(_req(0, adapter_id=3), 0.0)
    mlq.enqueue(_req(1, adapter_id=None), 0.0)
    assert mlq.queued_adapter_ids() == {3}


def test_charges_survive_refresh():
    """Borrowed tokens are carried to the new queues on re-clustering."""
    config = MlqConfig(min_samples=6)
    mlq = make_mlq(config)
    running = _req(99, inp=3000, out=800, adapter_id=4)
    mlq.enqueue(running, 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    assert ctx.admitted == [running]
    for i in range(10):
        mlq.enqueue(_req(i, inp=50 + 400 * (i % 2), out=10), 0.0)
    mlq.on_schedule(1.0)
    total_borrowed = sum(q.borrowed for q in mlq.queues)
    assert total_borrowed == pytest.approx(running.token_cost)
    mlq.on_finish(running, 2.0)
    assert sum(q.borrowed for q in mlq.queues) == 0.0


def test_shared_adapter_charged_once():
    """Adapter tokens are charged per adapter, not per request (§4.3's memory
    tokens describe real bytes; adapter weights are shared)."""
    mlq = make_mlq()
    first = _req(0, adapter_id=4)
    second = _req(1, adapter_id=4)   # same adapter, concurrently running
    mlq.enqueue(first, 0.0)
    mlq.enqueue(second, 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    assert len(ctx.admitted) == 2
    adapter_tokens = -(-LLAMA_7B.adapter_bytes(128) // LLAMA_7B.kv_bytes_per_token)
    base = first.input_tokens + first.predicted_output_tokens
    total_borrowed = sum(q.borrowed for q in mlq.queues)
    # One adapter charge, two base charges.
    assert total_borrowed == pytest.approx(2 * base + adapter_tokens)
    # The adapter charge is returned with the *last* holder.
    mlq.on_finish(first, 1.0)
    mlq.on_finish(second, 1.0)
    assert sum(q.borrowed for q in mlq.queues) == pytest.approx(0.0)
    assert mlq._adapter_active.get(4, 0) == 0


def test_squash_returns_borrowed_tokens():
    """A squashed request's quota must flow back (no token leak)."""
    mlq = make_mlq()
    request = _req(0, adapter_id=2)
    mlq.enqueue(request, 0.0)
    ctx = FakeContext()
    mlq.select(ctx)
    assert sum(q.borrowed for q in mlq.queues) > 0
    # The engine squashes the request: requeue_front must release charges.
    mlq.requeue_front(request, 1.0)
    assert sum(q.borrowed for q in mlq.queues) == pytest.approx(0.0)
    assert mlq._adapter_active.get(2, 0) == 0
    # Re-admission charges again, exactly once.
    ctx2 = FakeContext()
    request.state = RequestState.QUEUED
    mlq.select(ctx2)
    assert ctx2.admitted == [request]
    mlq.on_finish(request, 2.0)
    assert sum(q.borrowed for q in mlq.queues) == pytest.approx(0.0)
