"""Tests for the Chameleon Adapter Cache (§4.2)."""

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.core.cache import CachePrefetcher, ChameleonCacheManager
from repro.core.eviction import LruPolicy
from repro.hardware.gpu import A40_48GB, GB, GpuDevice
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.model import LLAMA_7B
from repro.predictor.load_forecast import HistogramLoadPredictor
from repro.sim.simulator import Simulator
from repro.workload.request import Request


@pytest.fixture
def env():
    sim = Simulator()
    gpu = GpuDevice(A40_48GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 20)
    mgr = ChameleonCacheManager(sim, gpu, link, registry)
    return sim, gpu, link, registry, mgr


def _request(adapter_id, rid=0):
    return Request(request_id=rid, arrival_time=0.0, input_tokens=10,
                   output_tokens=5, adapter_id=adapter_id)


def test_idle_adapter_is_cached_not_discarded(env):
    """The defining difference from S-LoRA (§4.2): idle adapters stay."""
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.release(0)
    assert mgr.is_resident(0)
    assert gpu.used("adapter_cache") == registry.get(0).size_bytes
    assert gpu.used("adapter") == 0
    assert mgr.cached_ids() == [0]


def test_reacquire_cached_adapter_is_hit(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.release(0)
    assert mgr.acquire(0).name == "RESIDENT"
    assert mgr.stats.hits == 1
    assert gpu.used("adapter") == registry.get(0).size_bytes
    assert gpu.used("adapter_cache") == 0


def test_cache_shrinks_under_memory_pressure(env):
    """Dynamic cache sizing (§4.2.1): eviction frees exactly enough bytes."""
    sim, gpu, link, registry, mgr = env
    for aid in (0, 1, 2):
        mgr.acquire(aid)
    sim.run()
    for aid in (0, 1, 2):
        mgr.release(aid)
    cached = gpu.used("adapter_cache")
    gpu.reserve("kv", gpu.free_bytes)  # all free memory taken by KV
    assert mgr.make_room(registry.get(0).size_bytes)
    assert gpu.used("adapter_cache") < cached
    assert gpu.free_bytes >= registry.get(0).size_bytes


def test_eviction_follows_policy_order(env):
    sim, gpu, link, registry, mgr = env
    # adapter 0 (rank 8, small) and adapter 4 (rank 128, large), equal usage.
    for aid in (0, 4):
        mgr.acquire(aid)
    sim.run()
    for aid in (0, 4):
        mgr.release(aid)
    gpu.reserve("kv", gpu.free_bytes)
    mgr.make_room(registry.get(0).size_bytes)
    assert not mgr.is_resident(0)   # small evicted first (cost-aware)
    assert mgr.is_resident(4)


def test_lru_policy_changes_victim(env):
    sim, gpu, link, registry, mgr = env
    mgr.policy = LruPolicy()
    for aid, t in ((0, None), (4, None)):
        mgr.acquire(aid)
    sim.run()
    mgr.release(0)
    mgr.release(4)
    mgr.entries[0].last_used = 100.0
    mgr.entries[4].last_used = 1.0   # LRU victim despite being large
    gpu.reserve("kv", gpu.free_bytes)
    mgr.make_room(registry.get(4).size_bytes)
    assert not mgr.is_resident(4)
    assert mgr.is_resident(0)


def test_queued_needed_adapters_spared_when_possible(env):
    """§4.2.2: adapters of queued requests are evicted only under pressure."""
    sim, gpu, link, registry, mgr = env
    for aid in (0, 1):
        mgr.acquire(aid)
    sim.run()
    mgr.release(0)
    mgr.release(1)
    mgr.set_queued_needed({1})
    gpu.reserve("kv", gpu.free_bytes)
    mgr.make_room(registry.get(0).size_bytes)
    assert not mgr.is_resident(0)   # non-queued tier evicted first
    assert mgr.is_resident(1)


def test_queued_needed_sacrificed_under_pressure(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(1)
    sim.run()
    mgr.release(1)
    mgr.set_queued_needed({1})
    gpu.reserve("kv", gpu.free_bytes)
    assert mgr.make_room(registry.get(1).size_bytes)
    assert not mgr.is_resident(1)


def test_never_evicts_active_adapters(env):
    """§4.2.2: refcount > 0 means pinned, whatever the pressure."""
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    gpu.reserve("kv", gpu.free_bytes)
    assert mgr.make_room(GB) is False
    assert mgr.is_resident(0)


def test_metadata_tracks_usage(env):
    sim, gpu, link, registry, mgr = env
    mgr.on_request_arrival(_request(3))
    entry = mgr.entry(3)
    assert entry.frequency >= 1.0
    assert entry.last_used == sim.now


def test_release_while_loading_then_complete_goes_to_cache(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(2)
    mgr.release(2)          # requester squashed mid-load
    sim.run()
    assert mgr.is_resident(2)
    assert gpu.used("adapter_cache") == registry.get(2).size_bytes


def test_prefetcher_warms_periodic_adapter():
    sim = Simulator()
    gpu = GpuDevice(A40_48GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 20)
    prefetcher = CachePrefetcher(sim, HistogramLoadPredictor(), interval=1.0,
                                 horizon=5.0, min_probability=0.2)
    mgr = ChameleonCacheManager(sim, gpu, link, registry,
                                prefetch_on_arrival=False, prefetcher=prefetcher)
    # Simulate a strictly periodic adapter-3 pattern.
    for t in range(0, 40, 4):
        sim.schedule_at(float(t), mgr.on_request_arrival, _request(3))
    sim.run(until=41.0)
    assert prefetcher.prefetches_issued > 0
    assert mgr.is_resident(3) or mgr.is_loading(3)


def test_cached_bytes_property(env):
    sim, gpu, link, registry, mgr = env
    assert mgr.cached_bytes == 0
    mgr.acquire(0)
    sim.run()
    mgr.release(0)
    assert mgr.cached_bytes == registry.get(0).size_bytes
