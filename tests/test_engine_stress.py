"""Engine stress tests: bypass/squash through the real engine, tiny GPUs,
degraded links, tensor-parallel runs, and end-to-end hypothesis invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import A100_80GB, GB
from repro.hardware.pcie import PcieSpec
from repro.llm.model import LLAMA_7B
from repro.serving.engine import EngineConfig
from repro.systems import build_system
from repro.workload.request import Request
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace
from repro.sim.rng import RngStreams


def _requests(specs):
    """specs: list of (arrival, input, output, adapter_id)."""
    return [
        Request(request_id=i, arrival_time=a, input_tokens=inp,
                output_tokens=out, adapter_id=aid)
        for i, (a, inp, out, aid) in enumerate(specs)
    ]


# --------------------------------------------------------------------- #
# Adapter-room pressure: the bypass trigger through the real engine
# --------------------------------------------------------------------- #
def test_adapter_room_pressure_on_tiny_gpu():
    """On a 15 GiB device only ~1 GiB remains after weights: rank-128
    adapters (256 MiB) barely fit, so admissions hit NO_ADAPTER_ROOM and the
    MLQ's bypass machinery gets exercised without deadlocking."""
    registry = AdapterRegistry.build(LLAMA_7B, 10, ranks=(128,))
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=30.0,
                             rng=RngStreams(3).get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry,
                          gpu_memory_bytes=15 * GB, seed=3)
    system.run_trace(trace.fresh(), horizon=600.0)
    done = [r for r in system.engine.all_requests if r.finished]
    assert len(done) >= 0.9 * len(trace)


def test_squash_bounded_under_pressure():
    registry = AdapterRegistry.build(LLAMA_7B, 10, ranks=(128,))
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=30.0,
                             rng=RngStreams(4).get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry,
                          gpu_memory_bytes=15 * GB, seed=4)
    system.run_trace(trace.fresh(), horizon=600.0)
    # §4.3.3: "we see at most 5% of requests getting squashed" — allow slack
    # on this adversarial configuration.
    assert system.engine.stats.squashes <= 0.10 * len(trace)


def test_degraded_link_still_completes():
    """A 20x slower link (500 MB/s): adapter loads cost hundreds of ms, but
    nothing hangs and the cache advantage grows large."""
    registry = AdapterRegistry.build(LLAMA_7B, 50)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=3.0, duration=120.0,
                             rng=RngStreams(5).get("trace"), registry=registry)
    slow = PcieSpec(bandwidth_bytes=500 * 1024 * 1024, setup_latency=2e-3)
    results = {}
    for preset in ("slora", "chameleon"):
        system = build_system(preset, registry=registry, pcie=slow, seed=5)
        system.run_trace(trace.fresh())
        done = [r for r in system.engine.all_requests
                if r.finished and r.arrival_time > 30.0]  # skip cold start
        results[preset] = float(np.mean([r.ttft for r in done]))
        assert all(r.finished for r in system.engine.all_requests)
    assert results["chameleon"] < 0.7 * results["slora"]


def test_tensor_parallel_end_to_end():
    registry = AdapterRegistry.build(LLAMA_7B, 30)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=10.0, duration=20.0,
                             rng=RngStreams(6).get("trace"), registry=registry)
    tp1 = build_system("chameleon", registry=registry, gpu=A100_80GB,
                       tp_degree=1, seed=6)
    tp4 = build_system("chameleon", registry=registry, gpu=A100_80GB,
                       tp_degree=4, seed=6)
    tp1.run_trace(trace.fresh())
    tp4.run_trace(trace.fresh())
    # More compute -> faster prefill -> lower median TTFT.
    assert tp4.summary().p50_ttft < tp1.summary().p50_ttft
    assert all(r.finished for r in tp4.engine.all_requests)


def test_zero_batch_cap_rejection_is_clean():
    """A batch cap of 1 serializes everything but must not deadlock."""
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    reqs = _requests([(0.0, 50, 3, 0), (0.0, 50, 3, 1), (0.0, 50, 3, 2)])
    system = build_system("slora", registry=registry,
                          engine_config=EngineConfig(max_batch_size=1))
    system.run_trace(reqs)
    assert all(r.finished for r in reqs)
    finish_times = sorted(r.finish_time for r in reqs)
    assert finish_times == [r.finish_time for r in sorted(reqs, key=lambda x: x.finish_time)]


def test_single_token_outputs():
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    reqs = _requests([(0.1 * i, 20, 1, i % 5) for i in range(10)])
    system = build_system("chameleon", registry=registry)
    system.run_trace(reqs)
    for r in reqs:
        assert r.finished
        assert r.first_token_time == r.finish_time


def test_burst_of_simultaneous_arrivals():
    registry = AdapterRegistry.build(LLAMA_7B, 20)
    reqs = _requests([(1.0, 100, 5, i % 20) for i in range(60)])
    system = build_system("chameleon", registry=registry)
    system.run_trace(reqs)
    assert all(r.finished for r in reqs)
    # Everyone arrived together; TTFTs spread out by prefill-budget ordering.
    ttfts = sorted(r.ttft for r in reqs)
    assert ttfts[-1] > ttfts[0]


# --------------------------------------------------------------------- #
# Hypothesis: end-to-end conservation invariants on random tiny workloads
# --------------------------------------------------------------------- #
@st.composite
def tiny_workload(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for i in range(n):
        specs.append((
            draw(st.floats(min_value=0.0, max_value=5.0)),
            draw(st.integers(min_value=1, max_value=800)),
            draw(st.integers(min_value=1, max_value=40)),
            draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9))),
        ))
    return specs


@given(tiny_workload(), st.sampled_from(["slora", "chameleon", "slora_sjf"]))
@settings(max_examples=25, deadline=None)
def test_random_workload_conservation(specs, preset):
    registry = AdapterRegistry.build(LLAMA_7B, 10)
    requests = _requests(specs)
    system = build_system(preset, registry=registry, seed=0)
    system.run_trace(requests)
    for r in requests:
        assert r.finished
        assert r.tokens_generated == r.output_tokens
        assert r.prefill_done_tokens == r.input_tokens
        assert r.finish_time >= r.first_token_time >= r.arrival_time
        gaps = r.token_gaps()
        assert all(g >= 0 for g in gaps)
    gpu = system.gpu
    assert gpu.used("kv") == 0
    assert gpu.used("adapter") == 0
    # Every pin was released.
    for entry in system.adapter_manager.entries.values():
        assert entry.refcount == 0
