"""Tests for trace persistence and statistics."""

import pytest

from repro.workload.io import load_trace, save_trace, trace_statistics
from repro.workload.trace import SPLITWISE_PROFILE, Trace, synthesize_trace


@pytest.fixture
def trace(big_registry, rng_streams):
    return synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=30.0,
                            rng=rng_streams.get("trace"), registry=big_registry)


def test_roundtrip_preserves_everything(trace, tmp_path):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    assert loaded.rps == trace.rps
    assert loaded.duration == trace.duration
    assert loaded.profile == trace.profile
    for a, b in zip(trace.requests, loaded.requests):
        assert (a.request_id, a.arrival_time, a.input_tokens,
                a.output_tokens, a.adapter_id) == (
            b.request_id, b.arrival_time, b.input_tokens,
            b.output_tokens, b.adapter_id)


def test_loaded_trace_is_runnable(trace, tmp_path, big_registry):
    from repro.systems import build_system

    path = tmp_path / "trace.json"
    save_trace(trace, path)
    loaded = load_trace(path)
    system = build_system("slora", registry=big_registry)
    system.run_trace(loaded.fresh())
    assert system.summary().n_requests == len(trace)


def test_bad_version_rejected(trace, tmp_path):
    import json

    path = tmp_path / "trace.json"
    save_trace(trace, path)
    payload = json.loads(path.read_text())
    payload["format_version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_trace(path)


def test_statistics_values(trace, big_registry):
    stats = trace_statistics(trace)
    assert stats.n_requests == len(trace)
    # A 30 s window catches a whole burst of the 120 s cycle, so the
    # realized rate sits above the long-run mean.
    assert stats.mean_rps == pytest.approx(5.0, rel=0.7)
    assert stats.p50_input_tokens <= stats.mean_input_tokens  # heavy tail
    assert stats.p99_input_tokens > stats.p50_input_tokens
    assert 0 < stats.distinct_adapters <= 100
    # Power-law popularity: the hottest adapter takes a visible share.
    assert stats.top_adapter_share > 1.0 / 100


def test_statistics_empty_rejected():
    with pytest.raises(ValueError):
        trace_statistics(Trace(requests=[], profile=SPLITWISE_PROFILE,
                               rps=1.0, duration=1.0))
