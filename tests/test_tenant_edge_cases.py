"""Edge cases for the multi-tenant workload layer.

``Trace.label_tenants``, :class:`TenantPopulation`, the hot-tenant storm
overlay, and :class:`TenantFairnessPolicy` construction, at their boundary
inputs: 1-tenant populations, zero skew, empty traces, rejected kwargs, and
the deliberate formula duplication between ``label_tenants`` and
``distributions.zipf_weights`` (pinned allclose here so the two
normalizations cannot silently drift apart).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quotas import QueueStats
from repro.serving.admission import TenantFairnessPolicy
from repro.sim.rng import RngStreams
from repro.workload.distributions import zipf_weights
from repro.workload.tenants import (
    DEFAULT_SLO_CLASSES,
    SloClass,
    TenantPopulation,
    TenantSpec,
    inject_hot_tenant_storm,
)
from repro.workload.trace import SPLITWISE_PROFILE, Trace, synthesize_trace


def _trace(rps=20.0, duration=10.0, seed=3):
    return synthesize_trace(SPLITWISE_PROFILE, rps=rps, duration=duration,
                            rng=RngStreams(seed).get("trace"))


# --------------------------------------------------------------------- #
# Trace.label_tenants
# --------------------------------------------------------------------- #
def test_label_tenants_single_tenant_labels_everything_zero():
    trace = _trace()
    out = trace.label_tenants(1, RngStreams(3).get("tenants"))
    assert out is trace
    assert all(r.tenant_id == 0 for r in trace.requests)


def test_label_tenants_empty_trace_returns_self_without_drawing():
    empty = Trace(requests=[], profile=SPLITWISE_PROFILE, rps=0.0,
                  duration=0.0)
    rng = RngStreams(3).get("tenants")
    twin = RngStreams(3).get("tenants")
    assert empty.label_tenants(4, rng) is empty
    # The rng must be untouched: next draw matches a fresh stream.
    assert rng.random() == twin.random()


def test_label_tenants_is_deterministic_on_the_tenants_stream():
    a, b = _trace(), _trace()
    a.label_tenants(6, RngStreams(3).get("tenants"))
    b.label_tenants(6, RngStreams(3).get("tenants"))
    assert [r.tenant_id for r in a.requests] \
        == [r.tenant_id for r in b.requests]


def test_label_tenants_skew_zero_is_uniform():
    trace = _trace(rps=120.0, duration=30.0)
    trace.label_tenants(3, RngStreams(3).get("tenants"), skew=0.0)
    counts = np.bincount([r.tenant_id for r in trace.requests], minlength=3)
    # ~1200 i.i.d. uniform draws over 3 bins: each within 20% of n/3.
    assert counts.min() > 0.8 * len(trace.requests) / 3
    assert counts.max() < 1.2 * len(trace.requests) / 3


def test_label_tenants_skew_favors_tenant_zero():
    trace = _trace(rps=120.0, duration=30.0)
    trace.label_tenants(6, RngStreams(3).get("tenants"), skew=1.5)
    counts = np.bincount([r.tenant_id for r in trace.requests], minlength=6)
    assert counts[0] > counts[-1]


def test_label_tenants_validates_arguments():
    trace = _trace(duration=2.0)
    rng = RngStreams(3).get("tenants")
    with pytest.raises(ValueError, match="n_tenants"):
        trace.label_tenants(0, rng)
    with pytest.raises(ValueError, match="skew"):
        trace.label_tenants(3, rng, skew=-0.1)


@pytest.mark.parametrize("skew", (0.0, 0.7, 1.2, 2.0))
@pytest.mark.parametrize("n", (1, 3, 17))
def test_label_tenants_formula_matches_zipf_weights(n, skew):
    """label_tenants inlines 1/(t+1)**skew instead of calling zipf_weights:
    pow(x, -a) and 1/pow(x, a) differ by an ulp and any weight change can
    flip rng.choice draws, so the inline form is frozen for byte-stability.
    This pin is the drift alarm: if either normalization changes, it fires.
    """
    inline = np.array([1.0 / (t + 1) ** skew for t in range(n)])
    inline = inline / inline.sum()
    np.testing.assert_allclose(inline, zipf_weights(n, skew), rtol=1e-12)


# --------------------------------------------------------------------- #
# TenantPopulation.build / synthesize
# --------------------------------------------------------------------- #
def test_build_validates_arguments():
    with pytest.raises(ValueError, match="n_tenants"):
        TenantPopulation.build(0)
    with pytest.raises(ValueError, match="skew"):
        TenantPopulation.build(3, skew=-1.0)
    with pytest.raises(ValueError, match="class_cycle"):
        TenantPopulation.build(3, class_cycle=())


def test_build_skew_zero_gives_uniform_shares():
    population = TenantPopulation.build(5, skew=0.0)
    shares = population.shares()
    assert all(share == pytest.approx(0.2) for share in shares.values())


def test_build_deals_classes_round_robin_down_the_size_ranking():
    population = TenantPopulation.build(5)
    assert [spec.slo_class for spec in population.tenants] \
        == ["gold", "standard", "batch", "gold", "standard"]
    # Zipf: tenant 0 (gold) is the biggest, shares strictly decreasing.
    shares = [spec.share for spec in population.tenants]
    assert shares == sorted(shares, reverse=True)


def test_build_phase_cycle_staggers_but_keeps_tenant_zero_at_zero():
    population = TenantPopulation.build(4, phase_cycle=60.0)
    assert [spec.phase for spec in population.tenants] \
        == [0.0, 15.0, 30.0, 45.0]
    # No phase_cycle: everyone at phase 0 (the anonymous-identity default).
    assert all(s.phase == 0.0 for s in TenantPopulation.build(4).tenants)


def test_population_rejects_duplicate_and_unknown():
    spec = TenantSpec(tenant_id=0, share=1.0, slo_class="gold")
    with pytest.raises(ValueError, match="duplicate"):
        TenantPopulation(tenants=(spec, spec), classes=dict(DEFAULT_SLO_CLASSES))
    with pytest.raises(ValueError, match="unknown class"):
        TenantPopulation(
            tenants=(TenantSpec(tenant_id=0, share=1.0, slo_class="platinum"),),
            classes=dict(DEFAULT_SLO_CLASSES))
    with pytest.raises(ValueError, match="share"):
        TenantSpec(tenant_id=0, share=0.0, slo_class="gold")


def test_slo_class_validation():
    with pytest.raises(ValueError, match="deadline_scale"):
        SloClass(name="x", deadline_scale=0.0)
    with pytest.raises(ValueError, match="slowdown_target"):
        SloClass(name="x", slowdown_target=-1.0)
    with pytest.raises(ValueError, match="weight"):
        SloClass(name="x", weight=0.0)


def test_weight_of_and_unknown_tenant():
    population = TenantPopulation.build(3)
    assert population.weight_of(0) == DEFAULT_SLO_CLASSES["gold"].weight
    assert population.weight_of(2) == DEFAULT_SLO_CLASSES["batch"].weight
    with pytest.raises(KeyError):
        population.weight_of(99)


def test_synthesize_rejects_burst_phase_kwarg():
    population = TenantPopulation.build(2)
    with pytest.raises(ValueError, match="burst_phase"):
        population.synthesize(rps=10.0, duration=5.0,
                              rng=RngStreams(3).get("trace"),
                              burst_phase=7.0)


def test_synthesize_renumbers_ids_in_arrival_order():
    population = TenantPopulation.build(3)
    trace = population.synthesize(rps=30.0, duration=8.0,
                                  rng=RngStreams(3).get("trace"))
    arrivals = [r.arrival_time for r in trace.requests]
    assert arrivals == sorted(arrivals)
    assert [r.request_id for r in trace.requests] \
        == list(range(len(trace.requests)))
    assert {r.tenant_id for r in trace.requests} <= {0, 1, 2}


# --------------------------------------------------------------------- #
# inject_hot_tenant_storm
# --------------------------------------------------------------------- #
def test_storm_validates_tenant_and_window():
    population = TenantPopulation.build(2)
    trace = population.synthesize(rps=10.0, duration=5.0,
                                  rng=RngStreams(3).get("trace"))
    rng = RngStreams(3).get("storm")
    with pytest.raises(ValueError, match="unknown storm tenant"):
        inject_hot_tenant_storm(trace, population, 9, 20.0, 1.0, 2.0, rng)
    with pytest.raises(ValueError, match="storm window"):
        inject_hot_tenant_storm(trace, population, 0, 20.0, -1.0, 2.0, rng)
    with pytest.raises(ValueError, match="storm window"):
        inject_hot_tenant_storm(trace, population, 0, 20.0, 1.0, 0.0, rng)


def test_storm_overlay_is_confined_and_stamped():
    population = TenantPopulation.build(3)
    base = population.synthesize(rps=10.0, duration=20.0,
                                 rng=RngStreams(3).get("trace"))
    stormed = inject_hot_tenant_storm(
        base, population, 1, storm_rps=40.0, start=5.0, storm_duration=4.0,
        rng=RngStreams(3).get("storm"))
    extra = len(stormed.requests) - len(base.requests)
    assert extra > 0
    in_window = [r for r in stormed.requests
                 if 5.0 <= r.arrival_time < 9.0 and r.tenant_id == 1]
    assert len(in_window) >= extra  # all storm arrivals land in the window
    assert all(r.slo_class == "standard" for r in in_window
               if r.tenant_id == 1)
    assert [r.request_id for r in stormed.requests] \
        == list(range(len(stormed.requests)))


# --------------------------------------------------------------------- #
# queue_stats and policy construction
# --------------------------------------------------------------------- #
def test_queue_stats_gives_idle_tenants_a_live_lane():
    population = TenantPopulation.build(3)
    trace = population.synthesize(rps=10.0, duration=8.0,
                                  rng=RngStreams(3).get("trace"))
    # Strand tenant 2 with no traffic at all.
    trace.requests = [r for r in trace.requests if r.tenant_id != 2]
    stats = population.queue_stats(trace, expected_duration=0.5)
    assert set(stats) == {0, 1, 2}
    assert stats[2].arrival_rate == 0.0
    fallback = (SPLITWISE_PROFILE.mean_input_tokens
                + SPLITWISE_PROFILE.mean_output_tokens)
    assert stats[2].max_request_tokens == pytest.approx(fallback)
    assert stats[0].arrival_rate > 0
    with pytest.raises(ValueError, match="expected_duration"):
        population.queue_stats(trace, expected_duration=0.0)


def test_from_queue_stats_solves_positive_rate_caps():
    lanes = {
        0: QueueStats(max_request_tokens=512.0, expected_duration=0.5,
                      arrival_rate=8.0),
        1: QueueStats(max_request_tokens=512.0, expected_duration=0.5,
                      arrival_rate=2.0),
    }
    policy = TenantFairnessPolicy.from_queue_stats(
        lanes, total_tokens=65536.0, slo=2.0, classes=DEFAULT_SLO_CLASSES)
    assert set(policy.quota_rps) == {0, 1}
    assert all(rate > 0 for rate in policy.quota_rps.values())
    # The busier lane earns the larger admission cap.
    assert policy.quota_rps[0] > policy.quota_rps[1]
    with pytest.raises(ValueError, match="tenant lane"):
        TenantFairnessPolicy.from_queue_stats({}, 1000.0, 2.0)


def test_policy_validation_and_defaults():
    with pytest.raises(ValueError, match="quota_burst"):
        TenantFairnessPolicy(quota_burst=0.5)
    with pytest.raises(ValueError, match="default_weight"):
        TenantFairnessPolicy(default_weight=0.0)
    with pytest.raises(ValueError, match="quota_rps"):
        TenantFairnessPolicy(quota_rps={0: -1.0})
    policy = TenantFairnessPolicy(classes=DEFAULT_SLO_CLASSES)
    assert policy.weight_for("gold") == DEFAULT_SLO_CLASSES["gold"].weight
    assert policy.weight_for("nope") == policy.default_weight
    assert policy.weight_for(None) == policy.default_weight
    assert policy.rate_for(None) is None
    assert policy.rate_for(7) is None  # uncapped tenant
