"""Differential + determinism suite for predictive autoscaling.

Predictive mode must be a *strict superset* of reactive behavior, never a
regression:

* On a steady (burst-free) trace the forecast never exceeds capacity, so the
  two modes must produce **identical scale-event sequences** and
  **bit-identical ``summary()`` metrics** — whether that sequence is empty
  (right-sized fleet) or non-empty (oversized fleet scaling in; scale-in is
  reactive-only in both modes).
* On a bursty trace, predictive's first scale-out must **strictly precede**
  reactive's: the forecaster reacts to the arrival *rate*, which jumps at
  burst onset, while reactive pressure needs a queue to form and sustain.
* Two full autoscaled runs with the same seed and mode must yield
  byte-identical ``all_requests()`` timelines — the forecaster introduces
  no hidden ``random``/clock dependence.

Traces here are hand-built with fixed inter-arrival spacing: determinism of
the *controller* is under test, so the workload must not add Poisson noise
of its own.
"""

import dataclasses

import pytest

from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.workload.request import Request


def _steady(rate_rps: float, duration: float, start: float = 0.0,
            start_id: int = 0, input_tokens: int = 200,
            output_tokens: int = 20) -> list:
    """Deterministic fixed-spacing arrivals at ``rate_rps`` for ``duration``."""
    spacing = 1.0 / rate_rps
    n = int(duration * rate_rps)
    return [
        Request(request_id=start_id + i, arrival_time=start + i * spacing,
                input_tokens=input_tokens, output_tokens=output_tokens)
        for i in range(n)
    ]


def _steady_then_burst() -> list:
    """60s of 5 RPS, then a 20s burst at 50 RPS — the burst starts mid-run,
    after the forecaster has a window and the fleet a measured capacity."""
    steady = _steady(5.0, 60.0)
    burst = _steady(50.0, 20.0, start=60.0, start_id=len(steady))
    return steady + burst


def _config(mode: str, **overrides) -> AutoscaleConfig:
    defaults = dict(
        min_replicas=2, max_replicas=6, tick_interval=1.0,
        provision_delay=2.0, cooldown=3.0, sustain_ticks=2,
        idle_sustain_ticks=8, queue_wait_threshold=0.5,
        mode=mode, forecast_window=10.0,
    )
    defaults.update(overrides)
    return AutoscaleConfig(**defaults)


def _build(big_registry, config: AutoscaleConfig, n_replicas: int,
           seed: int = 3) -> MultiReplicaSystem:
    return MultiReplicaSystem.build(
        "slora", n_replicas=n_replicas, registry=big_registry,
        predictor_accuracy=None, seed=seed,
        engine_config=EngineConfig(max_batch_size=8), autoscale=config)


def _timeline(cluster) -> list:
    """Byte-comparable per-request record of everything a run produced."""
    return [
        (r.request_id, r.arrival_time, r.first_token_time, r.finish_time,
         r.dispatch_queue_delay, r.shed)
        for r in sorted(cluster.all_requests(), key=lambda r: r.request_id)
    ]


def _summary_bytes(cluster, duration: float = 60.0) -> str:
    """Byte-comparable rendering of the full summary (every metric and the
    whole ``extra`` dict).  ``repr`` rather than dict equality so NaN
    metrics (e.g. hit rate on a cache-less preset) compare as equal bytes
    instead of NaN != NaN."""
    return repr(dataclasses.asdict(
        cluster.summary(warmup=5.0, duration=duration)))


def _run(big_registry, mode: str, trace_fn, n_replicas: int,
         config_overrides: dict = {}, seed: int = 3):
    cluster = _build(big_registry, _config(mode, **config_overrides),
                     n_replicas, seed=seed)
    cluster.run_trace(trace_fn())
    return cluster


# --------------------------------------------------------------------- #
# Steady-trace differential: predictive == reactive, bit for bit
# --------------------------------------------------------------------- #
def test_steady_trace_right_sized_fleet_is_bit_identical(big_registry):
    results = {
        mode: _run(big_registry, mode, lambda: _steady(5.0, 60.0), 2)
        for mode in ("reactive", "predictive")
    }
    reactive, predictive = results["reactive"], results["predictive"]
    # A right-sized fleet on a steady trace never scales, in either mode.
    assert reactive.autoscaler.events == []
    assert predictive.autoscaler.events == []
    assert predictive.autoscaler.predictive_scale_out_count == 0
    # Bit-identical request timelines and summary metrics.
    assert _timeline(reactive) == _timeline(predictive)
    assert _summary_bytes(reactive) == _summary_bytes(predictive)


def test_steady_trace_oversized_fleet_scales_in_identically(big_registry):
    # An oversized fleet scales in on idleness; scale-in is reactive-only
    # in both modes, so the (non-empty) event sequences must match exactly.
    results = {
        mode: _run(big_registry, mode, lambda: _steady(5.0, 60.0), 5,
                   config_overrides=dict(idle_sustain_ticks=4, cooldown=2.0))
        for mode in ("reactive", "predictive")
    }
    reactive, predictive = results["reactive"], results["predictive"]
    assert reactive.autoscaler.scale_in_count > 0
    assert reactive.autoscaler.events == predictive.autoscaler.events
    assert predictive.autoscaler.predictive_scale_out_count == 0
    assert _timeline(reactive) == _timeline(predictive)
    assert _summary_bytes(reactive) == _summary_bytes(predictive)


# --------------------------------------------------------------------- #
# Bursty trace: predictive strictly leads
# --------------------------------------------------------------------- #
def test_bursty_trace_predictive_scales_out_strictly_first(big_registry):
    results = {
        mode: _run(big_registry, mode, _steady_then_burst, 2)
        for mode in ("reactive", "predictive")
    }
    first_out = {}
    for mode, cluster in results.items():
        outs = [e for e in cluster.autoscaler.events
                if e["action"] == "scale_out"]
        assert outs, f"{mode} mode never scaled out under a 10x burst"
        first_out[mode] = outs[0]["time"]
    assert first_out["predictive"] < first_out["reactive"]
    # The lead comes from the forecast, not a different reactive path.
    predictive_outs = [e for e in results["predictive"].autoscaler.events
                       if e.get("reason") == "predictive"]
    assert predictive_outs and predictive_outs[0]["time"] == \
        first_out["predictive"]


# --------------------------------------------------------------------- #
# Seed determinism: no hidden random/clock leakage in the forecaster
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", AutoscaleConfig.MODES)
def test_same_seed_runs_are_byte_identical(big_registry, mode):
    runs = [
        _run(big_registry, mode, _steady_then_burst, 2, seed=11)
        for _ in range(2)
    ]
    assert _timeline(runs[0]) == _timeline(runs[1])
    assert runs[0].autoscaler.events == runs[1].autoscaler.events
    assert _summary_bytes(runs[0], duration=80.0) == \
        _summary_bytes(runs[1], duration=80.0)


# --------------------------------------------------------------------- #
# Fault-subsystem guard: fault-free configs stay byte-identical to PR 4
# --------------------------------------------------------------------- #
FAULT_KEYS = (
    "cluster_failures", "cluster_stalls", "cluster_migrations",
    "cluster_lost", "lost_rate", "availability", "fault_log",
    "migration_timeline", "retry_timelines", "max_retry_count",
    "self_heal_events",
)


@pytest.mark.parametrize("mode", AutoscaleConfig.MODES)
def test_fault_free_summary_carries_no_fault_keys(big_registry, mode):
    # The fault accounting is keyed on the injector's presence: a config
    # without one must produce the exact pre-fault-subsystem summary keys,
    # so fig26-29 outputs remain byte-identical to PR 4.
    cluster = _run(big_registry, mode, _steady_then_burst, 2)
    assert cluster.fault_injector is None
    extra = cluster.summary(warmup=5.0, duration=80.0).extra
    assert not any(key in extra for key in FAULT_KEYS)


def test_self_heal_knob_is_inert_without_failures(big_registry):
    # self_heal=True vs False differ only when a FAILED handle appears;
    # fault-free runs must be byte-identical between them, in both modes.
    for mode in AutoscaleConfig.MODES:
        runs = {}
        for heal in (True, False):
            cluster = _build(
                big_registry, _config(mode, self_heal=heal), 2, seed=3)
            cluster.run_trace(_steady_then_burst())
            runs[heal] = cluster
        assert runs[True].autoscaler.events == runs[False].autoscaler.events
        assert runs[True].autoscaler.self_heal_count == 0
        assert _timeline(runs[True]) == _timeline(runs[False])
        assert _summary_bytes(runs[True], duration=80.0) == \
            _summary_bytes(runs[False], duration=80.0)


def test_inert_injector_leaves_run_byte_identical(big_registry):
    # An attached injector whose only event is a unit-multiplier degrade
    # (rate x 1.0 — the identity) must not perturb the run: timelines,
    # scale events and every non-fault summary metric match a plain run
    # byte for byte.
    plain = _run(big_registry, "predictive", _steady_then_burst, 2)
    armed = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=3,
        engine_config=EngineConfig(max_batch_size=8),
        autoscale=_config("predictive"),
        fault_schedule="1:degrade:0:1.0")
    armed.run_trace(_steady_then_burst())
    assert _timeline(plain) == _timeline(armed)
    assert plain.autoscaler.events == armed.autoscaler.events
    armed_summary = dataclasses.asdict(
        armed.summary(warmup=5.0, duration=80.0))
    for key in FAULT_KEYS:
        armed_summary["extra"].pop(key, None)
    plain_summary = dataclasses.asdict(
        plain.summary(warmup=5.0, duration=80.0))
    assert repr(armed_summary) == repr(plain_summary)
