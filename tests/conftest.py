"""Shared fixtures: small adapter pools, tiny traces, wired systems."""

from __future__ import annotations

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import A40_48GB, GpuDevice
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def registry():
    """20 adapters, 4 per rank in {8, 16, 32, 64, 128}."""
    return AdapterRegistry.build(LLAMA_7B, 20)


@pytest.fixture
def big_registry():
    return AdapterRegistry.build(LLAMA_7B, 100)


@pytest.fixture
def gpu():
    return GpuDevice(A40_48GB)


@pytest.fixture
def link(sim):
    return PcieLink(sim, PcieSpec())


@pytest.fixture
def cost_model():
    return CostModel(LLAMA_7B, A40_48GB)


@pytest.fixture
def rng_streams():
    return RngStreams(seed=1234)


@pytest.fixture
def tiny_trace(big_registry, rng_streams):
    """A short, moderately-loaded trace for integration tests."""
    return synthesize_trace(
        SPLITWISE_PROFILE, rps=6.0, duration=30.0,
        rng=rng_streams.get("trace"), registry=big_registry,
    )


@pytest.fixture
def loaded_trace(big_registry, rng_streams):
    """A heavier trace that exercises queueing and eviction."""
    return synthesize_trace(
        SPLITWISE_PROFILE, rps=10.0, duration=60.0,
        rng=rng_streams.get("trace"), registry=big_registry,
    )
