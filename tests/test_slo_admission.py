"""Tests for cluster-level SLO admission: the SloPolicy itself, the shed
path, the deprioritized lane, and the queue-wait estimator that drives the
knee decision."""

import pytest

from repro.hardware.cluster import (
    FINISH_INTERVAL_EWMA_ALPHA,
    DataParallelCluster,
)
from repro.serving.admission import SloPolicy
from repro.workload.request import Request


class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _QueueEngine:
    """A saturable engine for exercising the global admission queue."""

    def __init__(self, capacity, sim=None):
        self.capacity = capacity
        self.sim = sim
        self.submitted = []
        self.in_flight = 0
        self._finish_callbacks = []
        self.adapter_manager = self

    def in_flight_count(self):
        return self.in_flight

    def is_resident(self, adapter_id):
        return False

    def is_saturated(self):
        return self.in_flight >= self.capacity

    def on_finish(self, callback):
        self._finish_callbacks.append(callback)

    def submit(self, request):
        self.submitted.append(request)
        self.in_flight += 1

    def finish_one(self):
        assert self.in_flight > 0
        self.in_flight -= 1
        for callback in self._finish_callbacks:
            callback(self.submitted[0])


def _req(rid=0, adapter_id=None):
    return Request(request_id=rid, arrival_time=0.0, input_tokens=10,
                   output_tokens=2, adapter_id=adapter_id)


# --------------------------------------------------------------------- #
# SloPolicy validation and deadline math
# --------------------------------------------------------------------- #
def test_slo_policy_rejects_bad_deadline():
    with pytest.raises(ValueError):
        SloPolicy(ttft_deadline=0.0)
    with pytest.raises(ValueError):
        SloPolicy(ttft_deadline=-1.0)


def test_slo_policy_rejects_unknown_mode():
    with pytest.raises(ValueError):
        SloPolicy(ttft_deadline=1.0, mode="drop_everything")


def test_slo_policy_slowdown_needs_estimator():
    with pytest.raises(ValueError):
        SloPolicy(ttft_deadline=1.0, slowdown_target=5.0)
    with pytest.raises(ValueError):
        SloPolicy(ttft_deadline=1.0, slowdown_target=-2.0,
                  isolated_ttft=lambda r: 0.1)


def test_slo_policy_deadline_is_flat_without_slowdown():
    policy = SloPolicy(ttft_deadline=2.0)
    assert policy.deadline_for(_req()) == 2.0


def test_slo_policy_slowdown_tightens_deadline():
    policy = SloPolicy(ttft_deadline=2.0, slowdown_target=5.0,
                       isolated_ttft=lambda r: 0.01 * r.input_tokens)
    # 10 input tokens -> isolated 0.1s -> 5x slowdown = 0.5s < 2.0s flat.
    assert policy.deadline_for(_req()) == pytest.approx(0.5)
    # A huge request's slowdown deadline is capped by the absolute one.
    big = Request(request_id=1, arrival_time=0.0, input_tokens=1000,
                  output_tokens=2)
    assert policy.deadline_for(big) == 2.0


def test_slo_policy_attained():
    policy = SloPolicy(ttft_deadline=1.0)
    request = _req()
    assert not policy.attained(request)  # not finished
    request.first_token_time = 0.5
    request.finish_time = 2.0
    from repro.workload.request import RequestState
    request.state = RequestState.FINISHED
    assert policy.attained(request)
    request.first_token_time = 1.5
    assert not policy.attained(request)


# --------------------------------------------------------------------- #
# The queue-wait estimator
# --------------------------------------------------------------------- #
def _saturated_cluster(slo_policy=None, capacity=1, n=2):
    sim = _FakeSim()
    engines = [_QueueEngine(capacity, sim=sim) for _ in range(n)]
    cluster = DataParallelCluster(engines, policy="least_loaded",
                                  slo_policy=slo_policy)
    for i in range(n * capacity):
        assert cluster.dispatch(_req(rid=i)) is not None
    return sim, engines, cluster


def test_estimator_is_optimistic_before_any_finish():
    _, _, cluster = _saturated_cluster()
    assert cluster.estimated_queue_wait() == 0.0


def test_estimator_tracks_inter_finish_ewma():
    sim, engines, cluster = _saturated_cluster()
    sim.now = 5.0
    engines[0].finish_one()      # first finish: no interval yet
    assert cluster.estimated_queue_wait() == 0.0
    sim.now = 7.0
    engines[1].finish_one()      # interval 2.0 seeds the EWMA
    assert cluster.estimated_queue_wait() == pytest.approx(2.0)
    sim.now = 8.0
    engines[0].submit(_req(rid=90))  # refill so another finish can happen
    engines[0].finish_one()      # interval 1.0 folds in at alpha
    expected = (1 - FINISH_INTERVAL_EWMA_ALPHA) * 2.0 + FINISH_INTERVAL_EWMA_ALPHA * 1.0
    assert cluster.estimated_queue_wait() == pytest.approx(expected)


def test_estimator_amortizes_same_timestamp_batches():
    """A batch of finishes sharing one timestamp is one drain event of that
    size — not a run of zero-length intervals that would collapse the EWMA
    at every batch boundary."""
    sim, engines, cluster = _saturated_cluster(capacity=2)
    sim.now = 2.0
    engines[0].finish_one()
    engines[0].finish_one()  # same instant: batch of 2, no zero samples
    assert cluster.estimated_queue_wait() == 0.0  # still seeding
    sim.now = 6.0
    engines[1].finish_one()
    # The batch of 2 took 4.0s until the next drain: 2.0s per slot.
    assert cluster.estimated_queue_wait() == pytest.approx(2.0)


def test_estimator_scales_with_queue_position():
    sim, engines, cluster = _saturated_cluster()
    sim.now = 1.0
    engines[0].finish_one()
    sim.now = 3.0
    engines[1].finish_one()  # EWMA = 2.0, both engines free now
    # Saturate again and stack two arrivals in the FIFO lane.
    cluster.dispatch(_req(rid=10))
    cluster.dispatch(_req(rid=11))
    cluster.dispatch(_req(rid=12))
    cluster.dispatch(_req(rid=13))
    assert cluster.queue_len() == 2
    # Next arrival would sit at position 3: three inter-finish intervals.
    assert cluster.estimated_queue_wait() == pytest.approx(3 * 2.0)


# --------------------------------------------------------------------- #
# Shed mode
# --------------------------------------------------------------------- #
def test_shed_past_the_knee():
    policy = SloPolicy(ttft_deadline=1.0, mode="shed")
    sim, engines, cluster = _saturated_cluster(policy)
    sim.now = 5.0
    engines[0].finish_one()
    sim.now = 7.0
    engines[1].finish_one()  # EWMA = 2.0 > deadline for any queued arrival
    cluster.dispatch(_req(rid=10))
    cluster.dispatch(_req(rid=11))  # engines full again
    doomed = _req(rid=12)
    assert cluster.dispatch(doomed) is None
    assert doomed.shed
    assert cluster.stats.shed == 1
    assert cluster.shed_requests() == [doomed]
    assert cluster.queue_len() == 0  # never entered a lane
    assert all(doomed not in e.submitted for e in engines)


def test_cold_start_admits_everything():
    policy = SloPolicy(ttft_deadline=0.001, mode="shed")
    _, _, cluster = _saturated_cluster(policy)
    # No finish has been observed: the estimator is optimistic, so even a
    # tight deadline queues rather than sheds.
    assert cluster.dispatch(_req(rid=10)) is None
    assert cluster.stats.shed == 0
    assert cluster.queue_len() == 1


def test_shed_requests_stay_out_of_dispatch_accounting():
    policy = SloPolicy(ttft_deadline=1.0, mode="shed")
    sim, engines, cluster = _saturated_cluster(policy)
    sim.now = 1.0
    engines[0].finish_one()
    sim.now = 3.0
    engines[1].finish_one()  # EWMA = 2.0 > the 1.0s deadline
    cluster.dispatch(_req(rid=10))
    cluster.dispatch(_req(rid=11))
    cluster.dispatch(_req(rid=12))  # shed
    arrivals = 5  # r0, r1 (saturating), r10, r11 (refill), r12 (shed)
    assert cluster.stats.dispatched + cluster.queue_len() + cluster.stats.shed \
        == arrivals


# --------------------------------------------------------------------- #
# Deprioritize mode (the low-priority lane)
# --------------------------------------------------------------------- #
def _lane_cluster():
    """EWMA = 2.0, deadline 2.0: position-1 arrivals queue FIFO, deeper
    arrivals (est 4.0+) go to the low lane."""
    policy = SloPolicy(ttft_deadline=2.0, mode="deprioritize")
    sim, engines, cluster = _saturated_cluster(policy)
    sim.now = 1.0
    engines[0].finish_one()
    sim.now = 3.0
    engines[1].finish_one()
    cluster.dispatch(_req(rid=10))
    cluster.dispatch(_req(rid=11))  # both engines saturated again
    return sim, engines, cluster


def test_deprioritize_goes_to_low_lane():
    sim, engines, cluster = _lane_cluster()
    first = _req(rid=12)   # est 2.0 <= 2.0: FIFO lane
    second = _req(rid=13)  # est 4.0 > 2.0: low lane
    assert cluster.dispatch(first) is None
    assert cluster.dispatch(second) is None
    assert not first.deprioritized
    assert second.deprioritized
    assert cluster.queue_len() == 2
    assert cluster.low_queue_len() == 1
    assert cluster.stats.deprioritized == 1
    assert cluster.stats.shed == 0
    assert cluster.pending_requests() == [first, second]  # FIFO lane first


def test_low_lane_drains_only_after_fifo_lane():
    sim, engines, cluster = _lane_cluster()
    first, second = _req(rid=12), _req(rid=13)
    cluster.dispatch(first)
    cluster.dispatch(second)
    sim.now = 5.0
    engines[0].finish_one()
    # The freed slot goes to the FIFO head, not the low lane.
    assert first in engines[0].submitted
    assert cluster.low_queue_len() == 1
    sim.now = 7.0
    engines[1].finish_one()
    assert second in engines[1].submitted
    assert cluster.queue_len() == 0
    # Queue-delay accounting covers both lanes.
    assert first.dispatch_queue_delay == pytest.approx(5.0 - 3.0)
    assert second.dispatch_queue_delay == pytest.approx(7.0 - 3.0)


def test_new_arrival_overtakes_the_low_lane_only():
    sim, engines, cluster = _lane_cluster()
    parked = _req(rid=12)
    cluster.dispatch(_req(rid=99))  # fills the FIFO lane to depth 1
    cluster.dispatch(parked)        # est 4.0 > 2.0: low lane
    sim.now = 5.0
    engines[0].finish_one()         # drains the FIFO head, lane now empty
    assert cluster.low_queue_len() == 1
    # Capacity appears out of band: a fresh arrival beats the parked one.
    engines[1].in_flight = 0
    fresh = _req(rid=14)
    idx = cluster.dispatch(fresh)
    assert idx is not None
    assert parked in cluster.pending_requests()


def test_deprioritized_requests_are_never_lost():
    sim, engines, cluster = _lane_cluster()
    lows = [_req(rid=20 + i) for i in range(3)]
    cluster.dispatch(_req(rid=12))
    for request in lows:
        cluster.dispatch(request)
    for t in (5.0, 7.0, 9.0, 11.0):
        sim.now = t
        engine = max(engines, key=lambda e: e.in_flight)
        engine.finish_one()
    submitted = [r for e in engines for r in e.submitted]
    assert all(request in submitted for request in lows)


# --------------------------------------------------------------------- #
# Wiring constraints
# --------------------------------------------------------------------- #
def test_slo_policy_requires_backpressure():
    with pytest.raises(ValueError):
        DataParallelCluster([_QueueEngine(1)], backpressure=False,
                            slo_policy=SloPolicy(ttft_deadline=1.0))


def test_estimator_folds_batched_intervals_hand_computed_ewma():
    """Two successive drain events, both batched, with the EWMA folded by
    hand: a batch of 3 amortizes its gap to 1.0 s/slot (the seed), then a
    batch of 2 amortizes the next gap to 0.5 s/slot and folds in at alpha."""
    sim, engines, cluster = _saturated_cluster(capacity=3)
    sim.now = 1.0
    for _ in range(3):
        engines[0].finish_one()      # one drain event of size 3
    assert cluster.estimated_queue_wait() == 0.0   # still seeding
    sim.now = 4.0
    engines[1].finish_one()          # (4.0 - 1.0) / 3 = 1.0 seeds the EWMA
    assert cluster.estimated_queue_wait() == pytest.approx(1.0)
    engines[1].finish_one()          # same instant: grows the current batch
    sim.now = 5.0
    engines[1].finish_one()          # (5.0 - 4.0) / 2 = 0.5 folds in
    expected = (1 - FINISH_INTERVAL_EWMA_ALPHA) * 1.0 \
        + FINISH_INTERVAL_EWMA_ALPHA * 0.5
    assert cluster.estimated_queue_wait() == pytest.approx(expected)


def test_estimator_amortized_wait_scales_with_queue_position():
    """The per-slot amortized interval multiplies by FIFO queue position:
    a batch of 2 that took 6.0 s to the next drain is 3.0 s/slot, so an
    arrival behind 2 queued requests waits about 3 intervals."""
    sim, engines, cluster = _saturated_cluster(capacity=2)
    sim.now = 2.0
    engines[0].finish_one()
    engines[0].finish_one()          # batch of 2 at t=2
    sim.now = 8.0
    engines[1].finish_one()          # (8.0 - 2.0) / 2 = 3.0 seeds the EWMA
    # Refill the 3 free slots, then stack 2 arrivals in the FIFO lane.
    for rid in range(20, 25):
        cluster.dispatch(_req(rid=rid))
    assert cluster.queue_len() == 2
    assert cluster.estimated_queue_wait() == pytest.approx(3 * 3.0)
