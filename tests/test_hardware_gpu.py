"""Tests for the GPU memory accountant."""

import pytest

from repro.hardware.gpu import (
    A40_48GB,
    A100_24GB,
    A100_80GB,
    GB,
    GPU_ZOO,
    GpuDevice,
    MemoryExhausted,
)


def test_capacity_defaults_to_spec():
    assert GpuDevice(A40_48GB).capacity == 48 * GB


def test_capacity_override():
    dev = GpuDevice(A100_80GB, memory_bytes=24 * GB)
    assert dev.capacity == 24 * GB


def test_reserve_and_release_roundtrip():
    dev = GpuDevice(A40_48GB)
    dev.reserve("kv", 10 * GB)
    assert dev.used("kv") == 10 * GB
    assert dev.free_bytes == 38 * GB
    dev.release("kv", 10 * GB)
    assert dev.used("kv") == 0
    assert dev.free_bytes == 48 * GB


def test_reserve_over_capacity_raises():
    dev = GpuDevice(A100_24GB)
    with pytest.raises(MemoryExhausted):
        dev.reserve("kv", 25 * GB)
    # A failed reserve must not change the accounting.
    assert dev.used_bytes == 0


def test_release_more_than_held_raises():
    dev = GpuDevice(A40_48GB)
    dev.reserve("kv", GB)
    with pytest.raises(ValueError):
        dev.release("kv", 2 * GB)


def test_negative_amounts_rejected():
    dev = GpuDevice(A40_48GB)
    with pytest.raises(ValueError):
        dev.reserve("kv", -1)
    with pytest.raises(ValueError):
        dev.release("kv", -1)


def test_move_keeps_total_constant():
    dev = GpuDevice(A40_48GB)
    dev.reserve("adapter", 3 * GB)
    total_before = dev.used_bytes
    dev.move("adapter", "adapter_cache", 3 * GB)
    assert dev.used_bytes == total_before
    assert dev.used("adapter") == 0
    assert dev.used("adapter_cache") == 3 * GB


def test_move_more_than_held_raises():
    dev = GpuDevice(A40_48GB)
    dev.reserve("adapter", GB)
    with pytest.raises(ValueError):
        dev.move("adapter", "adapter_cache", 2 * GB)


def test_can_fit():
    dev = GpuDevice(A100_24GB)
    assert dev.can_fit(24 * GB)
    dev.reserve("weights", 14 * GB)
    assert dev.can_fit(10 * GB)
    assert not dev.can_fit(10 * GB + 1)


def test_exact_fill_to_capacity():
    dev = GpuDevice(A100_24GB)
    dev.reserve("kv", 24 * GB)
    assert dev.free_bytes == 0
    with pytest.raises(MemoryExhausted):
        dev.reserve("kv", 1)


def test_telemetry_sampling_respects_interval():
    dev = GpuDevice(A40_48GB)
    dev.enable_telemetry(interval=1.0)
    dev.reserve("kv", GB)
    dev.maybe_sample(0.0)
    dev.maybe_sample(0.5)   # inside the interval: skipped
    dev.maybe_sample(1.5)
    assert len(dev.samples) == 2
    assert dev.samples[0].usage["kv"] == GB
    assert dev.samples[0].total == GB


def test_telemetry_disabled_by_default():
    dev = GpuDevice(A40_48GB)
    dev.maybe_sample(0.0)
    assert dev.samples == []


def test_gpu_zoo_presets():
    assert set(GPU_ZOO) == {"a40-48gb", "a100-80gb", "a100-48gb", "a100-24gb"}
    assert GPU_ZOO["a100-80gb"].memory_bytes == 80 * GB
