"""Tests for the adapter spec and host registry."""

import pytest

from repro.adapters.adapter import LoraAdapter
from repro.adapters.registry import DEFAULT_RANKS, AdapterRegistry
from repro.llm.model import LLAMA_7B, MB


def test_build_equal_adapters_per_rank():
    """§5.1: N_a adapters, equal count for each of the five ranks."""
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    for rank in DEFAULT_RANKS:
        assert len(registry.ids_by_rank(rank)) == 20


def test_build_sizes_follow_model_geometry():
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    for adapter in registry:
        assert adapter.size_bytes == LLAMA_7B.adapter_bytes(adapter.rank)
    assert registry.get(2).rank == 32
    assert registry.get(2).size_bytes == 64 * MB


def test_ranks_property_sorted_distinct():
    registry = AdapterRegistry.build(LLAMA_7B, 10)
    assert registry.ranks == [8, 16, 32, 64, 128]


def test_max_size_and_rank():
    registry = AdapterRegistry.build(LLAMA_7B, 10)
    assert registry.max_rank == 128
    assert registry.max_size_bytes == LLAMA_7B.adapter_bytes(128)


def test_get_unknown_id_raises():
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    with pytest.raises(KeyError):
        registry.get(5)
    with pytest.raises(KeyError):
        registry.get(-1)


def test_len_and_iter():
    registry = AdapterRegistry.build(LLAMA_7B, 7)
    assert len(registry) == 7
    assert [a.adapter_id for a in registry] == list(range(7))


def test_custom_rank_set():
    registry = AdapterRegistry.build(LLAMA_7B, 6, ranks=(4, 8))
    assert registry.ranks == [4, 8]
    assert len(registry.ids_by_rank(4)) == 3


def test_build_rejects_nonpositive_count():
    with pytest.raises(ValueError):
        AdapterRegistry.build(LLAMA_7B, 0)


def test_registry_requires_dense_ids():
    adapters = [LoraAdapter(adapter_id=1, rank=8, size_bytes=100)]
    with pytest.raises(ValueError):
        AdapterRegistry(adapters)


def test_registry_rejects_empty():
    with pytest.raises(ValueError):
        AdapterRegistry([])


def test_adapter_validation():
    with pytest.raises(ValueError):
        LoraAdapter(adapter_id=0, rank=0, size_bytes=100)
    with pytest.raises(ValueError):
        LoraAdapter(adapter_id=0, rank=8, size_bytes=0)
