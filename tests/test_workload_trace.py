"""Tests for trace synthesis, adapter assignment and memory scaling."""

import numpy as np
import pytest

from repro.adapters.registry import AdapterRegistry
from repro.llm.model import LLAMA_7B
from repro.sim.rng import RngStreams
from repro.workload.request import RequestState
from repro.workload.trace import (
    LMSYS_PROFILE,
    SPLITWISE_PROFILE,
    TRACE_PROFILES,
    WILDCHAT_PROFILE,
    assign_adapters,
    scale_trace_to_memory,
    synthesize_trace,
)


@pytest.fixture
def rng():
    return RngStreams(7).get("trace")


@pytest.fixture
def registry():
    return AdapterRegistry.build(LLAMA_7B, 100)


def test_trace_matches_rate(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=10.0, duration=300.0,
                             rng=rng, registry=registry)
    assert len(trace) == pytest.approx(3000, rel=0.1)
    assert all(0 <= r.arrival_time < 300.0 for r in trace)


def test_trace_lengths_follow_profile(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=30.0, duration=300.0,
                             rng=rng, registry=registry)
    assert trace.mean_input_tokens == pytest.approx(
        SPLITWISE_PROFILE.mean_input_tokens, rel=0.15)
    assert trace.mean_output_tokens == pytest.approx(
        SPLITWISE_PROFILE.mean_output_tokens, rel=0.15)


def test_trace_without_registry_is_base_only(rng):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=30.0, rng=rng)
    assert all(r.adapter_id is None for r in trace)


def test_every_request_gets_adapter(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=60.0,
                             rng=rng, registry=registry)
    assert all(r.adapter_id is not None for r in trace)
    assert all(0 <= r.adapter_id < 100 for r in trace)


def test_uniform_rank_popularity(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=60.0, duration=300.0,
                             rng=rng, registry=registry,
                             rank_popularity="uniform", adapter_popularity="uniform")
    ranks = [registry.get(r.adapter_id).rank for r in trace]
    counts = {rank: ranks.count(rank) for rank in (8, 16, 32, 64, 128)}
    share = np.array(list(counts.values())) / len(ranks)
    assert np.allclose(share, 0.2, atol=0.03)


def test_powerlaw_adapter_popularity_is_skewed(rng, registry):
    """§5.1: power-law adapter popularity within each rank."""
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=60.0, duration=300.0,
                             rng=rng, registry=registry,
                             adapter_popularity="powerlaw")
    rank8_ids = registry.ids_by_rank(8)
    uses = [r.adapter_id for r in trace if r.adapter_id in set(rank8_ids)]
    counts = sorted((uses.count(a) for a in rank8_ids), reverse=True)
    assert counts[0] > 3 * max(1, counts[-1])


def test_powerlaw_rank_popularity(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=60.0, duration=300.0,
                             rng=rng, registry=registry,
                             rank_popularity="powerlaw")
    ranks = [registry.get(r.adapter_id).rank for r in trace]
    assert ranks.count(8) > ranks.count(128)


def test_unknown_popularity_rejected(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=10.0, rng=rng)
    with pytest.raises(ValueError):
        assign_adapters(trace.requests, registry, rng, rank_popularity="bogus")
    with pytest.raises(ValueError):
        assign_adapters(trace.requests, registry, rng, adapter_popularity="bogus")


def test_profiles_registered():
    assert set(TRACE_PROFILES) == {"splitwise", "wildchat", "lmsys"}
    assert WILDCHAT_PROFILE.mean_input_tokens < SPLITWISE_PROFILE.mean_input_tokens
    assert LMSYS_PROFILE.mean_input_tokens < SPLITWISE_PROFILE.mean_input_tokens


def test_memory_scaling_reduces_lengths():
    """§3.2: one constant factor scales inputs and outputs to fit memory."""
    from repro.workload.request import Request
    from repro.workload.trace import Trace

    requests = [
        Request(request_id=i, arrival_time=0.1 * i,
                input_tokens=8000, output_tokens=4000)
        for i in range(50)
    ]
    trace = Trace(requests=requests, profile=SPLITWISE_PROFILE, rps=10.0, duration=5.0)
    kv = LLAMA_7B.kv_bytes_per_token
    budget = 32 * 1024 ** 3
    scaled = scale_trace_to_memory(trace, kv, budget)
    assert len(scaled) == len(trace)
    assert scaled.mean_input_tokens < trace.mean_input_tokens
    ratio_in = scaled.mean_input_tokens / trace.mean_input_tokens
    ratio_out = scaled.mean_output_tokens / trace.mean_output_tokens
    assert ratio_in == pytest.approx(ratio_out, rel=0.02)
    # The scaled trace actually fits the budget.
    from repro.workload.trace import _peak_concurrent_kv_tokens
    assert _peak_concurrent_kv_tokens(scaled, 10.0) <= budget / kv * 1.01


def test_memory_scaling_noop_when_fits(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=2.0, duration=30.0,
                             rng=rng, registry=registry)
    scaled = scale_trace_to_memory(trace, LLAMA_7B.kv_bytes_per_token, 10**15)
    assert [r.input_tokens for r in scaled] == [r.input_tokens for r in trace]


def test_fresh_returns_pristine_copies(rng, registry):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=5.0, duration=20.0,
                             rng=rng, registry=registry)
    trace.requests[0].state = RequestState.FINISHED
    trace.requests[0].tokens_generated = 99
    copies = trace.fresh()
    assert copies[0].state is RequestState.CREATED
    assert copies[0].tokens_generated == 0
    assert copies[0].input_tokens == trace.requests[0].input_tokens
    assert copies[0] is not trace.requests[0]
