"""Tests for the PCIe transfer channel: FIFO serialization and telemetry."""

import pytest

from repro.hardware.pcie import GB, PcieLink, PcieSpec
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def link(sim):
    return PcieLink(sim, PcieSpec(bandwidth_bytes=10 * GB, setup_latency=1e-3))


def test_transfer_time_formula(link):
    assert link.transfer_time(10 * GB) == pytest.approx(1.0 + 1e-3)


def test_single_transfer_completes(sim, link):
    done = []
    link.submit(10 * GB, callback=lambda x: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.001)]
    assert link.total_transfers == 1
    assert link.total_bytes_moved == 10 * GB


def test_fifo_serialization_queues_transfers(sim, link):
    """The second transfer waits for the first: queueing delay is visible."""
    xfers = [link.submit(10 * GB), link.submit(10 * GB)]
    assert link.queue_depth == 1
    sim.run()
    assert xfers[0].queueing_delay == 0.0
    assert xfers[1].queueing_delay == pytest.approx(1.001)
    assert xfers[1].latency == pytest.approx(2.002)


def test_contention_grows_with_submissions(sim, link):
    """Ten queued transfers: the last one waits for the nine before it."""
    xfers = [link.submit(1 * GB) for _ in range(10)]
    sim.run()
    assert xfers[-1].queueing_delay == pytest.approx(9 * 0.101, rel=1e-6)


def test_callbacks_fire_in_submission_order(sim, link):
    order = []
    link.submit(GB, callback=lambda x: order.append("a"))
    link.submit(GB, callback=lambda x: order.append("b"))
    sim.run()
    assert order == ["a", "b"]


def test_cancel_queued_transfer(sim, link):
    link.submit(GB)
    queued = link.submit(GB)
    assert link.cancel(queued) is True
    sim.run()
    assert link.total_transfers == 1


def test_cannot_cancel_inflight_transfer(sim, link):
    first = link.submit(GB)
    assert link.cancel(first) is False
    sim.run()


def test_utilization_accounting(sim, link):
    link.submit(10 * GB)
    sim.run()
    sim.schedule_at(2.002, lambda: None)  # idle tail
    sim.run()
    assert link.utilization() == pytest.approx(1.001 / 2.002, rel=1e-6)


def test_sharded_transfer_slower_than_flat(sim, link):
    flat = link.transfer_time(GB)
    done = []
    link.submit_sharded(GB, shards=4, per_shard_overhead=5e-3,
                        callback=lambda x: done.append(sim.now))
    sim.run()
    assert done[0] > flat
    # Four shards pay four sync+setup overheads.
    assert done[0] == pytest.approx(flat + 4 * (5e-3 + 1e-3), rel=0.05)


def test_sharded_requires_positive_shards(link):
    with pytest.raises(ValueError):
        link.submit_sharded(GB, shards=0, per_shard_overhead=1e-3)


def test_negative_size_rejected(link):
    with pytest.raises(ValueError):
        link.submit(-1)


def test_window_stats_requires_log(sim, link):
    with pytest.raises(RuntimeError):
        link.window_stats(1.0, 10.0)


def test_window_stats_bins_bytes(sim):
    link = PcieLink(sim, PcieSpec(bandwidth_bytes=10 * GB, setup_latency=0.0))
    link.keep_log = True
    link.submit(5 * GB)        # finishes at 0.5s -> bin 0
    sim.schedule_at(2.0, lambda: link.submit(10 * GB))  # finishes at 3.0 -> bin 3
    sim.run()
    bins = link.window_stats(window=1.0, horizon=4.0)
    assert bins[0].bytes_moved == 5 * GB
    assert bins[0].bandwidth == pytest.approx(5 * GB)
    assert bins[3].bytes_moved == 10 * GB
    assert bins[1].bytes_moved == 0


# --------------------------------------------------------------------- #
# Fair (processor-sharing) mode
# --------------------------------------------------------------------- #
@pytest.fixture
def fair_link(sim):
    return PcieLink(sim, PcieSpec(bandwidth_bytes=10 * GB, setup_latency=0.0,
                                  sharing="fair"))


def test_fair_equal_transfers_finish_together(sim, fair_link):
    done = []
    fair_link.submit(10 * GB, callback=lambda x: done.append(sim.now))
    fair_link.submit(10 * GB, callback=lambda x: done.append(sim.now))
    sim.run()
    # Two equal transfers at half bandwidth each: both done at 2.0 s.
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_fair_small_transfer_not_blocked_by_large(sim, fair_link):
    finish = {}
    fair_link.submit(100 * GB, callback=lambda x: finish.setdefault("big", sim.now))
    fair_link.submit(1 * GB, callback=lambda x: finish.setdefault("small", sim.now))
    sim.run()
    # FIFO would make the small one wait 10 s; fair sharing finishes it at
    # ~0.2 s (1 GB at half bandwidth).
    assert finish["small"] == pytest.approx(0.2, rel=1e-3)
    # The big one still moves all its bytes: 0.2 s shared + remaining alone.
    assert finish["big"] == pytest.approx(0.2 + (100 - 1) / 10.0, rel=1e-3)


def test_fair_staggered_arrivals(sim, fair_link):
    finish = {}
    fair_link.submit(10 * GB, callback=lambda x: finish.setdefault("a", sim.now))
    sim.schedule_at(0.5, lambda: fair_link.submit(
        5 * GB, callback=lambda x: finish.setdefault("b", sim.now)))
    sim.run()
    # a runs alone 0.5 s (5 GB done), then shares; both have 5 GB left at
    # half rate -> both finish at 0.5 + 1.0 = 1.5 s.
    assert finish["a"] == pytest.approx(1.5, rel=1e-3)
    assert finish["b"] == pytest.approx(1.5, rel=1e-3)


def test_fair_conserves_bytes(sim, fair_link):
    sizes = [3 * GB, 7 * GB, GB, 2 * GB]
    for size in sizes:
        fair_link.submit(size)
    sim.run()
    assert fair_link.total_bytes_moved == sum(sizes)
    assert fair_link.total_transfers == 4


def test_fair_busy_time_is_makespan(sim, fair_link):
    fair_link.submit(5 * GB)
    fair_link.submit(5 * GB)
    sim.run()
    assert fair_link.busy_time == pytest.approx(1.0, rel=1e-3)


def test_fair_cancel_unsupported(sim, fair_link):
    xfer = fair_link.submit(GB)
    assert fair_link.cancel(xfer) is False
    sim.run()


def test_unknown_sharing_mode_rejected():
    with pytest.raises(ValueError):
        PcieSpec(sharing="weighted")


def test_fair_mode_serves_engine_end_to_end(sim):
    """A full system runs unchanged on a fair-shared link."""
    from repro.adapters.registry import AdapterRegistry
    from repro.llm.model import LLAMA_7B
    from repro.systems import build_system
    from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace
    from repro.sim.rng import RngStreams

    registry = AdapterRegistry.build(LLAMA_7B, 20)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=4.0, duration=10.0,
                             rng=RngStreams(9).get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry,
                          pcie=PcieSpec(sharing="fair"), seed=9)
    system.run_trace(trace.fresh())
    assert all(r.finished for r in system.engine.all_requests)
