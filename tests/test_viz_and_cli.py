"""Tests for the ASCII visualization helpers and the CLI entry point."""

import json

import pytest

from repro.cli import QUICK_OVERRIDES, main
from repro.experiments.common import ExperimentResult
from repro.viz import bar_chart, line_chart, result_chart


def test_line_chart_contains_series_and_axes():
    chart = line_chart(
        [1.0, 2.0, 3.0],
        {"alpha": [1.0, 2.0, 4.0], "beta": [4.0, 2.0, 1.0]},
        title="demo", x_label="rps",
    )
    assert "demo" in chart
    assert "*=alpha" in chart and "o=beta" in chart
    assert "rps" in chart
    assert "*" in chart and "o" in chart


def test_line_chart_skips_none_values():
    chart = line_chart([1.0, 2.0], {"a": [None, 3.0]})
    assert "*" in chart


def test_line_chart_validates():
    with pytest.raises(ValueError):
        line_chart([], {})
    with pytest.raises(ValueError):
        line_chart([1.0], {"a": [None]})


def test_line_chart_constant_series():
    chart = line_chart([1.0, 2.0], {"a": [5.0, 5.0]})
    assert "*" in chart


def test_bar_chart_scales_to_peak():
    chart = bar_chart(["x", "yy"], [1.0, 2.0], width=10, unit="s")
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2s" in lines[1]


def test_bar_chart_validates():
    with pytest.raises(ValueError):
        bar_chart([], [])
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_result_chart_line_for_numeric_rows():
    result = ExperimentResult(
        "demo", "numeric sweep",
        rows=[{"rps": float(i), "a_p99": float(i * i), "b_p99": 1.0}
              for i in range(1, 6)],
    )
    chart = result_chart(result)
    assert chart is not None
    assert "numeric sweep" in chart


def test_result_chart_bars_for_categorical_rows():
    result = ExperimentResult(
        "demo", "grouped",
        rows=[{"system": "a", "p99": 1.0}, {"system": "b", "p99": 2.0}],
    )
    chart = result_chart(result)
    assert chart is not None and "#" in chart


def test_result_chart_none_for_empty():
    assert result_chart(ExperimentResult("demo", "x", rows=[])) is None


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig02" in out and "fig25" in out and "abl_gdsf" in out


def test_cli_runs_fig02(capsys):
    assert main(["fig02"]) == 0
    out = capsys.readouterr().out
    assert "TTFT breakdown" in out
    assert "143.7" in out or "144" in out


def test_cli_plot_flag(capsys):
    assert main(["fig03", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "legend:" in out


def test_cli_param_override(capsys):
    assert main(["fig02", "--param", "ranks=(8, 16)"]) == 0
    out = capsys.readouterr().out
    assert "128" not in out.split("note:")[0].split("rank")[2]


def test_cli_json_export(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["fig02", "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload[0]["experiment"] == "fig02"
    assert len(payload[0]["rows"]) == 5


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_quick_overrides_reference_known_experiments():
    from repro.experiments.registry import EXPERIMENTS

    assert set(QUICK_OVERRIDES) <= set(EXPERIMENTS)


def test_cli_cluster_subcommand(capsys):
    assert main(["cluster", "--replicas", "2", "--policy", "p2c",
                 "--rps", "4", "--duration", "8", "--warmup", "0"]) == 0
    out = capsys.readouterr().out
    assert "per-replica counts" in out
    assert "aggregate hit rate" in out
    assert "dispatch-queue delay" in out


def test_cli_cluster_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["cluster", "--policy", "definitely_not_a_policy"])


def test_cli_cluster_hetero_and_slo(capsys):
    assert main(["cluster", "--replica-specs", "a40-48gb,a100-80gb",
                 "--rps", "4", "--duration", "8", "--warmup", "0",
                 "--slo-ttft", "0"]) == 0
    out = capsys.readouterr().out
    assert "capability weights" in out
    assert "goodput" in out
    assert "SLO admission (shed)" in out


def test_cli_cluster_rejects_unknown_gpu():
    with pytest.raises(SystemExit):
        main(["cluster", "--replica-specs", "a40-48gb,tpu-v9"])


def test_cli_cluster_derived_slo_tracks_fleet_hardware(capsys):
    def deadline_for(fleet):
        assert main(["cluster", "--replica-specs", fleet, "--rps", "4",
                     "--duration", "8", "--warmup", "0", "--slo-ttft", "0"]) == 0
        out = capsys.readouterr().out
        return float(out.split("deadline=")[1].split("s ")[0])

    # The derived 5x-mean-isolated deadline reflects the fleet's GPUs:
    # an all-A100 fleet gets a tighter deadline than an all-A40 fleet.
    assert deadline_for("a100-80gb,a100-80gb") < deadline_for("a40-48gb,a40-48gb")


def test_cli_cluster_rejects_replica_count_conflict():
    with pytest.raises(SystemExit):
        main(["cluster", "--replicas", "3",
              "--replica-specs", "a40-48gb,a100-80gb"])


def test_cli_cluster_rejects_slo_without_backpressure():
    with pytest.raises(SystemExit):
        main(["cluster", "--slo-ttft", "1.0", "--no-backpressure"])


def test_cli_cluster_autoscale(capsys):
    assert main(["cluster", "--autoscale", "--min-replicas", "1",
                 "--max-replicas", "3", "--provision-delay", "1",
                 "--rps", "30", "--duration", "20", "--warmup", "0",
                 "--slo-ttft", "0"]) == 0
    out = capsys.readouterr().out
    assert "autoscale" in out
    assert "replica-seconds" in out


def test_cli_cluster_autoscale_rejects_no_backpressure():
    with pytest.raises(SystemExit):
        main(["cluster", "--autoscale", "--no-backpressure"])


def test_cli_cluster_autoscale_rejects_bad_bounds():
    with pytest.raises(SystemExit):
        main(["cluster", "--autoscale", "--min-replicas", "4",
              "--max-replicas", "2"])
    with pytest.raises(SystemExit):
        main(["cluster", "--autoscale", "--replicas", "9",
              "--max-replicas", "4"])
