"""Fault subsystem: schedules, injection, migration, self-healing.

Covers the new fault model end to end against the *real* engine stack
(crash evacuation through ``ServingEngine.fail``, degrade multipliers
through the cost model, stalls through the dispatch path) plus the
deterministic plumbing: schedule parsing, seeded random failures, and the
conservation law ``completed + shed + lost + still-pending == submitted``
that crash handling must never break.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem, ReplicaState
from repro.sim.rng import RngStreams
from repro.workload.request import Request


# --------------------------------------------------------------------- #
# FaultSchedule parsing and validation
# --------------------------------------------------------------------- #
def test_schedule_parse_roundtrip():
    schedule = FaultSchedule.parse(
        "110:crash:1, 60:degrade:0:0.5, 90:recover:0, 120:stall:2:5")
    kinds = [(e.time, e.kind, e.replica) for e in schedule]
    # Entries come out sorted by time.
    assert kinds == [(60.0, "degrade", 0), (90.0, "recover", 0),
                     (110.0, "crash", 1), (120.0, "stall", 2)]
    assert schedule.events[0].magnitude == 0.5
    assert schedule.events[3].duration == 5.0


def test_schedule_parse_accepts_transient_stall_alias():
    schedule = FaultSchedule.parse("10:transient_stall:0:2.5")
    assert schedule.events[0].kind == "stall"
    assert schedule.events[0].duration == 2.5


@pytest.mark.parametrize("bad", [
    "", "nonsense", "10:crash", "x:crash:0", "10:crash:zero",
    "10:explode:0", "10:crash:0:1.5", "10:stall:0:x",
])
def test_schedule_parse_rejects_bad_entries(bad):
    with pytest.raises(ValueError):
        FaultSchedule.parse(bad)


@pytest.mark.parametrize("kwargs", [
    dict(time=-1.0, kind="crash", replica=0),
    dict(time=1.0, kind="meteor", replica=0),
    dict(time=1.0, kind="crash", replica=-1),
    dict(time=1.0, kind="degrade", replica=0, magnitude=0.0),
    dict(time=1.0, kind="degrade", replica=0, magnitude=1.5),
    dict(time=1.0, kind="stall", replica=0, duration=0.0),
])
def test_fault_event_validation(kwargs):
    with pytest.raises(ValueError):
        FaultEvent(**kwargs)


def test_injector_validation(big_registry):
    cluster = _build(big_registry)
    with pytest.raises(ValueError, match="mttf"):
        FaultInjector(cluster.cluster, mttf=-1.0,
                      rng=RngStreams(0).get("faults"))
    with pytest.raises(ValueError, match="mttr needs mttf"):
        FaultInjector(cluster.cluster, mttr=5.0)
    with pytest.raises(ValueError, match="need an rng"):
        FaultInjector(cluster.cluster, mttf=10.0)


# --------------------------------------------------------------------- #
# Crash + migration through the real engine stack
# --------------------------------------------------------------------- #
def _build(big_registry, *, n_replicas=2, autoscale=None, **kwargs):
    return MultiReplicaSystem.build(
        "slora", n_replicas=n_replicas, registry=big_registry,
        predictor_accuracy=None, seed=3, autoscale=autoscale,
        engine_config=EngineConfig(max_batch_size=4), **kwargs)


def _steady(rate_rps, duration, start_id=0):
    spacing = 1.0 / rate_rps
    return [
        Request(request_id=start_id + i, arrival_time=i * spacing,
                input_tokens=200, output_tokens=20)
        for i in range(int(duration * rate_rps))
    ]


def _conservation(cluster, submitted):
    requests = cluster.all_requests()
    ids = sorted(r.request_id for r in requests)
    assert ids == sorted(r.request_id for r in submitted), \
        "request lost from or duplicated in accounting"
    completed = sum(1 for r in requests if r.finished)
    shed = sum(1 for r in requests if r.shed)
    lost = sum(1 for r in requests if r.lost)
    pending = sum(1 for r in requests
                  if not (r.finished or r.shed or r.lost))
    assert completed + shed + lost + pending == len(submitted)
    return completed, shed, lost, pending


def test_crash_migrates_work_and_conserves_requests(big_registry):
    trace = _steady(8.0, 20.0)
    cluster = _build(big_registry, fault_schedule="5:crash:1")
    cluster.run_trace(trace)
    handle = cluster.replica_handles[1]
    assert handle.state is ReplicaState.FAILED
    assert handle.failed_at == 5.0
    assert cluster.cluster.stats.failures == 1
    assert cluster.cluster.stats.migrations > 0
    completed, shed, lost, pending = _conservation(cluster, trace)
    # Client-retry migration strands nothing and the run drains fully.
    assert lost == 0 and pending == 0
    assert completed == len(trace) - shed
    # Migrated requests carry their retry timelines.
    migrated = [r for r in cluster.all_requests() if r.retry_count > 0]
    assert migrated
    assert all(r.migrated_at == [5.0] for r in migrated)
    # The dead engine never finishes anything after the crash.
    dead = cluster.engines[1]
    assert dead.failed
    assert all(r.finish_time is None or r.finish_time <= 5.0
               for r in dead.all_requests)
    # Availability/migration accounting surfaces in the summary.
    extra = cluster.summary(duration=20.0).extra
    assert extra["cluster_failures"] == 1
    assert extra["cluster_lost"] == 0
    assert extra["availability"] == 1.0
    assert extra["cluster_migrations"] == len(cluster.cluster.migration_log)
    assert set(extra["retry_timelines"]) == \
        {r.request_id for r in migrated}


def test_crash_without_migration_strands_work(big_registry):
    trace = _steady(8.0, 20.0)
    cluster = _build(big_registry, fault_schedule="5:crash:1",
                     fault_migrate=False)
    cluster.run_trace(trace)
    completed, shed, lost, pending = _conservation(cluster, trace)
    assert lost > 0 and pending == 0
    assert cluster.cluster.stats.migrations == 0
    assert cluster.cluster.stats.lost == lost
    # Lost requests keep their identity and stay visible for accounting.
    assert all(r.lost and not r.finished
               for r in cluster.cluster.lost_requests())
    extra = cluster.summary(duration=20.0).extra
    assert extra["availability"] < 1.0
    assert extra["cluster_lost"] == lost


def test_crash_without_retry_started_loses_only_started(big_registry):
    trace = _steady(8.0, 20.0)
    full = _build(big_registry, fault_schedule="5:crash:1")
    full.run_trace(_steady(8.0, 20.0))
    partial = _build(big_registry, fault_schedule="5:crash:1",
                     fault_retry_started=False)
    partial.run_trace(trace)
    _, _, lost_full, _ = _conservation(full, trace)
    completed, shed, lost, pending = _conservation(partial, trace)
    # Started-at-crash requests are stranded; queued/unstarted still move.
    assert lost_full == 0
    assert lost > 0
    assert lost + partial.cluster.stats.migrations >= 1
    assert all(r.first_token_time is not None or r.state.value != "created"
               for r in partial.cluster.lost_requests())


def test_same_seed_fault_runs_are_deterministic(big_registry):
    def timeline(cluster):
        return [(r.request_id, r.finish_time, r.retry_count, r.lost,
                 r.shed) for r in sorted(cluster.all_requests(),
                                         key=lambda r: r.request_id)]

    runs = []
    for _ in range(2):
        cluster = _build(big_registry, mttf=6.0, n_replicas=3)
        cluster.run_trace(_steady(8.0, 25.0))
        runs.append((timeline(cluster), list(cluster.fault_injector.log)))
    assert runs[0] == runs[1]
    assert runs[0][1], "the MTTF process never fired in 25s at mean 6s"


def test_fault_rng_does_not_perturb_workload_stream(big_registry):
    # The fault stream is named: drawing faults must not consume the trace
    # stream, so two runs differing only in MTTF see identical arrivals.
    streams = RngStreams(7)
    a = streams.get("trace").random(4).tolist()
    streams.get("faults").random(10)
    b = streams.get("trace").random(4).tolist()
    fresh = RngStreams(7).get("trace").random(8).tolist()
    assert a + b == fresh


# --------------------------------------------------------------------- #
# Degrade: the estimator convergence contract
# --------------------------------------------------------------------- #
def test_degrade_shifts_observed_capability_weights(big_registry):
    # Replica 1 drops to a quarter speed at t=10s.  The observed-rate
    # estimator must converge toward the new rate and shift routing weight
    # to the healthy replica; spec weights cannot see the fault at all.
    cluster = _build(big_registry, capability_estimator="observed",
                     fault_schedule="10:degrade:1:0.25")
    cluster.run_trace(_steady(8.0, 60.0))
    assert cluster.engines[1].rate_multiplier == 0.25
    weights = cluster.capabilities()
    assert weights[0] > 1.0 > weights[1]
    counts = cluster.per_replica_counts()
    assert counts[0] > counts[1]


def test_recover_restores_rate_multiplier(big_registry):
    cluster = _build(big_registry,
                     fault_schedule="10:degrade:1:0.5,20:recover:1")
    cluster.run_trace(_steady(4.0, 30.0))
    assert cluster.engines[1].rate_multiplier == 1.0
    assert cluster.fault_injector.degrades == 1
    assert cluster.fault_injector.recovers == 1


def test_degrade_on_dead_replica_is_skipped(big_registry):
    # A degrade scheduled after the target crashed must not touch the dead
    # engine or count as a fired fault — mirrored on the crash/stall paths.
    cluster = _build(big_registry,
                     fault_schedule="5:crash:1,10:degrade:1:0.5")
    cluster.run_trace(_steady(8.0, 20.0))
    assert cluster.engines[1].rate_multiplier == 1.0
    assert cluster.fault_injector.degrades == 0
    skipped = [f for f in cluster.fault_injector.log
               if f["kind"] == "degrade"]
    assert skipped and skipped[0]["skipped"] == "already gone"


def test_unit_rate_multiplier_is_bit_identical(big_registry):
    # degrade to 1.0 exercises the multiplier code path without changing
    # any iteration cost: timelines must match a fault-free run exactly.
    baseline = _build(big_registry)
    baseline.run_trace(_steady(8.0, 15.0))
    multiplied = _build(big_registry, fault_schedule="1:degrade:0:1.0")
    multiplied.run_trace(_steady(8.0, 15.0))
    assert [(r.request_id, r.finish_time) for r in baseline.all_requests()] \
        == [(r.request_id, r.finish_time) for r in multiplied.all_requests()]


# --------------------------------------------------------------------- #
# Transient stalls
# --------------------------------------------------------------------- #
def test_stall_blocks_dispatch_then_recovers(big_registry):
    trace = _steady(8.0, 30.0)
    cluster = _build(big_registry, fault_schedule="5:stall:1:10")
    cluster.run_trace(trace)
    handle = cluster.replica_handles[1]
    assert handle.state is ReplicaState.ACTIVE  # stalls are not crashes
    assert not handle.stalled
    assert cluster.cluster.stats.stalls == 1
    # Nothing was dispatched to the stalled replica inside its window.
    stalled_window = [
        r for r in cluster.engines[1].all_requests
        if r.enqueue_time is not None and 5.0 < r.enqueue_time < 15.0]
    assert stalled_window == []
    # The replica kept finishing its in-flight work and rejoined after.
    rejoined = [
        r for r in cluster.engines[1].all_requests
        if r.enqueue_time is not None and r.enqueue_time >= 15.0]
    assert rejoined
    completed, shed, lost, pending = _conservation(cluster, trace)
    assert lost == 0 and pending == 0


def test_overlapping_stalls_extend_the_window(big_registry):
    cluster = _build(big_registry,
                     fault_schedule="5:stall:1:4,7:stall:1:10")
    cluster.run_trace(_steady(8.0, 30.0))
    engine_1 = cluster.engines[1]
    # The first stall's timer (t=9) must not end the longer second stall
    # (t=17): no submissions land in [5, 17).
    window = [r for r in engine_1.all_requests
              if r.enqueue_time is not None and 5.0 < r.enqueue_time < 17.0]
    assert window == []
    assert cluster.replica_handles[1].stalled is False


def test_all_replicas_stalled_queues_arrivals(big_registry):
    cluster = _build(big_registry, fault_schedule="2:stall:0:5,2:stall:1:5")
    cluster.run_trace(_steady(8.0, 20.0))
    # Arrivals during the fleet-wide stall waited at the cluster.
    delayed = [r for r in cluster.all_requests()
               if r.dispatch_queue_delay > 0]
    assert delayed
    completed, shed, lost, pending = _conservation(
        cluster, cluster.all_requests())
    assert lost == 0 and pending == 0


# --------------------------------------------------------------------- #
# Self-healing autoscaler
# --------------------------------------------------------------------- #
def _autoscale(min_replicas=2, max_replicas=4, **overrides):
    defaults = dict(
        min_replicas=min_replicas, max_replicas=max_replicas,
        tick_interval=1.0, provision_delay=2.0, cooldown=30.0,
        sustain_ticks=3, idle_sustain_ticks=50, self_heal=True)
    defaults.update(overrides)
    return AutoscaleConfig(**defaults)


def test_self_heal_replaces_crashed_replica_outside_cooldown(big_registry):
    cluster = _build(big_registry, autoscale=_autoscale(),
                     fault_schedule="10:crash:0")
    cluster.run_trace(_steady(8.0, 40.0))
    scaler = cluster.autoscaler
    heals = [e for e in scaler.events if e["action"] == "self_heal"]
    assert len(heals) == 1 and scaler.self_heal_count == 1
    # Detection within one tick of the crash (a tick sharing the crash
    # timestamp already sees the FAILED handle); the 30s demand cooldown
    # never applies.
    assert 10.0 <= heals[0]["time"] <= 11.0
    assert heals[0]["reason"] == "failure_replacement"
    assert heals[0]["failures"] == 1
    # The replacement replica actually joined and served.
    replacement = cluster.replica_handles[heals[0]["replicas"][0]]
    assert replacement.is_active
    assert any(r.finished for r in
               cluster.engines[replacement.index].all_requests)
    # Fleet-level accounting: the failed GPU stopped billing at the crash.
    assert cluster.replica_handles[0].replica_seconds(cluster.sim.now) == 10.0
    extra = cluster.summary(duration=40.0).extra
    assert extra["self_heal_events"] == 1


def test_self_heal_respects_max_replicas(big_registry):
    cluster = _build(big_registry,
                     autoscale=_autoscale(min_replicas=2, max_replicas=2),
                     fault_schedule="10:crash:0")
    cluster.run_trace(_steady(8.0, 30.0))
    # Holding is at the ceiling even after the crash frees a slot: the
    # replacement is allowed (failed replicas hold no GPU)...
    assert cluster.autoscaler.self_heal_count == 1
    assert cluster.cluster.holding_count() <= 2


def test_self_heal_disabled_leaves_fleet_short(big_registry):
    cluster = _build(big_registry,
                     autoscale=_autoscale(self_heal=False),
                     fault_schedule="10:crash:0")
    cluster.run_trace(_steady(8.0, 30.0))
    assert cluster.autoscaler.self_heal_count == 0
    assert all(e["action"] != "self_heal"
               for e in cluster.autoscaler.events)
    assert cluster.cluster.active_count() == 1
    assert "self_heal_events" in cluster.summary(duration=30.0).extra
    assert cluster.summary(duration=30.0).extra["self_heal_events"] == 0


# --------------------------------------------------------------------- #
# Drain migration (the voluntary half of work migration)
# --------------------------------------------------------------------- #
def test_drain_with_migration_redispatches_unstarted_work(big_registry):
    # A burst at t=0 fills both engines: the first submission kicks an
    # iteration immediately, so each engine holds one *started* request and
    # a local queue of unstarted ones — exactly the split drain migration
    # must respect.
    cluster = _build(big_registry)
    trace = _steady(1.0, 30.0)
    for request in trace:
        request.arrival_time = 0.0
        cluster.cluster.dispatch(request)
    queued_locally = cluster.engines[1].scheduler.queue_len()
    assert queued_locally > 0
    cluster.cluster.drain_replica(1, migrate=True)
    assert cluster.cluster.stats.migrations >= queued_locally
    cluster.sim.run()
    handle = cluster.replica_handles[1]
    assert handle.is_retired
    completed, shed, lost, pending = _conservation(cluster, trace)
    assert lost == 0 and pending == 0 and completed == len(trace)
    # The drained replica finished only the work that had already started
    # at drain time; everything else completed elsewhere.
    assert sum(1 for r in cluster.engines[1].all_requests if r.finished) \
        < len(trace)
    assert all(r.finished for r in cluster.engines[1].all_requests)
