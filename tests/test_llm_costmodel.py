"""Tests for the latency cost model, including the Figure 2 calibration."""

import pytest

from repro.hardware.gpu import A40_48GB, A100_80GB
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel, CostModelParams
from repro.llm.model import LLAMA_7B, LLAMA_70B
from repro.sim.simulator import Simulator

#: Paper Figure 2: (rank, total TTFT in ms) for a medium (512-token) input on
#: an unloaded A40 + Llama-7B, including the adapter load from host memory.
FIGURE2_TTFT_MS = {8: 74, 16: 78, 32: 88, 64: 107, 128: 144}
MEDIUM_INPUT = 512


@pytest.fixture
def cm():
    return CostModel(LLAMA_7B, A40_48GB)


def _ttft_ms(cm: CostModel, rank: int) -> float:
    link = PcieLink(Simulator(), PcieSpec())
    load = link.transfer_time(LLAMA_7B.adapter_bytes(rank))
    return 1e3 * (cm.prefill_time(MEDIUM_INPUT, rank) + load)


@pytest.mark.parametrize("rank,expected_ms", sorted(FIGURE2_TTFT_MS.items()))
def test_figure2_calibration(cm, rank, expected_ms):
    """Model TTFTs must match the paper's Figure 2 within 3%."""
    got = _ttft_ms(cm, rank)
    assert got == pytest.approx(expected_ms, rel=0.03)


def test_figure2_loading_share_rank128(cm):
    """§3.2: loading is ~17.5% of TTFT for rank 128 on an unloaded system."""
    link = PcieLink(Simulator(), PcieSpec())
    load = link.transfer_time(LLAMA_7B.adapter_bytes(128))
    total = cm.prefill_time(MEDIUM_INPUT, 128) + load
    assert load / total == pytest.approx(0.175, abs=0.02)


def test_prefill_monotone_in_tokens(cm):
    times = [cm.prefill_time(n, 32) for n in (128, 256, 512, 1024)]
    assert times == sorted(times)
    assert times[-1] > times[0]


def test_prefill_monotone_in_rank(cm):
    times = [cm.prefill_time(512, r) for r in (8, 16, 32, 64, 128)]
    assert times == sorted(times)


def test_lora_overhead_significant_even_for_small_ranks(cm):
    """§3.1: adapter execution is expensive even at rank 8 (fixed gather cost)."""
    base = cm.base_prefill_time(512)
    lora8 = cm.lora_prefill_time(512, 8)
    assert lora8 > 0.15 * base


def test_base_request_has_no_lora_cost(cm):
    assert cm.prefill_time(512, None) == cm.base_prefill_time(512)


def test_decode_step_scales_with_batch_and_context(cm):
    lone = cm.decode_step_time(1, 200)
    batch = cm.decode_step_time(16, 3200)
    assert batch > lone
    # The weights read dominates: batching is much cheaper than 16 singles.
    assert batch < 16 * lone


def test_decode_step_zero_batch_is_free(cm):
    assert cm.decode_step_time(0, 0) == 0.0


def test_decode_step_lora_overhead(cm):
    plain = cm.decode_step_time(8, 1600)
    lora = cm.decode_step_time(8, 1600, total_rank=8 * 64, n_lora_requests=8)
    assert lora > plain


def test_iteration_time_combines_prefill_and_decode(cm):
    only_prefill = cm.iteration_time([(256, 32)], 0, 0)
    only_decode = cm.iteration_time([], 4, 800)
    both = cm.iteration_time([(256, 32)], 4, 800)
    overhead = cm.params.iteration_overhead
    assert both == pytest.approx(only_prefill + only_decode - overhead)


def test_isolated_request_time_components(cm):
    t = cm.isolated_request_time(256, 10, rank=32, adapter_load_time=0.01)
    assert t > 0.01 + cm.prefill_time(256, 32)
    # 9 decode steps, each at least the weights-read floor.
    floor = LLAMA_7B.weight_bytes / A40_48GB.mem_bandwidth_bytes
    assert t > 9 * floor


def test_isolated_request_single_token_is_just_prefill(cm):
    t = cm.isolated_request_time(256, 1, rank=8)
    assert t == pytest.approx(cm.prefill_time(256, 8) + cm.params.iteration_overhead)


def test_isolated_request_rejects_zero_output(cm):
    with pytest.raises(ValueError):
        cm.isolated_request_time(256, 0)


def test_estimate_close_to_exact_isolated(cm):
    exact = cm.isolated_request_time(256, 40, rank=32)
    estimate = cm.estimate_service_time(256, 40, rank=32)
    assert estimate == pytest.approx(exact, rel=0.05)


def test_tensor_parallel_speedup():
    tp1 = CostModel(LLAMA_70B, A100_80GB, compute_speedup=1.0)
    tp4 = CostModel(LLAMA_70B, A100_80GB, compute_speedup=4 * 0.82)
    assert tp4.prefill_time(512, 32) < tp1.prefill_time(512, 32)
    assert tp4.decode_step_time(8, 1600) < tp1.decode_step_time(8, 1600)


def test_invalid_speedup_rejected():
    with pytest.raises(ValueError):
        CostModel(LLAMA_7B, A40_48GB, compute_speedup=0.0)


def test_larger_model_slower():
    small = CostModel(LLAMA_7B, A100_80GB)
    big = CostModel(LLAMA_70B, A100_80GB)
    assert big.prefill_time(512, 32) > small.prefill_time(512, 32)
    assert big.decode_step_time(4, 800) > small.decode_step_time(4, 800)


def test_custom_params_respected():
    fast = CostModel(LLAMA_7B, A40_48GB, CostModelParams(iteration_overhead=0.0))
    assert fast.iteration_time([], 1, 100) == fast.decode_step_time(1, 100)
