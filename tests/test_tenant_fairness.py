"""Tenant-fairness invariants: conservation, quota ceilings, no starvation.

Property-based (hypothesis) checks over the weighted-fair dispatch stack
(:class:`~repro.serving.admission.TenantFairnessPolicy` +
:class:`~repro.hardware.cluster.DataParallelCluster` tenant lanes):

* **Per-tenant request conservation** — every tenant's ledger balances at
  any instant (``submitted + stolen == admitted + shed + donated +
  len(lane)``), the ledgers sum to the cluster-wide ``DispatchStats``
  twins, and at the trace level every tenant's requests are exactly
  accounted (finished / shed / lost / still pending) — across all six
  dispatch policies.
* **Quota ceilings** — a rate-capped tenant's non-borrowed admissions
  never exceed its token bucket's arithmetic bound (burst + rate x
  elapsed), storm or no storm.
* **DRR no-starvation** — while a tenant stays backlogged, the gap
  between its consecutive serves never exceeds one full deficit-round-
  robin round (everyone else's doubled quantum).
* **Region spill/steal** — the per-tenant books merged across shards
  conserve requests even while donations and thefts move lane entries
  between shards mid-run.
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.adapters.registry import AdapterRegistry
from repro.hardware.cluster import DataParallelCluster
from repro.llm.model import LLAMA_7B
from repro.serving.admission import SloPolicy, TenantFairnessPolicy
from repro.serving.engine import EngineConfig
from repro.serving.region import RegionConfig, ServingRegion
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.tenants import DEFAULT_SLO_CLASSES, TenantPopulation

_REGISTRY = None


def _registry():
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = AdapterRegistry.build(LLAMA_7B, 60)
    return _REGISTRY


def _population(n_tenants, skew=1.2):
    return TenantPopulation.build(n_tenants, skew=skew)


def _trace(population, rps, duration=12.0, seed=9):
    rng = RngStreams(seed).get("trace")
    return population.synthesize(rps=rps, duration=duration, rng=rng,
                                 registry=_registry())


def _tenancy(population, capacity_rps, burst=4.0):
    return TenantFairnessPolicy.from_shares(
        population.shares(), capacity_rps=capacity_rps,
        classes=DEFAULT_SLO_CLASSES, quota_burst=burst)


def _build(trace, tenancy, *, policy="least_loaded", slo=None, seed=5,
           n_replicas=2, max_batch=4):
    system = MultiReplicaSystem.build(
        "chameleon", n_replicas=n_replicas, dispatch_policy=policy,
        registry=_registry(), seed=seed, backpressure=True,
        engine_config=EngineConfig(max_batch_size=max_batch),
        slo_policy=slo, tenancy=tenancy)
    system.run_trace(trace.fresh(), horizon=trace.duration)
    return system


def _low_lane_count(cluster, key):
    return sum(1 for request, _ in cluster._low_queue
               if request.tenant_id == key)


def _assert_books_conserve(cluster, trace_requests=None):
    """The per-tenant ledger identities, plus the sums-to-stats twins."""
    stats = cluster.stats
    for key, book in stats.tenants.items():
        waiting = len(cluster._lanes.get(key, ())) \
            + _low_lane_count(cluster, key)
        assert book.submitted + book.stolen == \
            book.admitted + book.shed + book.donated + waiting, (key, book)
    # submitted counts offers through the front door (arrivals, including
    # fault re-offers); steals enter through accept_stolen and are booked
    # in the separate stolen column on both ledgers.
    assert sum(b.submitted for b in stats.tenants.values()) == stats.arrivals
    assert sum(b.shed for b in stats.tenants.values()) == stats.shed
    assert sum(b.stolen for b in stats.tenants.values()) == stats.stolen
    assert sum(b.donated for b in stats.tenants.values()) == stats.donated
    assert sum(b.deprioritized for b in stats.tenants.values()) \
        == stats.deprioritized
    assert sum(b.lost for b in stats.tenants.values()) == stats.lost
    if trace_requests is not None:
        by_tenant: dict = {}
        for r in trace_requests:
            by_tenant.setdefault(r.tenant_id, []).append(r)
        for tenant, mine in by_tenant.items():
            finished = sum(1 for r in mine if r.finished)
            shed = sum(1 for r in mine if r.shed)
            lost = sum(1 for r in mine if r.lost)
            pending = len(mine) - finished - shed - lost
            assert pending >= 0, (tenant, finished, shed, lost, len(mine))
            book = cluster.stats.tenants[tenant]
            assert shed == book.shed, (tenant, shed, book)


# --------------------------------------------------------------------- #
# Conservation, across every dispatch policy
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
def test_tenant_conservation_all_policies(policy):
    population = _population(4)
    trace = _trace(population, rps=30.0)
    slo = SloPolicy(ttft_deadline=2.0, mode="shed",
                    classes=DEFAULT_SLO_CLASSES)
    system = _build(trace, _tenancy(population, 30.0), policy=policy,
                    slo=slo)
    _assert_books_conserve(system.cluster, system.all_requests())


@settings(max_examples=10, deadline=None)
@given(
    n_tenants=st.integers(min_value=1, max_value=8),
    rps=st.floats(min_value=5.0, max_value=60.0),
    skew=st.floats(min_value=0.0, max_value=2.0),
    shed=st.booleans(),
)
def test_tenant_conservation_property(n_tenants, rps, skew, shed):
    population = _population(n_tenants, skew=skew)
    trace = _trace(population, rps=rps)
    slo = SloPolicy(ttft_deadline=2.0,
                    mode="shed" if shed else "deprioritize",
                    classes=DEFAULT_SLO_CLASSES)
    system = _build(trace, _tenancy(population, rps), slo=slo)
    _assert_books_conserve(system.cluster, system.all_requests())
    # Every admission was either in quota, borrowed, or a drained
    # deprioritized entry; nothing is double-counted.
    for book in system.cluster.stats.tenants.values():
        assert 0 <= book.borrowed <= book.admitted
        assert book.virtual_time >= 0.0


def test_tenant_conservation_with_faults():
    """Crash mid-run: migrated work re-offers, stranded work books lost."""
    population = _population(3)
    trace = _trace(population, rps=30.0, duration=15.0)
    system = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=_registry(), seed=5,
        backpressure=True, engine_config=EngineConfig(max_batch_size=4),
        tenancy=_tenancy(population, 30.0),
        fault_schedule="6:crash:1")
    system.run_trace(trace.fresh(), horizon=trace.duration)
    _assert_books_conserve(system.cluster)
    stats = system.cluster.stats
    assert stats.failures == 1
    # A crash re-offers (or strands) work: the books absorbed it.
    assert sum(b.submitted for b in stats.tenants.values()) == stats.arrivals


# --------------------------------------------------------------------- #
# Quota ceilings
# --------------------------------------------------------------------- #
@settings(max_examples=10, deadline=None)
@given(
    rps=st.floats(min_value=20.0, max_value=80.0),
    burst=st.floats(min_value=1.0, max_value=8.0),
    headroom=st.floats(min_value=0.3, max_value=1.0),
)
def test_quota_ceiling_never_exceeded(rps, burst, headroom):
    """Non-borrowed admissions respect the token-bucket arithmetic bound.

    Quotas are set *below* the offered load (headroom < 1) so the buckets
    actually bind; the ceiling must hold for every tenant regardless.
    """
    population = _population(3)
    trace = _trace(population, rps=rps)
    tenancy = TenantFairnessPolicy.from_shares(
        population.shares(), capacity_rps=rps, headroom=headroom,
        classes=DEFAULT_SLO_CLASSES, quota_burst=burst)
    system = _build(trace, tenancy)
    elapsed = system.sim.now
    for key, book in system.cluster.stats.tenants.items():
        rate = tenancy.rate_for(key)
        if rate is None:
            continue
        ceiling = burst + rate * elapsed
        in_quota = book.admitted - book.borrowed - book.deprioritized
        assert in_quota <= ceiling + 1e-9, (key, in_quota, ceiling, book)


def test_borrowing_requires_idle_fleet():
    """With quotas far below load and a tiny busy fleet, the overflow is
    throttled — borrows happen only against measured slack, so the books
    show throttles once the fleet saturates."""
    population = _population(2, skew=0.0)
    trace = _trace(population, rps=60.0, duration=10.0)
    tenancy = TenantFairnessPolicy.from_shares(
        population.shares(), capacity_rps=6.0, headroom=0.5,
        classes=DEFAULT_SLO_CLASSES, quota_burst=1.0)
    system = _build(trace, tenancy, n_replicas=1, max_batch=2)
    books = system.cluster.stats.tenants
    assert sum(b.throttled for b in books.values()) > 0
    _assert_books_conserve(system.cluster)


# --------------------------------------------------------------------- #
# DRR no-starvation
# --------------------------------------------------------------------- #
def test_drr_no_starvation_bound():
    """While a tenant stays backlogged, consecutive serves of that tenant
    are never separated by more than one full DRR round (the sum of every
    other lane's doubled quantum — deficits are capped at 2x)."""
    population = _population(6)  # classes gold/standard/batch, weights 4/2/1
    trace = _trace(population, rps=80.0, duration=10.0)
    tenancy = TenantFairnessPolicy(classes=DEFAULT_SLO_CLASSES)  # no caps
    system = MultiReplicaSystem.build(
        "chameleon", n_replicas=1, registry=_registry(), seed=5,
        backpressure=True, engine_config=EngineConfig(max_batch_size=2),
        tenancy=tenancy)
    cluster = system.cluster
    serve_order = []
    original = cluster._release_fair

    def recording(entry):
        serve_order.append(entry[0].tenant_id)
        return original(entry)

    cluster._release_fair = recording
    system.run_trace(trace.fresh(), horizon=trace.duration)
    assert serve_order, "overload must force lane queueing"
    # Replay the serve sequence against the known lane populations: a lane
    # is backlogged between its first and last serve (entries only leave a
    # lane by being served — no shedding, donation, or loss here).
    quanta = {key: cluster._lane_quantum[key] for key in cluster._lane_ring}
    round_bound = sum(2.0 * q for q in quanta.values())
    last_seen = {}
    for i, tenant in enumerate(serve_order):
        if tenant in last_seen:
            gap = i - last_seen[tenant]
            assert gap <= round_bound, (tenant, gap, round_bound)
        last_seen[tenant] = i
    # Weighted shares: over the contended window the heavy class is served
    # at least as often as the light one.
    gold = sum(1 for t in serve_order
               if population.tenants[t].slo_class == "gold")
    batch = sum(1 for t in serve_order
                if population.tenants[t].slo_class == "batch")
    if batch:
        assert gold >= batch


# --------------------------------------------------------------------- #
# Region spill/steal interleavings
# --------------------------------------------------------------------- #
@settings(max_examples=8, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=3),
    rps=st.floats(min_value=20.0, max_value=60.0),
    spill=st.booleans(),
    steal=st.booleans(),
)
@example(
    n_shards=2,
    rps=20.0,
    spill=False,
    steal=True,
).via('discovered failure')
def test_region_tenant_books_conserve(n_shards, rps, spill, steal):
    population = _population(5)
    trace = _trace(population, rps=rps)
    region = ServingRegion.build(
        "chameleon", n_replicas=2, registry=_registry(), seed=5,
        engine_config=EngineConfig(max_batch_size=4),
        backpressure=True, tenancy=_tenancy(population, rps),
        region=RegionConfig(n_shards=n_shards, shard_key="tenant",
                            spill=spill, steal=steal))
    region.run_trace(trace.fresh(), horizon=trace.duration)
    # Each shard's books balance locally (steals/donations included) ...
    for system in region.systems:
        _assert_books_conserve(system.cluster)
    # ... and the merged region-wide ledger balances per tenant: donations
    # and thefts cancel once summed over every shard.
    merged: dict = {}
    for system in region.systems:
        cluster = system.cluster
        for key, book in cluster.stats.tenants.items():
            entry = merged.setdefault(
                key, {"submitted": 0, "stolen": 0, "admitted": 0,
                      "shed": 0, "donated": 0, "lane": 0})
            entry["submitted"] += book.submitted
            entry["stolen"] += book.stolen
            entry["admitted"] += book.admitted
            entry["shed"] += book.shed
            entry["donated"] += book.donated
            entry["lane"] += len(cluster._lanes.get(key, ())) \
                + _low_lane_count(cluster, key)
    for key, entry in merged.items():
        assert entry["submitted"] + entry["stolen"] == \
            entry["admitted"] + entry["shed"] + entry["donated"] + \
            entry["lane"], (key, entry)
        # Every donation is accepted synchronously by the thief, so the
        # per-tenant totals pair off exactly across the region.
        assert entry["donated"] == entry["stolen"], (key, entry)
    # Region summary exposes the merged tenant block.
    summary = region.summary(duration=trace.duration)
    assert len(summary.extra["tenant_ids"]) \
        == len(summary.extra["tenant_attainment"])
    assert summary.extra["tenant_fairness_jain"] == \
        summary.extra["tenant_fairness_jain"]  # not NaN under load


def test_stolen_work_charges_the_thief():
    """Cross-shard steals keep quota accounting: the thief charges its own
    bucket (or books a borrow), so the merged in-quota total stays inside
    the merged ceiling."""
    population = _population(4)
    trace = _trace(population, rps=50.0, duration=10.0)
    tenancy = _tenancy(population, 50.0, burst=2.0)
    region = ServingRegion.build(
        "chameleon", n_replicas=1, registry=_registry(), seed=5,
        engine_config=EngineConfig(max_batch_size=2),
        backpressure=True, tenancy=tenancy,
        region=RegionConfig(n_shards=2, shard_key="tenant",
                            spill=True, steal=True, steal_threshold=1))
    region.run_trace(trace.fresh(), horizon=trace.duration)
    elapsed = region.sim.now
    for key in population.shares():
        rate = tenancy.rate_for(key)
        total_in_quota = sum(
            b.admitted - b.borrowed - b.deprioritized
            for b in (s.cluster.stats.tenants.get(key)
                      for s in region.systems) if b is not None)
        # Each shard holds an independent bucket for the tenant, so the
        # merged ceiling is one burst+rate*T per shard it appeared on.
        shards_seen = sum(
            1 for s in region.systems
            if key in s.cluster.stats.tenants)
        ceiling = shards_seen * (tenancy.quota_burst + rate * elapsed)
        assert total_in_quota <= ceiling + 1e-9, (key, total_in_quota)


def test_summary_tenant_block_is_internally_consistent():
    """The summary().extra tenant block: parallel lists aligned with
    tenant_ids, spread == max - min of attainment, Jain recomputable from
    the attainment list, counters matching the books."""
    from repro.metrics.summary import jain_fairness_index

    population = _population(4)
    trace = _trace(population, rps=30.0)
    system = _build(trace, _tenancy(population, 30.0))
    extra = system.summary(duration=trace.duration).extra

    ids = extra["tenant_ids"]
    assert ids == sorted(population.shares())
    for key in ("tenant_arrivals", "tenant_completed", "tenant_shed",
                "tenant_lost", "tenant_attainment", "tenant_quota_throttles",
                "tenant_quota_borrows", "tenant_virtual_time",
                "tenant_weights"):
        assert len(extra[key]) == len(ids), key

    attainment = [a for a in extra["tenant_attainment"] if a == a]
    assert extra["tenant_attainment_spread"] == pytest.approx(
        max(attainment) - min(attainment))
    assert extra["tenant_fairness_jain"] == pytest.approx(
        jain_fairness_index(attainment))
    books = system.cluster.stats.tenants
    assert extra["tenant_quota_throttles"] \
        == [books[t].throttled for t in ids]
    assert extra["tenant_quota_borrows"] == [books[t].borrowed for t in ids]
    assert extra["tenant_weights"] \
        == [population.weight_of(t) for t in ids]
    assert sum(extra["tenant_arrivals"]) == len(trace.requests)
