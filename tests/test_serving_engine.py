"""Tests for the continuous-batching serving engine."""

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import A40_48GB, GB, GpuDevice
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B
from repro.serving.adapter_manager import SloraAdapterManager
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.schedulers import FifoScheduler
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


def make_engine(
    n_adapters=20,
    config=None,
    gpu_memory=None,
    scheduler=None,
    manager_cls=SloraAdapterManager,
):
    sim = Simulator()
    gpu = GpuDevice(A40_48GB, memory_bytes=gpu_memory)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, n_adapters)
    cost_model = CostModel(LLAMA_7B, A40_48GB)
    scheduler = scheduler or FifoScheduler()
    manager = manager_cls(sim, gpu, link, registry)
    engine = ServingEngine(
        sim=sim, gpu=gpu, link=link, model=LLAMA_7B, cost_model=cost_model,
        registry=registry, scheduler=scheduler, adapter_manager=manager,
        predictor=None, config=config or EngineConfig(),
    )
    return engine


def _req(rid=0, arrival=0.0, inp=100, out=5, adapter_id=None):
    return Request(request_id=rid, arrival_time=arrival, input_tokens=inp,
                   output_tokens=out, adapter_id=adapter_id)


def test_single_base_request_timeline():
    engine = make_engine()
    request = _req(out=3)
    engine.run_trace([request])
    assert request.finished
    cm = engine.cost_model
    expected_ttft = cm.params.iteration_overhead + cm.prefill_time(100)
    assert request.ttft == pytest.approx(expected_ttft, rel=1e-6)
    assert len(request.token_times) == 3
    assert request.finish_time > request.first_token_time


def test_single_adapter_request_includes_load_time():
    engine = make_engine()
    request = _req(adapter_id=0, out=1)
    engine.run_trace([request])
    load = engine.link.transfer_time(engine.registry.get(0).size_bytes)
    cm = engine.cost_model
    expected = load + cm.params.iteration_overhead + cm.prefill_time(100, 8)
    assert request.ttft == pytest.approx(expected, rel=1e-6)
    assert request.adapter_load_critical_path == pytest.approx(load, rel=1e-6)


def test_resident_adapter_no_critical_path():
    engine = make_engine()
    warm = _req(rid=0, arrival=0.0, adapter_id=0, out=20)
    # Second request arrives while the first still runs: adapter resident.
    reuse = _req(rid=1, arrival=0.05, adapter_id=0, out=2)
    engine.run_trace([warm, reuse])
    assert reuse.adapter_load_critical_path == 0.0
    assert engine.adapter_manager.stats.hits >= 1


def test_continuous_batching_mid_flight_admission():
    engine = make_engine()
    a = _req(rid=0, arrival=0.0, out=50)
    b = _req(rid=1, arrival=0.2, out=5)
    engine.run_trace([a, b])
    assert a.finished and b.finished
    # b joined while a was decoding and finished long before a.
    assert b.finish_time < a.finish_time


def test_tbt_gaps_positive_and_bounded():
    engine = make_engine()
    request = _req(out=20)
    engine.run_trace([request])
    gaps = request.token_gaps()
    assert len(gaps) == 19
    assert all(g > 0 for g in gaps)


def test_memory_released_on_finish():
    engine = make_engine()
    request = _req(out=2, adapter_id=3)
    engine.run_trace([request])
    assert engine.gpu.used("kv") == 0
    # S-LoRA discards the idle adapter afterwards.
    assert engine.gpu.used("adapter") == 0


def test_kv_reservation_while_running():
    engine = make_engine()
    seen = []
    request = _req(out=4)

    def probe():
        seen.append(engine.gpu.used("kv"))

    engine.sim.schedule_at(0.01, probe)
    engine.run_trace([request])
    expected = (100 + 4) * LLAMA_7B.kv_bytes_per_token
    assert seen == [expected]


def test_batch_size_cap_enforced():
    config = EngineConfig(max_batch_size=2)
    engine = make_engine(config=config)
    reqs = [_req(rid=i, arrival=0.0, out=30) for i in range(5)]
    engine.run_trace(reqs)
    assert all(r.finished for r in reqs)
    # The third request had to wait for a slot.
    assert reqs[2].queueing_delay > 0


def test_memory_pressure_defers_admission():
    # Tiny GPU: weights ~12.6 GiB + activations 1 GiB leave ~2.4 GiB for KV.
    engine = make_engine(gpu_memory=16 * GB)
    big = _req(rid=0, inp=3500, out=500)   # 2 GiB of KV: only one fits
    second = _req(rid=1, inp=3500, out=500)
    engine.run_trace([big, second])
    assert big.finished and second.finished
    assert second.admit_time >= big.finish_time


def test_oversized_request_rejected_forever_is_not_silent():
    """A request that can never fit keeps the engine alive but unfinished."""
    engine = make_engine(gpu_memory=16 * GB)
    impossible = _req(inp=4000, out=4000)  # ~4 GB KV > capacity
    engine.run_trace([impossible], horizon=5.0)
    assert not impossible.finished


def test_chunked_prefill_splits_large_prefill():
    config = EngineConfig(chunk_size=64)
    engine = make_engine(config=config)
    request = _req(inp=256, out=2)
    engine.run_trace([request])
    assert request.finished
    # 256 input tokens at 64/iteration: at least 4 prefill iterations.
    assert engine.stats.iterations >= 4


def test_prefill_budget_creates_hol_blocking():
    config = EngineConfig(prefill_token_budget=512)
    engine = make_engine(config=config)
    huge = _req(rid=0, arrival=0.0, inp=500, out=2)
    small = _req(rid=1, arrival=0.0, inp=100, out=2)
    engine.run_trace([huge, small])
    # Both admitted at t=0, but the small one's prefill waits a full
    # iteration behind the huge head-of-line prefill.
    assert small.first_token_time > huge.first_token_time


def test_oversized_prefill_runs_alone():
    config = EngineConfig(prefill_token_budget=256)
    engine = make_engine(config=config)
    request = _req(inp=1000, out=2)
    engine.run_trace([request])
    assert request.finished


def test_squash_rolls_back_progress():
    engine = make_engine()
    request = _req(out=50, adapter_id=0)
    engine.run_trace([request], horizon=0.3)
    assert request.state is RequestState.DECODE
    assert request.tokens_generated > 0
    engine.squash(request)
    assert request.state is RequestState.QUEUED
    assert request.tokens_generated == 0
    assert request.token_times == []
    assert request.squash_count == 1
    assert engine.gpu.used("kv") == 0
    # The squashed request re-runs to completion.
    engine.sim.run()
    assert request.finished


def test_squash_not_in_flight_raises():
    engine = make_engine()
    with pytest.raises(RuntimeError):
        engine.squash(_req())


def test_rerunning_used_requests_rejected():
    engine = make_engine()
    request = _req(out=2)
    engine.run_trace([request])
    engine2 = make_engine()
    with pytest.raises(ValueError):
        engine2.run_trace([request])


def test_load_stall_charged_when_busy():
    config = EngineConfig(load_stall_bandwidth=1 * GB)
    engine = make_engine(config=config)
    # One long-running request keeps the engine busy while the second's
    # adapter (rank 128 -> 256 MB) transfers.
    runner = _req(rid=0, arrival=0.0, out=400)
    misser = _req(rid=1, arrival=0.1, out=2, adapter_id=4)
    engine.run_trace([runner, misser])
    assert engine.stats.stall_time > 0.2  # ~256 MB / 1 GB/s


def test_no_stall_when_engine_idle():
    config = EngineConfig(load_stall_bandwidth=1 * GB)
    engine = make_engine(config=config)
    request = _req(adapter_id=4, out=2)
    engine.run_trace([request])
    assert engine.stats.stall_time == 0.0


def test_stats_accumulate():
    engine = make_engine()
    reqs = [_req(rid=i, arrival=0.01 * i, out=3) for i in range(5)]
    engine.run_trace(reqs)
    assert engine.stats.admissions == 5
    assert engine.stats.prefill_tokens == 5 * 100
    assert engine.stats.iterations > 0
    assert engine.stats.busy_time > 0


def test_memory_telemetry_sampling():
    config = EngineConfig(memory_telemetry_interval=0.05)
    engine = make_engine(config=config)
    engine.run_trace([_req(out=30)], horizon=1.0)
    assert len(engine.gpu.samples) >= 2
    assert all(s.usage.get("weights") == LLAMA_7B.weight_bytes
               for s in engine.gpu.samples)


def test_total_token_capacity():
    engine = make_engine()
    usable = engine.gpu.capacity - LLAMA_7B.weight_bytes - 1 * GB
    assert engine.total_token_capacity == usable // LLAMA_7B.kv_bytes_per_token


def test_adapter_token_cost_ceil():
    engine = make_engine()
    size = engine.registry.get(0).size_bytes
    expected = -(-size // LLAMA_7B.kv_bytes_per_token)
    assert engine.adapter_token_cost(0) == expected
    assert engine.adapter_token_cost(None) == 0


def test_in_flight_count():
    engine = make_engine()
    assert engine.in_flight_count() == 0


# --------------------------------------------------------------------- #
# Cluster-facing views and hooks
# --------------------------------------------------------------------- #
def _bare_engine():
    """An engine built WITHOUT an explicit config (default-argument path)."""
    sim = Simulator()
    gpu = GpuDevice(A40_48GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    return ServingEngine(
        sim=sim, gpu=gpu, link=link, model=LLAMA_7B,
        cost_model=CostModel(LLAMA_7B, A40_48GB), registry=registry,
        scheduler=FifoScheduler(),
        adapter_manager=SloraAdapterManager(sim, gpu, link, registry),
    )


def test_engine_default_config_is_not_aliased():
    """Regression: a mutable default EngineConfig() was shared by every
    engine built without a config, so one engine's knobs leaked into all."""
    first, second = _bare_engine(), _bare_engine()
    assert first.config is not second.config
    first.config.max_batch_size = 1
    assert second.config.max_batch_size == 256


def test_is_saturated_counts_all_in_flight_work():
    engine = make_engine(config=EngineConfig(max_batch_size=2))
    assert not engine.is_saturated()
    engine.submit(_req(rid=0, inp=50, out=5))
    assert not engine.is_saturated()
    engine.submit(_req(rid=1, inp=50, out=5))
    assert engine.is_saturated()


def test_in_flight_token_load_uses_sizes():
    engine = make_engine()
    engine.submit(_req(rid=0, inp=100, out=40))
    # No predictor: remaining prefill + true remaining decode.
    assert engine.in_flight_token_load() == pytest.approx(140.0)


def test_on_finish_hook_fires_per_completion():
    engine = make_engine()
    finished = []
    engine.on_finish(finished.append)
    requests = [_req(rid=0, out=2), _req(rid=1, arrival=0.01, out=2)]
    engine.run_trace(requests)
    assert sorted(r.request_id for r in finished) == [0, 1]


# --------------------------------------------------------------------- #
# Finish hooks that resubmit (the cluster drain path)
# --------------------------------------------------------------------- #
def test_finish_hook_drain_does_not_double_finish():
    """Regression for the PR 1 mid-iteration double-finish bug: a finish
    hook that submits new work (exactly what the cluster's queue drain
    does) kicks a fresh iteration from inside the finish path — that
    iteration must not capture requests that are finished but not yet
    removed from the batch, finishing them twice."""
    engine = make_engine(config=EngineConfig(max_batch_size=2))
    first, second = _req(rid=0, out=3), _req(rid=1, out=3)
    late = _req(rid=2, out=2)
    finished_ids = []
    resubmitted = []

    def drain_like_hook(request):
        finished_ids.append(request.request_id)
        if not resubmitted:
            resubmitted.append(True)
            engine.submit(late)  # a freed slot pulls queued work immediately

    engine.on_finish(drain_like_hook)
    engine.run_trace([first, second])  # same size: they finish together
    assert sorted(finished_ids) == [0, 1, 2]  # each finished exactly once
    assert all(r.finished for r in (first, second, late))
    assert len(engine.all_requests) == 3


def test_finish_hook_chain_of_resubmissions_each_finish_once():
    """A drain that refills the batch on every finish (sustained cluster
    backpressure) must still finish every request exactly once."""
    engine = make_engine(config=EngineConfig(max_batch_size=2))
    backlog = [_req(rid=10 + i, out=2) for i in range(4)]
    finished_ids = []

    def hook(request):
        finished_ids.append(request.request_id)
        if backlog:
            engine.submit(backlog.pop(0))

    engine.on_finish(hook)
    engine.run_trace([_req(rid=0, out=2), _req(rid=1, out=3)])
    assert sorted(finished_ids) == [0, 1, 10, 11, 12, 13]
    assert len(finished_ids) == len(set(finished_ids))


# --------------------------------------------------------------------- #
# Capability (heterogeneous-fleet load normalization)
# --------------------------------------------------------------------- #
def test_capability_ratio_tracks_gpu_specs():
    from repro.hardware.gpu import A100_80GB

    a40 = make_engine()
    sim = Simulator()
    gpu = GpuDevice(A100_80GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    a100 = ServingEngine(
        sim=sim, gpu=gpu, link=link, model=LLAMA_7B,
        cost_model=CostModel(LLAMA_7B, A100_80GB),
        registry=registry, scheduler=FifoScheduler(),
        adapter_manager=SloraAdapterManager(sim, gpu, link, registry),
        predictor=None, config=EngineConfig(),
    )
    expected = ((A100_80GB.peak_tflops * A100_80GB.mem_bandwidth_bytes)
                / (A40_48GB.peak_tflops * A40_48GB.mem_bandwidth_bytes)) ** 0.5
    assert a100.capability() / a40.capability() == pytest.approx(expected)
    assert a40.capability() > 0


def test_capability_scales_with_tp_speedup():
    from repro.hardware.cluster import TensorParallelGroup

    sim = Simulator()
    group = TensorParallelGroup(A40_48GB, tp_degree=2)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 5)
    engine = ServingEngine(
        sim=sim, gpu=group, link=link, model=LLAMA_7B,
        cost_model=CostModel(LLAMA_7B, A40_48GB,
                             compute_speedup=group.compute_speedup),
        registry=registry, scheduler=FifoScheduler(),
        adapter_manager=SloraAdapterManager(sim, group, link, registry),
        predictor=None, config=EngineConfig(),
    )
    single = make_engine()
    assert engine.capability() / single.capability() == pytest.approx(
        group.compute_speedup)
