"""Tests for the output-length predictor and the histogram load forecaster."""

import numpy as np
import pytest

from repro.predictor.load_forecast import HistogramLoadPredictor
from repro.predictor.output_length import OutputLengthPredictor
from repro.sim.rng import RngStreams
from repro.workload.request import Request


def _req(output_tokens=100):
    return Request(request_id=0, arrival_time=0.0, input_tokens=10,
                   output_tokens=output_tokens)


@pytest.fixture
def rng():
    return RngStreams(3).get("predictor")


def test_oracle_accuracy_is_exact(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0)
    assert all(predictor.predict(_req(n)) == n for n in (1, 10, 500))


def test_observed_accuracy_tracks_knob(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.8)
    for _ in range(4000):
        predictor.predict(_req(100))
    assert predictor.observed_accuracy == pytest.approx(0.8, abs=0.03)


def test_hits_stay_within_tolerance(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0 - 1e-12, tolerance=0.1)
    for _ in range(500):
        p = predictor.predict(_req(1000))
        assert 900 <= p <= 1100


def test_misses_leave_tolerance_band(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.0, tolerance=0.1)
    misses = [predictor.predict(_req(1000)) for _ in range(500)]
    outside = [p for p in misses if abs(p - 1000) > 100]
    assert len(outside) == len(misses)


def test_prediction_floor_is_one(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.0, miss_sigma=3.0)
    assert all(predictor.predict(_req(2)) >= 1 for _ in range(200))


def test_annotate_fills_request(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0)
    request = _req(42)
    predictor.annotate(request)
    assert request.predicted_output_tokens == 42


def test_invalid_accuracy_rejected(rng):
    with pytest.raises(ValueError):
        OutputLengthPredictor(rng, accuracy=1.5)


def test_accuracy_nan_before_predictions(rng):
    assert np.isnan(OutputLengthPredictor(rng).observed_accuracy)


# --------------------------------------------------------------------- #
# HistogramLoadPredictor
# --------------------------------------------------------------------- #
def test_histogram_periodic_adapter_predicted():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(adapter_id=1, now=float(t))
    # Last use at 90; next expected around 100.
    assert predictor.probability_within(1, now=95.0, horizon=6.0) > 0.9
    assert predictor.probability_within(1, now=91.0, horizon=2.0) < 0.5


def test_histogram_unknown_adapter_zero():
    predictor = HistogramLoadPredictor()
    assert predictor.probability_within(9, now=0.0, horizon=10.0) == 0.0
    predictor.record_use(9, 0.0)  # one use, no interval yet
    assert predictor.probability_within(9, now=1.0, horizon=10.0) == 0.0


def test_histogram_rank_candidates_order():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(1, float(t))          # period 10
    for t in range(0, 100, 50):
        predictor.record_use(2, float(t))          # period 50
    ranked = predictor.rank_candidates(now=99.0, horizon=5.0, min_probability=0.05)
    assert ranked and ranked[0][0] == 1


def test_histogram_exclusion():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(1, float(t))
    assert predictor.rank_candidates(now=99.0, horizon=5.0, exclude={1}) == []


def test_histogram_use_count():
    predictor = HistogramLoadPredictor()
    predictor.record_use(4, 0.0)
    predictor.record_use(4, 1.0)
    assert predictor.use_count(4) == 2
    assert predictor.use_count(5) == 0


def test_histogram_rejects_bad_bin_width():
    with pytest.raises(ValueError):
        HistogramLoadPredictor(bin_width=0.0)


# --------------------------------------------------------------------- #
# BucketPredictor (the µServe-style classifier)
# --------------------------------------------------------------------- #
from repro.predictor.output_length import BucketPredictor


def test_bucket_oracle_returns_bucket_midpoint(rng):
    predictor = BucketPredictor(rng, accuracy=1.0, n_buckets=8, max_tokens=2048)
    prediction = predictor.predict(_req(100))
    assert predictor.bucket_of(prediction) == predictor.bucket_of(100)


def test_bucket_edges_are_geometric(rng):
    predictor = BucketPredictor(rng, n_buckets=4, max_tokens=256)
    ratios = [predictor.edges[i + 1] / predictor.edges[i] for i in range(4)]
    assert all(r == pytest.approx(ratios[0], rel=1e-9) for r in ratios)
    assert predictor.edges[0] == 1.0
    assert predictor.edges[-1] == pytest.approx(256.0)


def test_bucket_miss_lands_in_adjacent_bucket(rng):
    predictor = BucketPredictor(rng, accuracy=0.0, n_buckets=8, max_tokens=2048)
    true_bucket = predictor.bucket_of(100)
    for _ in range(100):
        wrong = predictor.bucket_of(predictor.predict(_req(100)))
        assert wrong != true_bucket
        assert abs(wrong - true_bucket) == 1


def test_bucket_observed_accuracy(rng):
    predictor = BucketPredictor(rng, accuracy=0.7)
    for _ in range(3000):
        predictor.predict(_req(100))
    assert predictor.observed_accuracy == pytest.approx(0.7, abs=0.04)


def test_bucket_annotate_and_validation(rng):
    predictor = BucketPredictor(rng, accuracy=1.0)
    request = _req(50)
    predictor.annotate(request)
    assert request.predicted_output_tokens >= 1
    with pytest.raises(ValueError):
        BucketPredictor(rng, accuracy=2.0)
    with pytest.raises(ValueError):
        BucketPredictor(rng, n_buckets=1)


def test_bucket_predictor_drives_mlq(rng):
    """The MLQ consumes bucket predictions exactly like point predictions."""
    from repro.adapters.registry import AdapterRegistry
    from repro.llm.model import LLAMA_7B
    from repro.systems import build_system
    from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace
    from repro.sim.rng import RngStreams

    registry = AdapterRegistry.build(LLAMA_7B, 20)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=4.0, duration=10.0,
                             rng=RngStreams(5).get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry, seed=5)
    system.engine.predictor = BucketPredictor(RngStreams(5).get("predictor"))
    system.run_trace(trace.fresh())
    assert all(r.finished for r in system.engine.all_requests)
