"""Tests for the output-length predictor and the load/arrival forecasters."""

import math

import numpy as np
import pytest

from repro.predictor.load_forecast import (
    ArrivalRateForecaster,
    HistogramLoadPredictor,
)
from repro.predictor.output_length import OutputLengthPredictor
from repro.sim.rng import RngStreams
from repro.workload.request import Request


def _req(output_tokens=100):
    return Request(request_id=0, arrival_time=0.0, input_tokens=10,
                   output_tokens=output_tokens)


@pytest.fixture
def rng():
    return RngStreams(3).get("predictor")


def test_oracle_accuracy_is_exact(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0)
    assert all(predictor.predict(_req(n)) == n for n in (1, 10, 500))


def test_observed_accuracy_tracks_knob(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.8)
    for _ in range(4000):
        predictor.predict(_req(100))
    assert predictor.observed_accuracy == pytest.approx(0.8, abs=0.03)


def test_hits_stay_within_tolerance(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0 - 1e-12, tolerance=0.1)
    for _ in range(500):
        p = predictor.predict(_req(1000))
        assert 900 <= p <= 1100


def test_misses_leave_tolerance_band(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.0, tolerance=0.1)
    misses = [predictor.predict(_req(1000)) for _ in range(500)]
    outside = [p for p in misses if abs(p - 1000) > 100]
    assert len(outside) == len(misses)


def test_prediction_floor_is_one(rng):
    predictor = OutputLengthPredictor(rng, accuracy=0.0, miss_sigma=3.0)
    assert all(predictor.predict(_req(2)) >= 1 for _ in range(200))


def test_annotate_fills_request(rng):
    predictor = OutputLengthPredictor(rng, accuracy=1.0)
    request = _req(42)
    predictor.annotate(request)
    assert request.predicted_output_tokens == 42


def test_invalid_accuracy_rejected(rng):
    with pytest.raises(ValueError):
        OutputLengthPredictor(rng, accuracy=1.5)


def test_accuracy_nan_before_predictions(rng):
    assert np.isnan(OutputLengthPredictor(rng).observed_accuracy)


# --------------------------------------------------------------------- #
# HistogramLoadPredictor
# --------------------------------------------------------------------- #
def test_histogram_periodic_adapter_predicted():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(adapter_id=1, now=float(t))
    # Last use at 90; next expected around 100.
    assert predictor.probability_within(1, now=95.0, horizon=6.0) > 0.9
    assert predictor.probability_within(1, now=91.0, horizon=2.0) < 0.5


def test_histogram_unknown_adapter_zero():
    predictor = HistogramLoadPredictor()
    assert predictor.probability_within(9, now=0.0, horizon=10.0) == 0.0
    predictor.record_use(9, 0.0)  # one use, no interval yet
    assert predictor.probability_within(9, now=1.0, horizon=10.0) == 0.0


def test_histogram_rank_candidates_order():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(1, float(t))          # period 10
    for t in range(0, 100, 50):
        predictor.record_use(2, float(t))          # period 50
    ranked = predictor.rank_candidates(now=99.0, horizon=5.0, min_probability=0.05)
    assert ranked and ranked[0][0] == 1


def test_histogram_exclusion():
    predictor = HistogramLoadPredictor()
    for t in range(0, 100, 10):
        predictor.record_use(1, float(t))
    assert predictor.rank_candidates(now=99.0, horizon=5.0, exclude={1}) == []


def test_histogram_use_count():
    predictor = HistogramLoadPredictor()
    predictor.record_use(4, 0.0)
    predictor.record_use(4, 1.0)
    assert predictor.use_count(4) == 2
    assert predictor.use_count(5) == 0


def test_histogram_rejects_bad_bin_width():
    with pytest.raises(ValueError):
        HistogramLoadPredictor(bin_width=0.0)


@pytest.mark.parametrize("kwargs", [
    {"max_bins": 0},
    {"history": 0},
])
def test_histogram_rejects_bad_sizing(kwargs):
    with pytest.raises(ValueError):
        HistogramLoadPredictor(**kwargs)


def test_histogram_single_sample_history_is_finite():
    # One recorded interval must produce a well-defined probability in
    # [0, 1] — never a NaN target or a division by zero.
    predictor = HistogramLoadPredictor()
    predictor.record_use(1, 0.0)
    predictor.record_use(1, 10.0)  # exactly one interval (10s)
    p = predictor.probability_within(1, now=12.0, horizon=9.0)
    assert p == 1.0  # the single at-risk interval lands inside the horizon
    # Elapsed beyond every recorded interval: nothing at risk, probability 0.
    assert predictor.probability_within(1, now=25.0, horizon=5.0) == 0.0


def test_histogram_zero_width_interval_is_finite():
    # Two uses at the same timestamp record a zero-length interval — the
    # degenerate bin must not poison the hazard estimate with NaN.
    predictor = HistogramLoadPredictor()
    predictor.record_use(1, 5.0)
    predictor.record_use(1, 5.0)
    p = predictor.probability_within(1, now=5.0, horizon=1.0)
    assert p == 1.0 and not math.isnan(p)


def test_histogram_negative_horizon_is_zero():
    predictor = HistogramLoadPredictor()
    predictor.record_use(1, 0.0)
    predictor.record_use(1, 1.0)
    assert predictor.probability_within(1, now=1.5, horizon=-1.0) == 0.0


# --------------------------------------------------------------------- #
# ArrivalRateForecaster
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kwargs", [
    {"window": 0.0},
    {"window": -1.0},
    {"min_trend_samples": 1},
    {"band_z": -0.5},
    {"cycle": 0.0},
    {"seasonal_bins": 0},
])
def test_forecaster_rejects_bad_config(kwargs):
    with pytest.raises(ValueError):
        ArrivalRateForecaster(**kwargs)


def test_forecaster_windowed_rate_is_hand_computable():
    forecaster = ArrivalRateForecaster(window=10.0)
    forecaster.observe(0.0, 1.0, 3)   # 3 arrivals over 1s
    forecaster.observe(1.0, 3.0, 5)   # 5 arrivals over 2s
    # 8 arrivals over 3 seconds of coverage.
    assert forecaster.observed_rate() == pytest.approx(8.0 / 3.0)


def test_forecaster_window_trims_old_buckets():
    forecaster = ArrivalRateForecaster(window=2.0)
    forecaster.observe(0.0, 1.0, 100)  # will age out
    forecaster.observe(1.0, 2.0, 4)
    forecaster.observe(2.0, 3.0, 4)   # newest end 3.0: bucket [0,1) trimmed
    assert forecaster.sample_count() == 2
    assert forecaster.observed_rate() == pytest.approx(4.0)


def test_forecaster_zero_width_bucket_ignored():
    # A zero-width window carries no rate information — it must neither
    # crash (divide by zero) nor perturb the estimate.
    forecaster = ArrivalRateForecaster(window=10.0)
    forecaster.observe(0.0, 1.0, 5)
    forecaster.observe(1.0, 1.0, 7)
    assert forecaster.sample_count() == 1
    assert forecaster.observed_rate() == pytest.approx(5.0)
    with pytest.raises(ValueError):
        forecaster.observe(2.0, 1.0, 1)  # negative span is an error
    with pytest.raises(ValueError):
        forecaster.observe(2.0, 3.0, -1)  # negative count is an error


def test_forecaster_cold_start_is_zero_with_empty_band():
    forecast = ArrivalRateForecaster(window=10.0).forecast(0.0, 5.0)
    assert forecast.basis == "cold"
    assert forecast.rate == forecast.lower == forecast.upper == 0.0


def test_forecaster_single_sample_falls_back_to_observed_rate():
    # One bucket: no trend to fit, the point estimate is the current
    # observed rate and every value is finite (no NaN targets).
    forecaster = ArrivalRateForecaster(window=10.0)
    forecaster.observe(0.0, 1.0, 6)
    forecast = forecaster.forecast(1.0, 5.0)
    assert forecast.basis == "current"
    assert forecast.rate == pytest.approx(6.0)
    # Band half-width rate/sqrt(1): maximally wide at one sample.
    assert forecast.lower == pytest.approx(0.0)
    assert forecast.upper == pytest.approx(12.0)
    assert not math.isnan(forecast.rate)


def test_forecaster_band_widens_under_sparse_data():
    def halfwidth_with(n_buckets):
        forecaster = ArrivalRateForecaster(window=100.0)
        for i in range(n_buckets):
            forecaster.observe(float(i), float(i + 1), 6)
        forecast = forecaster.forecast(float(n_buckets), 2.0)
        return forecast.upper - forecast.rate

    # Same steady 6 RPS, sparser history -> wider band (rate / sqrt(n)).
    assert halfwidth_with(1) == pytest.approx(6.0)
    assert halfwidth_with(2) == pytest.approx(6.0 / math.sqrt(2))
    assert halfwidth_with(3) == pytest.approx(6.0 / math.sqrt(3))
    assert halfwidth_with(1) > halfwidth_with(2) > halfwidth_with(3)


def test_forecaster_trend_extrapolates_synthetic_ramp():
    # Rates 1, 2, 3, 4 over unit buckets: a perfect ramp of slope 1/s
    # through the bucket midpoints, so the OLS line is rate(t) = t + 0.5
    # and the residual band is exactly zero.
    forecaster = ArrivalRateForecaster(window=100.0)
    for i in range(4):
        forecaster.observe(float(i), float(i + 1), i + 1)
    forecast = forecaster.forecast(4.0, 2.0)
    assert forecast.basis == "trend"
    assert forecast.rate == pytest.approx(6.5)  # 0.5 + (4 + 2)
    assert forecast.lower == pytest.approx(6.5)
    assert forecast.upper == pytest.approx(6.5)


def test_forecaster_trend_clamps_to_zero_on_downward_ramp():
    forecaster = ArrivalRateForecaster(window=100.0)
    for i in range(4):
        forecaster.observe(float(i), float(i + 1), 4 - i)  # 4, 3, 2, 1
    forecast = forecaster.forecast(4.0, 20.0)  # extrapolates far below zero
    assert forecast.rate == 0.0
    assert forecast.lower == 0.0


def test_forecaster_seasonal_predicts_periodic_burst():
    # Cycle of 8s with a burst in the first second of each cycle.  After
    # two cycles, a forecast targeting the burst phase must see the burst
    # rate even though the current window is all lull.
    forecaster = ArrivalRateForecaster(window=6.0, cycle=8.0, seasonal_bins=8)
    for cycle_start in (0.0, 8.0):
        for i in range(8):
            count = 40 if i == 0 else 2
            forecaster.observe(cycle_start + i, cycle_start + i + 1, count)
    # At t=15 the trailing window is lull; target t=16 is phase 0 (burst).
    forecast = forecaster.forecast(15.0, 1.0)
    assert forecast.basis.endswith("+seasonal")
    assert forecast.rate == pytest.approx(40.0)
    # Targeting a lull phase stays at the lull rate.
    lull = forecaster.forecast(15.0, 4.0)  # t=19 -> phase 3
    assert lull.rate < 10.0


def test_forecaster_seasonal_band_reflects_bin_sparsity():
    # A seasonal estimate from a single bucket (one possibly-anomalous
    # spike) must carry a maximally wide band — lower bound zero — and
    # tighten as later cycles confirm the phase.
    forecaster = ArrivalRateForecaster(window=3.0, cycle=4.0, seasonal_bins=4)
    forecaster.observe(0.0, 1.0, 40)  # spike in phase bin 0, one cycle
    for i in range(1, 4):
        forecaster.observe(float(i), float(i + 1), 2)
    once = forecaster.forecast(3.0, 1.0)  # target t=4 -> phase bin 0
    assert once.basis.endswith("+seasonal")
    assert once.rate == pytest.approx(40.0)
    assert once.lower == 0.0  # one observation: no confidence at all
    # A second cycle confirming the burst halves-ish the relative width.
    forecaster.observe(4.0, 5.0, 40)
    for i in range(5, 8):
        forecaster.observe(float(i), float(i + 1), 2)
    twice = forecaster.forecast(7.0, 1.0)
    assert twice.rate == pytest.approx(40.0)
    assert twice.lower == pytest.approx(40.0 - 40.0 / math.sqrt(2))


def test_forecaster_seasonal_rate_is_phase_binned_mean():
    forecaster = ArrivalRateForecaster(window=10.0, cycle=4.0, seasonal_bins=4)
    forecaster.observe(0.0, 1.0, 10)  # phase bin 0
    forecaster.observe(4.0, 5.0, 20)  # phase bin 0 again, next cycle
    assert forecaster.seasonal_rate(0.5) == pytest.approx(15.0)  # (10+20)/2s
    assert forecaster.seasonal_rate(4.5) == pytest.approx(15.0)  # same phase
    assert forecaster.seasonal_rate(1.5) is None  # no history in that bin


def test_forecaster_negative_horizon_raises():
    forecaster = ArrivalRateForecaster(window=10.0)
    with pytest.raises(ValueError):
        forecaster.forecast(0.0, -1.0)


# --------------------------------------------------------------------- #
# BucketPredictor (the µServe-style classifier)
# --------------------------------------------------------------------- #
from repro.predictor.output_length import BucketPredictor


def test_bucket_oracle_returns_bucket_midpoint(rng):
    predictor = BucketPredictor(rng, accuracy=1.0, n_buckets=8, max_tokens=2048)
    prediction = predictor.predict(_req(100))
    assert predictor.bucket_of(prediction) == predictor.bucket_of(100)


def test_bucket_edges_are_geometric(rng):
    predictor = BucketPredictor(rng, n_buckets=4, max_tokens=256)
    ratios = [predictor.edges[i + 1] / predictor.edges[i] for i in range(4)]
    assert all(r == pytest.approx(ratios[0], rel=1e-9) for r in ratios)
    assert predictor.edges[0] == 1.0
    assert predictor.edges[-1] == pytest.approx(256.0)


def test_bucket_miss_lands_in_adjacent_bucket(rng):
    predictor = BucketPredictor(rng, accuracy=0.0, n_buckets=8, max_tokens=2048)
    true_bucket = predictor.bucket_of(100)
    for _ in range(100):
        wrong = predictor.bucket_of(predictor.predict(_req(100)))
        assert wrong != true_bucket
        assert abs(wrong - true_bucket) == 1


def test_bucket_observed_accuracy(rng):
    predictor = BucketPredictor(rng, accuracy=0.7)
    for _ in range(3000):
        predictor.predict(_req(100))
    assert predictor.observed_accuracy == pytest.approx(0.7, abs=0.04)


def test_bucket_annotate_and_validation(rng):
    predictor = BucketPredictor(rng, accuracy=1.0)
    request = _req(50)
    predictor.annotate(request)
    assert request.predicted_output_tokens >= 1
    with pytest.raises(ValueError):
        BucketPredictor(rng, accuracy=2.0)
    with pytest.raises(ValueError):
        BucketPredictor(rng, n_buckets=1)


def test_bucket_predictor_drives_mlq(rng):
    """The MLQ consumes bucket predictions exactly like point predictions."""
    from repro.adapters.registry import AdapterRegistry
    from repro.llm.model import LLAMA_7B
    from repro.systems import build_system
    from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace
    from repro.sim.rng import RngStreams

    registry = AdapterRegistry.build(LLAMA_7B, 20)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=4.0, duration=10.0,
                             rng=RngStreams(5).get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry, seed=5)
    system.engine.predictor = BucketPredictor(RngStreams(5).get("predictor"))
    system.run_trace(trace.fresh())
    assert all(r.finished for r in system.engine.all_requests)
