"""Unit tests: autoscaler control loop, observed-capability estimation, and
the replica lifecycle end to end through MultiReplicaSystem."""

import math

import numpy as np
import pytest

from repro.hardware.cluster import DataParallelCluster
from repro.serving.autoscaler import (
    Autoscaler,
    AutoscaleConfig,
    ObservedCapabilityEstimator,
)
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem, ReplicaState
from repro.workload.request import Request


def _burst(n, spacing=0.02, start=0.0, input_tokens=300, output_tokens=30):
    return [
        Request(request_id=i, arrival_time=start + i * spacing,
                input_tokens=input_tokens, output_tokens=output_tokens)
        for i in range(n)
    ]


# --------------------------------------------------------------------- #
# AutoscaleConfig validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kwargs", [
    {"min_replicas": 0},
    {"min_replicas": 4, "max_replicas": 2},
    {"tick_interval": 0.0},
    {"provision_delay": -1.0},
    {"warmup_delay": -0.5},
    {"sustain_ticks": 0},
    {"idle_sustain_ticks": 0},
    {"cooldown": -1.0},
    {"scale_out_step": 0},
    {"scale_in_step": 0},
    {"shed_rate_threshold": 1.5},
    {"idle_utilization": -0.1},
    {"mode": "clairvoyant"},
    {"forecast_window": 0.0},
    {"forecast_horizon": 0.0},
    {"forecast_cycle": -5.0},
    {"target_utilization": 0.0},
    {"target_utilization": 1.5},
])
def test_autoscale_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        AutoscaleConfig(**kwargs)


def test_idle_sustain_defaults_to_sustain():
    config = AutoscaleConfig(sustain_ticks=3)
    assert config.effective_idle_sustain == 3
    assert AutoscaleConfig(sustain_ticks=2,
                           idle_sustain_ticks=7).effective_idle_sustain == 7


def test_forecast_horizon_defaults_to_full_cold_start():
    config = AutoscaleConfig(provision_delay=7.0, warmup_delay=2.0,
                             tick_interval=1.5)
    assert config.effective_forecast_horizon == pytest.approx(10.5)
    explicit = AutoscaleConfig(forecast_horizon=4.0, provision_delay=7.0)
    assert explicit.effective_forecast_horizon == 4.0


def test_forecaster_built_only_in_predictive_mode(big_registry):
    reactive = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=2))
    predictive = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=2,
                                  mode="predictive", forecast_window=12.0,
                                  forecast_cycle=60.0))
    assert reactive.autoscaler.forecaster is None
    assert reactive.autoscaler.predictive_scale_out_count == 0
    forecaster = predictive.autoscaler.forecaster
    assert forecaster is not None
    assert forecaster.window == 12.0
    assert forecaster.cycle == 60.0


# --------------------------------------------------------------------- #
# Static fleets are untouched by the refactor
# --------------------------------------------------------------------- #
def test_static_build_has_no_autoscaler_and_all_active(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=big_registry, seed=0)
    assert cluster.autoscaler is None
    assert cluster.cluster.capability_estimator is None  # "auto" -> spec
    assert all(h.state is ReplicaState.ACTIVE for h in cluster.replica_handles)
    assert cluster.cluster.active_count() == 3
    assert cluster.cluster.fleet_size() == 3


def test_build_with_autoscale_defaults_replicas_to_min(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4))
    assert len(cluster.replicas) == 2
    assert cluster.autoscaler is not None
    # "auto" estimator resolves to observed with autoscaling on.
    assert cluster.cluster.capability_estimator is not None


def test_autoscale_rejects_fleet_outside_bounds(big_registry):
    with pytest.raises(ValueError):
        MultiReplicaSystem.build(
            "slora", n_replicas=6, registry=big_registry,
            predictor_accuracy=None,
            autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4))


def test_autoscale_requires_backpressure(big_registry):
    with pytest.raises(ValueError):
        MultiReplicaSystem.build(
            "slora", registry=big_registry, predictor_accuracy=None,
            backpressure=False,
            autoscale=AutoscaleConfig(min_replicas=1, max_replicas=2))


# --------------------------------------------------------------------- #
# Replica lifecycle through the real engine stack
# --------------------------------------------------------------------- #
def test_provision_replica_pays_cold_start(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=1, registry=big_registry,
        predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3))
    handle = cluster.provision_replica(provision_delay=2.0, warmup_delay=1.0)
    assert handle.state is ReplicaState.PROVISIONING
    assert len(cluster.replicas) == 2
    cluster.sim.run(until=2.5)
    assert handle.state is ReplicaState.WARMING
    cluster.sim.run(until=3.5)
    assert handle.state is ReplicaState.ACTIVE
    assert handle.active_at == pytest.approx(3.0)
    assert handle.replica_seconds(10.0) == pytest.approx(10.0)


def test_provisioned_replica_derives_seed_from_index(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=2, registry=big_registry, seed=5,
        autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4))
    cluster.provision_replica()
    assert [system.rng.seed for system in cluster.replicas] == [5, 6, 7]


def test_provision_replica_heterogeneous_spec(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=1, registry=big_registry, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3))
    cluster.provision_replica("a100-80gb")
    assert cluster.replicas[1].gpu.spec.name == "a100-80gb"


def test_provision_without_factory_raises(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=1, registry=big_registry,
        predictor_accuracy=None, seed=0)
    cluster.factory = None
    with pytest.raises(RuntimeError):
        cluster.provision_replica()


def test_drain_finishes_inflight_work_then_retires(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0)
    requests = _burst(8)
    cluster.run_trace(requests, horizon=0.3)
    victim = cluster.cluster.handles[0]
    before = len(victim.engine.all_requests)
    assert victim.engine.in_flight_count() > 0
    cluster.cluster.drain_replica(0)
    assert victim.state is ReplicaState.DRAINING
    cluster.sim.run()
    # The drained replica finished everything it held, took nothing new,
    # and retired on its last finish; no request was lost.
    assert victim.state is ReplicaState.RETIRED
    assert len(victim.engine.all_requests) == before
    assert all(r.finished for r in cluster.all_requests())
    assert len(cluster.all_requests()) == len(requests)


def test_drain_idle_replica_retires_immediately(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0)
    handle = cluster.cluster.drain_replica(1)
    assert handle.state is ReplicaState.RETIRED
    # Idempotent on a retired replica.
    assert cluster.cluster.drain_replica(1).state is ReplicaState.RETIRED


def test_drain_cancels_cold_provisioning(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=1, registry=big_registry,
        predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3))
    handle = cluster.provision_replica(provision_delay=5.0)
    cluster.cluster.drain_replica(handle.index)
    assert handle.state is ReplicaState.RETIRED
    cluster.sim.run(until=10.0)
    # The cancelled cold start never activates later.
    assert handle.state is ReplicaState.RETIRED
    assert cluster.cluster.active_count() == 1


def test_illegal_lifecycle_transition_raises(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=1, registry=big_registry,
        predictor_accuracy=None, seed=0)
    handle = cluster.replica_handles[0]
    with pytest.raises(RuntimeError):
        handle.retire(0.0)  # ACTIVE -> RETIRED must pass through DRAINING


# --------------------------------------------------------------------- #
# The control loop end to end
# --------------------------------------------------------------------- #
def _overload_config(**overrides):
    defaults = dict(
        min_replicas=1, max_replicas=3, tick_interval=1.0,
        provision_delay=1.0, sustain_ticks=1, cooldown=2.0,
        queue_wait_threshold=0.5, idle_sustain_ticks=3,
    )
    defaults.update(overrides)
    return AutoscaleConfig(**defaults)


def _overloaded_cluster(big_registry, config, duration=40.0, rps=60.0):
    cluster = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        engine_config=EngineConfig(max_batch_size=8), autoscale=config)
    n = int(rps * duration)
    cluster.run_trace(_burst(n, spacing=1.0 / rps))
    return cluster


def test_scales_out_under_sustained_pressure(big_registry):
    cluster = _overloaded_cluster(big_registry, _overload_config())
    scaler = cluster.autoscaler
    assert scaler.scale_out_count > 0
    assert scaler.peak_fleet > 1
    assert scaler.peak_fleet <= 3
    out_events = [e for e in scaler.events if e["action"] == "scale_out"]
    assert out_events and all(e["fleet_size"] <= 3 for e in scaler.events)


def test_scale_out_respects_cooldown(big_registry):
    cluster = _overloaded_cluster(
        big_registry, _overload_config(cooldown=1000.0), duration=30.0)
    assert cluster.autoscaler.scale_out_count == 1


def test_never_exceeds_max_replicas(big_registry):
    cluster = _overloaded_cluster(
        big_registry, _overload_config(max_replicas=2, cooldown=0.0))
    assert cluster.autoscaler.peak_fleet <= 2
    assert len(cluster.replicas) <= 1 + cluster.autoscaler.scale_out_count * 2


def test_scales_in_during_idle_lull(big_registry):
    # A hard burst, then a long silent lull kept alive by one straggler:
    # the controller must scale out for the burst and back in for the lull.
    config = _overload_config(cooldown=1.0)
    cluster = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        engine_config=EngineConfig(max_batch_size=8), autoscale=config)
    requests = _burst(600, spacing=0.02)
    straggler = Request(request_id=len(requests), arrival_time=80.0,
                        input_tokens=50, output_tokens=4)
    cluster.run_trace(requests + [straggler])
    scaler = cluster.autoscaler
    assert scaler.scale_out_count > 0
    assert scaler.scale_in_count > 0
    # The lull tore the fleet back down to the floor.
    assert cluster.cluster.fleet_size() == 1
    assert all(r.finished for r in cluster.all_requests())


def test_summary_extra_accounts_scale_events(big_registry):
    cluster = _overloaded_cluster(big_registry, _overload_config())
    extra = cluster.summary(warmup=5.0, duration=40.0).extra
    assert extra["scale_out_events"] == cluster.autoscaler.scale_out_count
    assert extra["scale_in_events"] == cluster.autoscaler.scale_in_count
    assert extra["peak_fleet_size"] == cluster.autoscaler.peak_fleet
    assert len(extra["scale_events"]) == \
        extra["scale_out_events"] + extra["scale_in_events"]
    assert extra["replica_seconds"] == pytest.approx(
        cluster.cluster.replica_seconds(cluster.sim.now))
    assert extra["replica_seconds"] > 0
    assert extra["goodput_per_replica_second"] > 0
    # Elasticity bills less than peak-sized-everywhere.
    assert extra["replica_seconds"] <= \
        cluster.autoscaler.peak_fleet * cluster.sim.now


def test_predictive_mode_scales_out_within_bounds(big_registry):
    config = _overload_config(mode="predictive", forecast_window=5.0)
    cluster = _overloaded_cluster(big_registry, config)
    scaler = cluster.autoscaler
    assert scaler.scale_out_count > 0
    assert scaler.peak_fleet <= 3
    assert all(e["holding"] <= 3 for e in scaler.events)
    extra = cluster.summary(warmup=5.0, duration=40.0).extra
    assert extra["predictive_scale_out_events"] == \
        scaler.predictive_scale_out_count
    # Every forecast-driven event carries its diagnostics; reactive events
    # carry none (their records stay byte-identical across modes).
    for event in scaler.events:
        if event.get("reason") == "predictive":
            assert event["forecast_lower"] > 0
            assert event["forecast_upper"] >= event["forecast_rate"] >= \
                event["forecast_lower"]
            assert event["service_rate"] > 0
            assert event["target_replicas"] > 0
        else:
            assert "forecast_rate" not in event


def test_predictive_requires_service_rate_history(big_registry):
    # Before any finish has been observed there is no capacity unit to
    # divide a forecast by, so the predictive path must stay silent (the
    # reactive net owns cold starts): a flood of arrivals alone — requests
    # too long to finish within the run — never triggers a forecast-driven
    # event, however high the forecast rate.
    config = _overload_config(
        mode="predictive", forecast_horizon=0.5, queue_wait_threshold=None)
    cluster = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        engine_config=EngineConfig(max_batch_size=8), autoscale=config)
    requests = _burst(40, spacing=0.001, output_tokens=4000)
    cluster.run_trace(requests, horizon=3.0)
    scaler = cluster.autoscaler
    assert cluster.cluster.stats.finishes == 0  # nothing completed yet
    assert scaler.forecaster.observed_rate() > 5.0  # demand clearly visible
    assert scaler.predictive_scale_out_count == 0


def test_predictive_scale_out_restarts_idle_countdown(big_registry):
    # A forecast-driven scale-out typically fires in a lull; the idle
    # streak must restart so the very next tick's reactive scale-in cannot
    # cancel the replicas just pre-provisioned for the predicted burst.
    config = _overload_config(mode="predictive", forecast_window=5.0,
                              idle_sustain_ticks=2)
    cluster = _overloaded_cluster(big_registry, config)
    scaler = cluster.autoscaler
    out_times = {e["time"] for e in scaler.events
                 if e.get("reason") == "predictive"}
    in_events = [e for e in scaler.events if e["action"] == "scale_in"]
    # No scale-in within idle_sustain ticks of a forecast-driven scale-out.
    for event in in_events:
        assert all(event["time"] - t >= 2 * config.tick_interval
                   for t in out_times if t < event["time"])


def test_predictive_fires_from_an_at_floor_idle_lull(big_registry):
    # Regression: an idle fleet pinned at min_replicas takes the scale-in
    # branch every tick; the attempt no-ops at the floor and must NOT
    # count as "this tick already scaled" — that would suppress predictive
    # evaluation during exactly the lull pre-provisioning exists for.
    # Bursts 1 and 2 teach the seasonal histogram (two cycles: enough for
    # the phase band to carry confidence) and the capacity unit; each lull
    # parks the fleet back at the floor; the forecast for burst 3 must
    # provision ahead from inside the second at-floor lull.
    config = AutoscaleConfig(
        min_replicas=1, max_replicas=4, tick_interval=1.0,
        provision_delay=2.0, cooldown=2.0, sustain_ticks=1,
        queue_wait_threshold=0.5, idle_sustain_ticks=2, idle_utilization=0.9,
        mode="predictive", forecast_window=8.0, forecast_cycle=30.0)
    cluster = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        engine_config=EngineConfig(max_batch_size=8), autoscale=config)
    requests = []
    for cycle_start in (0.0, 30.0, 60.0):
        burst = _burst(300, spacing=1 / 30, start=cycle_start)   # 10s @ 30 RPS
        lull = _burst(18, spacing=1.0, start=cycle_start + 10.0)  # 18s @ 1 RPS
        for request in burst + lull:
            request.request_id = len(requests)
            requests.append(request)
    cluster.run_trace(requests)
    scaler = cluster.autoscaler
    lull_predictive = [
        e for e in scaler.events
        if e.get("reason") == "predictive" and 42.0 <= e["time"] < 60.0]
    assert lull_predictive, (
        "no forecast-driven scale-out fired from the at-floor lull ahead "
        "of burst 3: "
        f"events={[(e['time'], e['action']) for e in scaler.events]}")


def test_autoscaler_ticks_stop_when_work_drains(big_registry):
    cluster = _overloaded_cluster(big_registry, _overload_config(),
                                  duration=10.0)
    # The run ended: heap is empty (ticks did not self-reschedule forever).
    assert cluster.sim.peek_time() is None
    assert cluster.autoscaler.ticks > 0


# --------------------------------------------------------------------- #
# ObservedCapabilityEstimator
# --------------------------------------------------------------------- #
def test_estimator_validates_arguments():
    with pytest.raises(ValueError):
        ObservedCapabilityEstimator(tau=0.0)
    with pytest.raises(ValueError):
        ObservedCapabilityEstimator(min_samples=0)
    est = ObservedCapabilityEstimator()
    with pytest.raises(ValueError):
        est.register(0, 0.0)


def test_estimator_cold_start_uses_raw_priors():
    est = ObservedCapabilityEstimator()
    est.register(0, 2.0)
    est.register(1, 1.0)
    weights = est.weights([0, 1])
    assert weights[0] == pytest.approx(2.0)
    assert weights[1] == pytest.approx(1.0)
    assert est.observed_rate(0) is None


def test_estimator_tracks_observed_rates():
    est = ObservedCapabilityEstimator(min_samples=1)
    est.register(0, 1.0)
    est.register(1, 1.0)
    # Replica 0 finishes every 0.1s, replica 1 every 0.4s.
    for k in range(1, 41):
        est.observe_finish(0, k * 0.1)
    for k in range(1, 11):
        est.observe_finish(1, k * 0.4)
    assert est.observed_rate(0) == pytest.approx(10.0, rel=1e-6)
    assert est.observed_rate(1) == pytest.approx(2.5, rel=1e-6)
    weights = est.weights([0, 1])
    assert weights[0] / weights[1] == pytest.approx(4.0, rel=1e-6)


def test_estimator_batches_same_timestamp_finishes():
    est = ObservedCapabilityEstimator(min_samples=1)
    est.register(0, 1.0)
    # 4 finishes land together at t=1, the next drain event at t=2: the
    # per-slot rate is 4 finishes over 1s, not a zero-length interval.
    for _ in range(4):
        est.observe_finish(0, 1.0)
    est.observe_finish(0, 2.0)
    assert est.observed_rate(0) == pytest.approx(4.0)


def test_estimator_idle_closes_measurement_window():
    est = ObservedCapabilityEstimator(min_samples=1)
    est.register(0, 1.0)
    est.observe_finish(0, 1.0)
    est.observe_finish(0, 1.1, idle=True)  # drained: engine goes idle
    rate_before = est.observed_rate(0)
    # A finish an hour later must not count the idle gap as service time.
    est.observe_finish(0, 3600.0)
    est.observe_finish(0, 3600.1)
    assert est.observed_rate(0) == pytest.approx(rate_before, rel=0.2)


def test_estimator_calibrates_prior_for_cold_replica():
    est = ObservedCapabilityEstimator(min_samples=1)
    est.register(0, 4.0)   # measured below
    est.register(1, 2.0)   # cold: half the spec capability of replica 0
    for k in range(1, 21):
        est.observe_finish(0, k * 0.1)  # 10 finishes/s
    weights = est.weights([0, 1])
    # Fleet calibration: 10 rate units per 4 prior units -> the cold
    # replica's expected rate is 2 * (10 / 4) = 5.
    assert weights[0] == pytest.approx(10.0, rel=1e-6)
    assert weights[1] == pytest.approx(5.0, rel=1e-6)


def test_estimator_feeds_cluster_weights(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0, capability_estimator="observed")
    assert cluster.cluster.capability_estimator is not None
    cluster.run_trace(_burst(60, spacing=0.05))
    weights = cluster.capabilities()
    assert sum(weights) == pytest.approx(2.0)  # normalized over active set


def test_explicit_estimator_instance_is_used(big_registry):
    est = ObservedCapabilityEstimator(tau=5.0)
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0, capability_estimator=est)
    assert cluster.cluster.capability_estimator is est


def test_estimator_converges_after_mid_run_degradation():
    """The contract the ``degrade`` fault relies on: a step change in a
    replica's service rate converges the time-weighted EWMA within a
    bounded number of finish events.

    With tau=20s and finishes every 2s, each sample carries weight
    ``1 - exp(-0.1)`` ~ 0.095, so the error to the new rate shrinks by
    ~0.905 per event: 30 events cut a 2x rate step to well under 10%
    residual.  If this bound regresses, degraded replicas keep their old
    routing weight long past the fault and drag the tail.
    """
    est = ObservedCapabilityEstimator(tau=20.0, min_samples=1)
    est.register(0, 1.0)
    # Healthy phase: one finish per second (rate 1.0), long enough for the
    # EWMA to settle on it.
    now = 0.0
    for _ in range(60):
        now += 1.0
        est.observe_finish(0, now)
    assert est.observed_rate(0) == pytest.approx(1.0, rel=1e-6)
    # Degradation: the replica halves its speed (finish every 2s, rate 0.5).
    within = None
    for event in range(1, 31):
        now += 2.0
        est.observe_finish(0, now)
        if within is None and abs(est.observed_rate(0) - 0.5) <= 0.05:
            within = event
    assert within is not None and within <= 30, \
        f"EWMA still {est.observed_rate(0):.3f} after 30 degraded finishes"
    # And it keeps tracking: the estimate never undershoots the true rate.
    assert est.observed_rate(0) >= 0.5


# --------------------------------------------------------------------- #
# Heterogeneous predictive target (per-replica demonstrated capacity)
# --------------------------------------------------------------------- #
class _CapEngine:
    """Minimal engine with a spec capability, for target-math tests."""

    def __init__(self, cap, sim):
        self.cap = cap
        self.sim = sim
        self.in_flight = []

    def capability(self):
        return self.cap

    def in_flight_count(self):
        return len(self.in_flight)

    def is_saturated(self):
        return False

    def on_finish(self, callback):
        pass


def test_predictive_target_uses_per_replica_capacity_for_hetero_spec():
    """ROADMAP follow-up: a planned cheap-GPU scale-out must not be sized
    by the fleet-mean demonstrated capacity.

    Fleet: two big replicas (capability 4) that demonstrated 8 finishes/s
    together (1/s per capability unit).  Demand at the horizon: 24/s at
    target_utilization 1.0.  The legacy fleet-mean math says each replica
    serves 4/s, targets 6 replicas, and adds 4 — but the 4 newcomers are
    capability-1 GPUs serving 1/s each, leaving the fleet 12/s short.  The
    per-replica path must instead add ceil((24 - 8) / 1) = 16 small
    replicas (bounded later by max_replicas; the *target* must be honest).
    """
    from repro.hardware.gpu import GpuSpec
    from repro.sim.simulator import Simulator

    small_gpu = GpuSpec("unit-gpu", 1, 1.0, 1.0)  # capability sqrt(1*1) = 1
    sim = Simulator()
    engines = [_CapEngine(4.0, sim) for _ in range(2)]
    cluster = DataParallelCluster(engines, policy="least_loaded", sim=sim,
                                  rng=np.random.default_rng(0))
    config = AutoscaleConfig(
        min_replicas=2, max_replicas=32, tick_interval=1.0,
        mode="predictive", target_utilization=1.0,
        scale_out_spec=small_gpu)
    scaler = Autoscaler(sim=sim, cluster=cluster, config=config,
                        provision=lambda *a, **k: None)
    scaler._observe_throughput(d_finishes=8, dt=1.0)  # 8/s over 2 big GPUs
    assert scaler._peak_service_rate == pytest.approx(4.0)
    assert scaler._peak_rate_per_cap == pytest.approx(1.0)
    want = scaler._scale_out_deficit(
        demand_rate=24.0, service_rate=scaler._peak_service_rate, fleet=2)
    assert want == 16
    # Sanity: the legacy fleet-mean math would have under-provisioned.
    legacy = math.ceil(24.0 / (4.0 * 1.0)) - 2
    assert legacy == 4 < want


def test_predictive_target_keeps_fleet_mean_path_when_homogeneous():
    """A scale_out_spec matching the in-fleet capability must take the
    historic fleet-mean path bit for bit (the heterogeneous formula only
    engages on an actual capability difference)."""
    from repro.hardware.gpu import GpuSpec
    from repro.sim.simulator import Simulator

    same_gpu = GpuSpec("same-gpu", 1, 16.0, 1.0)  # capability sqrt(16) = 4
    sim = Simulator()
    engines = [_CapEngine(4.0, sim) for _ in range(2)]
    cluster = DataParallelCluster(engines, policy="least_loaded", sim=sim,
                                  rng=np.random.default_rng(0))
    config = AutoscaleConfig(
        min_replicas=2, max_replicas=32, tick_interval=1.0,
        mode="predictive", target_utilization=1.0,
        scale_out_spec=same_gpu)
    scaler = Autoscaler(sim=sim, cluster=cluster, config=config,
                        provision=lambda *a, **k: None)
    scaler._observe_throughput(d_finishes=8, dt=1.0)
    assert scaler._scale_out_capability() is None
    want = scaler._scale_out_deficit(
        demand_rate=24.0, service_rate=scaler._peak_service_rate, fleet=2)
    assert want == math.ceil(24.0 / 4.0) - 2 == 4


def test_hetero_scale_out_provisions_more_cheap_replicas(big_registry):
    """End to end: same burst, same controller — an a40 scale_out_spec
    targets at least as many replicas as an a100 spec would, because each
    a40 demonstrably serves less."""
    from repro.serving.admission import SloPolicy

    targets = {}
    for spec in ("a100-80gb", "a40-48gb"):
        cluster = MultiReplicaSystem.build(
            "slora", registry=big_registry, predictor_accuracy=None,
            seed=5, dispatch_policy="least_loaded",
            replica_specs=["a100-80gb", "a100-80gb"],
            slo_policy=SloPolicy(ttft_deadline=2.0, mode="shed"),
            engine_config=EngineConfig(max_batch_size=8),
            autoscale=AutoscaleConfig(
                min_replicas=2, max_replicas=12, tick_interval=1.0,
                provision_delay=2.0, cooldown=3.0, sustain_ticks=2,
                idle_sustain_ticks=50, queue_wait_threshold=0.5,
                mode="predictive", forecast_window=10.0,
                scale_out_spec=spec))
        steady = [Request(request_id=i, arrival_time=i * 0.2,
                          input_tokens=200, output_tokens=20)
                  for i in range(150)]
        burst = [Request(request_id=150 + i, arrival_time=30.0 + i * 0.02,
                         input_tokens=200, output_tokens=20)
                 for i in range(500)]
        cluster.run_trace(steady + burst)
        predictive = [e for e in cluster.autoscaler.events
                      if e.get("reason") == "predictive"]
        targets[spec] = max((e["target_replicas"] for e in predictive),
                            default=None)
    assert targets["a100-80gb"] is not None, "predictive path never fired"
    assert targets["a40-48gb"] is not None
    assert targets["a40-48gb"] > targets["a100-80gb"]
