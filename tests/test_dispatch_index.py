"""Differential guard: O(log n) dispatch indices vs the linear scan.

The indexed dispatch path (``dispatch_index=True``, the default) must be
bit-for-bit identical to the linear fleet scan on stock engines — same
per-engine request sequences, same stats, same queue delays, same RNG
consumption.  These tests run every policy under both implementations and
compare complete run fingerprints, across the regimes that exercise every
index maintenance path: unsaturated flow, batch-cap saturation (the
backpressure filter), SLO admission, lifecycle churn (drain + stall +
crash), and backpressure off.

Plus unit tests for the two index structures themselves
(:mod:`repro.hardware.dispatch_index`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters.registry import AdapterRegistry
from repro.hardware.dispatch_index import MinLoadHeap, SelectableBitset
from repro.llm.model import LLAMA_7B
from repro.serving.admission import SloPolicy
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace

POLICIES = (
    "least_loaded",
    "round_robin",
    "p2c",
    "token_weighted",
    "adapter_affinity",
    "bounded_affinity",
)


# --------------------------------------------------------------------- #
# MinLoadHeap
# --------------------------------------------------------------------- #
class TestMinLoadHeap:
    def test_peek_returns_minimum(self):
        heap = MinLoadHeap()
        loads = [5, 2, 9, 2]
        for i, load in enumerate(loads):
            heap.push(load, i)
        assert heap.peek(loads, [True] * 4) == 1  # load 2, lowest index

    def test_tie_break_prefers_lowest_index(self):
        heap = MinLoadHeap()
        loads = [3, 3, 3]
        for i in (2, 0, 1):  # push order must not matter
            heap.push(3, i)
        assert heap.peek(loads, [True] * 3) == 0

    def test_stale_entries_are_discarded(self):
        heap = MinLoadHeap()
        loads = [1, 4]
        heap.push(1, 0)
        heap.push(4, 1)
        loads[0] = 7  # engine 0's load moved; entry (1, 0) is stale
        heap.push(7, 0)
        assert heap.peek(loads, [True, True]) == 1

    def test_ineligible_entries_are_discarded(self):
        heap = MinLoadHeap()
        loads = [1, 4]
        heap.push(1, 0)
        heap.push(4, 1)
        assert heap.peek(loads, [False, True]) == 1
        assert heap.peek(loads, [False, False]) is None

    def test_peek_unsaturated_skips_capped_replicas(self):
        heap = MinLoadHeap()
        loads = [4, 6]
        heap.push(4, 0)
        heap.push(6, 1)
        # Engine 0 is the min but sits at its cap; the pick must skip it.
        assert heap.peek_unsaturated(loads, [True, True], [4, 6], [4, 8]) == 1

    def test_rebuild_replaces_contents(self):
        heap = MinLoadHeap()
        heap.push(0, 3)
        heap.rebuild([(2, 0), (1, 1)])
        assert len(heap) == 2
        assert heap.peek([2, 1], [True, True]) == 1

    def test_equal_duplicate_entries_are_safe(self):
        # Two pushes storing the same (load, index) value: discarding either
        # must leave a current entry behind.
        heap = MinLoadHeap()
        loads = [2]
        heap.push(2, 0)
        heap.push(2, 0)
        assert heap.peek(loads, [True]) == 0
        assert heap.peek_unsaturated(loads, [True], [2], [1]) is None
        assert len(heap) == 0  # both entries consumed by the saturated scan


# --------------------------------------------------------------------- #
# SelectableBitset
# --------------------------------------------------------------------- #
class TestSelectableBitset:
    def test_kth_matches_reference_selection(self):
        rng = np.random.default_rng(11)
        for n in (1, 2, 7, 16, 33, 100):
            bits = [bool(b) for b in rng.integers(0, 2, size=n)]
            bitset = SelectableBitset(bits)
            reference = [i for i, b in enumerate(bits) if b]
            assert len(bitset) == len(reference)
            for k, expect in enumerate(reference):
                assert bitset.kth(k) == expect

    def test_set_updates_selection(self):
        bits = [True, False, True, False, True]
        bitset = SelectableBitset(bits)
        bitset.set(2, False)
        bitset.set(3, True)
        reference = [0, 3, 4]
        assert [bitset.kth(k) for k in range(len(bitset))] == reference

    def test_set_is_idempotent(self):
        bitset = SelectableBitset([True, False])
        bitset.set(0, True)  # no-op
        bitset.set(1, False)  # no-op
        assert len(bitset) == 1 and bitset.kth(0) == 0

    def test_kth_out_of_range_raises(self):
        bitset = SelectableBitset([True, False])
        with pytest.raises(IndexError):
            bitset.kth(1)
        with pytest.raises(IndexError):
            bitset.kth(-1)

    def test_randomized_set_and_kth(self):
        rng = np.random.default_rng(5)
        n = 50
        bits = [bool(b) for b in rng.integers(0, 2, size=n)]
        bitset = SelectableBitset(bits)
        for _ in range(300):
            i = int(rng.integers(0, n))
            value = bool(rng.integers(0, 2))
            bits[i] = value
            bitset.set(i, value)
            reference = [j for j, b in enumerate(bits) if b]
            assert len(bitset) == len(reference)
            if reference:
                k = int(rng.integers(0, len(reference)))
                assert bitset.kth(k) == reference[k]
            assert [bitset.get(j) for j in range(n)] == bits


# --------------------------------------------------------------------- #
# Differential guard: indexed dispatch == linear scan, bit for bit
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def registry():
    return AdapterRegistry.build(LLAMA_7B, 100)


def _trace(registry, rps, duration=18.0):
    rng = RngStreams(9).get("trace")
    return synthesize_trace(SPLITWISE_PROFILE, rps=rps, duration=duration,
                            rng=rng, registry=registry)


def _fingerprint(system):
    """Everything observable about a run, for exact comparison."""
    stats = system.cluster.stats
    return {
        "per_engine": [
            [r.request_id for r in engine.all_requests]
            for engine in system.engines
        ],
        "dispatched": stats.dispatched,
        "queued": stats.queued,
        "spills": stats.spills,
        "shed": stats.shed,
        "deprioritized": stats.deprioritized,
        "queue_delays": list(stats.queue_delays),
        "ttfts": sorted(
            (r.request_id, r.ttft)
            for r in system.all_requests()
            if r.first_token_time is not None
        ),
        "events": system.sim.processed_events,
    }


def _run(policy, registry, trace, *, dispatch_index, engine_config=None,
         churn=False, **kwargs):
    system = MultiReplicaSystem.build(
        "chameleon", n_replicas=4, dispatch_policy=policy, seed=5,
        registry=registry, dispatch_index=dispatch_index,
        **({"engine_config": engine_config} if engine_config else {}),
        **kwargs)
    if churn:
        system.sim.schedule_at(4.0, system.cluster.stall_replica, 2, 2.5)
        system.sim.schedule_at(6.0, system.cluster.drain_replica, 1)
        system.sim.schedule_at(9.0, system.cluster.fail_replica, 3)
    system.run_trace(trace.fresh())
    return _fingerprint(system)


@pytest.mark.parametrize("policy", POLICIES)
def test_index_identity_unsaturated(policy, registry):
    trace = _trace(registry, rps=14.0)
    indexed = _run(policy, registry, trace, dispatch_index=True)
    scanned = _run(policy, registry, trace, dispatch_index=False)
    assert indexed == scanned


@pytest.mark.parametrize("policy", POLICIES)
def test_index_identity_saturated(policy, registry):
    # Tiny batch caps force the backpressure saturation filter and the
    # global queue on, exercising every filtered index branch.
    trace = _trace(registry, rps=40.0)
    config = EngineConfig(max_batch_size=4)
    indexed = _run(policy, registry, trace, dispatch_index=True,
                   engine_config=config)
    scanned = _run(policy, registry, trace, dispatch_index=False,
                   engine_config=config)
    assert indexed == scanned


@pytest.mark.parametrize("policy", POLICIES)
def test_index_identity_slo_shed(policy, registry):
    trace = _trace(registry, rps=40.0)
    config = EngineConfig(max_batch_size=4)
    slo = SloPolicy(ttft_deadline=2.0, mode="shed")
    indexed = _run(policy, registry, trace, dispatch_index=True,
                   engine_config=config, slo_policy=slo)
    scanned = _run(policy, registry, trace, dispatch_index=False,
                   engine_config=config, slo_policy=slo)
    assert indexed == scanned


@pytest.mark.parametrize("policy", POLICIES)
def test_index_identity_lifecycle_churn(policy, registry):
    # Stall + drain + crash mid-run: index rebuilds on eligibility changes
    # and the bulk-move resync path must stay identical.
    trace = _trace(registry, rps=30.0)
    config = EngineConfig(max_batch_size=6)
    indexed = _run(policy, registry, trace, dispatch_index=True,
                   engine_config=config, churn=True)
    scanned = _run(policy, registry, trace, dispatch_index=False,
                   engine_config=config, churn=True)
    assert indexed == scanned


@pytest.mark.parametrize("policy", POLICIES)
def test_index_identity_no_backpressure(policy, registry):
    trace = _trace(registry, rps=40.0)
    config = EngineConfig(max_batch_size=4)
    indexed = _run(policy, registry, trace, dispatch_index=True,
                   engine_config=config, backpressure=False)
    scanned = _run(policy, registry, trace, dispatch_index=False,
                   engine_config=config, backpressure=False)
    assert indexed == scanned


@pytest.mark.parametrize("policy", ("least_loaded", "p2c", "token_weighted"))
def test_index_identity_heterogeneous_fleet(policy, registry):
    # Mixed-spec fleets make capability weights non-uniform: the
    # load-comparing indices must stand down (fall back to the scan) and
    # still produce identical runs — this guards the `_index_active` gate.
    trace = _trace(registry, rps=20.0)
    specs = ["a100-80gb", "a40-48gb", "a40-48gb", "a100-24gb"]
    indexed = _run(policy, registry, trace, dispatch_index=True,
                   replica_specs=specs)
    scanned = _run(policy, registry, trace, dispatch_index=False,
                   replica_specs=specs)
    assert indexed == scanned


def test_index_default_on():
    import inspect

    from repro.hardware.cluster import DataParallelCluster
    sig = inspect.signature(DataParallelCluster.__init__)
    assert sig.parameters["dispatch_index"].default is True
