"""Observability: tracer determinism, metrics registry, exporters, CLI.

The two contracts this file pins:

* **Determinism** — a same-seed run exports a byte-identical trace JSON
  and metrics CSV every time (records arrive in simulator event order and
  exporters serialize them canonically).
* **Non-interference** — attaching a tracer or a metrics registry never
  changes what the simulation computes: summaries are identical with and
  without them, and the disabled path is a bare attribute check.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.experiments.report import metrics_markdown
from repro.faults import FaultSchedule
from repro.obs import (
    Counter, Gauge, Histogram, MetricsRegistry, Tracer, dispatcher_tid,
    replica_tid,
)
from repro.obs.export import (
    load_trace, perfetto_payload, slow_trace_report, span_waterfall,
    validate_trace_events, write_metrics, write_perfetto,
)
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.region import RegionConfig, ServingRegion
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def build_system(big_registry, sim, seed=7, n_replicas=2, **kwargs):
    return MultiReplicaSystem.build(
        "chameleon", n_replicas=n_replicas, sim=sim, seed=seed,
        registry=big_registry, **kwargs)


# --------------------------------------------------------------------- #
# Simulator.schedule_periodic
# --------------------------------------------------------------------- #
def test_schedule_periodic_fires_on_the_grid(sim):
    times = []
    sim.schedule_periodic(2.0, lambda: times.append(sim.now), until=10.0)
    sim.run()
    assert times == [2.0, 4.0, 6.0, 8.0, 10.0]


def test_schedule_periodic_stops_at_until(sim):
    times = []
    sim.schedule_periodic(3.0, lambda: times.append(sim.now), until=7.0)
    sim.run()
    assert times == [3.0, 6.0]  # 9.0 would pass the bound
    assert sim.pending_events == 0  # the chain ended; run() could drain


def test_schedule_periodic_past_horizon_is_none(sim):
    assert sim.schedule_periodic(5.0, lambda: None, until=3.0) is None


def test_schedule_periodic_rejects_bad_interval(sim):
    with pytest.raises(ValueError):
        sim.schedule_periodic(0.0, lambda: None, until=10.0)


def test_schedule_periodic_cancel_stops_the_chain(sim):
    times = []
    event = sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                                  until=10.0)
    sim.cancel(event)
    sim.run()
    assert times == []


# --------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------- #
def test_track_id_scheme():
    assert dispatcher_tid() == 1
    assert dispatcher_tid(3) == 4
    assert replica_tid(0, 0) == 1000
    assert replica_tid(1, 7) == 2007


def test_tracer_is_off_by_default(big_registry, sim):
    system = build_system(big_registry, sim)
    assert system.cluster._tracer is None
    assert all(e._tracer is None for e in system.engines)


def test_record_request_builds_the_waterfall():
    class Stamps:
        request_id = 5
        arrival_time = 1.0
        enqueue_time = 2.0
        admit_time = 3.0
        adapter_ready_time = 3.5
        prefill_start_time = 4.0
        first_token_time = 4.5
        finish_time = 6.0
        retry_count = 1
        adapter_id = 9
        tenant_id = None
        slo_class = "gold"

    tracer = Tracer()
    tracer.record_request(Stamps(), tid=1001)
    spans = {s.name: s for s in tracer.spans}
    assert set(spans) == {"queue", "adapter_load", "execute", "prefill",
                          "decode"}
    assert spans["queue"].start == 2.0 and spans["queue"].end == 3.0
    assert spans["adapter_load"].end == 3.5
    assert spans["execute"].duration == 2.0
    assert spans["prefill"].end == spans["decode"].start == 4.5
    assert spans["queue"].args == {"adapter": 9, "slo_class": "gold",
                                   "retries": 1}
    row = tracer.requests[5]
    assert row["ttft"] == 3.5 and row["e2e"] == 5.0 and row["tid"] == 1001


def test_slowest_sorts_by_ttft_with_id_tiebreak():
    class Stamps:
        arrival_time = 0.0
        enqueue_time = admit_time = adapter_ready_time = None
        prefill_start_time = None
        finish_time = None
        retry_count = 0
        adapter_id = tenant_id = slo_class = None

        def __init__(self, rid, first):
            self.request_id = rid
            self.first_token_time = first

    tracer = Tracer()
    for rid, first in [(1, 2.0), (2, 5.0), (3, 5.0), (4, None)]:
        tracer.record_request(Stamps(rid, first), tid=1)
    rows = tracer.slowest(3)
    assert [r["request_id"] for r in rows] == [2, 3, 1]  # unfinished skipped


def test_register_track_first_wins():
    tracer = Tracer()
    tracer.register_track(1, "s0/dispatcher")
    tracer.register_track(1, "imposter")
    assert tracer.tracks[1] == "s0/dispatcher"


# --------------------------------------------------------------------- #
# Determinism and non-interference
# --------------------------------------------------------------------- #
def run_traced(big_registry, trace, out, metrics_path):
    sim = Simulator()
    system = build_system(big_registry, sim)
    tracer = Tracer()
    metrics = MetricsRegistry()
    system.attach_tracer(tracer)
    system.attach_metrics(metrics)
    metrics.install(sim, 5.0, until=30.0)
    system.run_trace(trace.fresh())
    write_perfetto(tracer, out)
    write_metrics(metrics, metrics_path)
    return system.summary()


def test_same_seed_exports_are_byte_identical(big_registry, tiny_trace,
                                              tmp_path):
    a_trace, a_csv = tmp_path / "a.json", tmp_path / "a.csv"
    b_trace, b_csv = tmp_path / "b.json", tmp_path / "b.csv"
    run_traced(big_registry, tiny_trace, a_trace, a_csv)
    run_traced(big_registry, tiny_trace, b_trace, b_csv)
    assert a_trace.read_bytes() == b_trace.read_bytes()
    assert a_csv.read_bytes() == b_csv.read_bytes()


def test_attaching_telemetry_does_not_change_the_run(big_registry,
                                                     tiny_trace, tmp_path):
    plain_sim = Simulator()
    plain = build_system(big_registry, plain_sim)
    plain.run_trace(tiny_trace.fresh())
    traced_summary = run_traced(big_registry, tiny_trace,
                                tmp_path / "t.json", tmp_path / "t.csv")
    assert plain.summary() == traced_summary


# --------------------------------------------------------------------- #
# Region run: full span vocabulary + schema
# --------------------------------------------------------------------- #
@pytest.fixture
def region_trace_payload(big_registry, tmp_path):
    # Heavy enough that the 2x1 fleet queues at the cluster level, so
    # the dispatch span (recorded by the queue-release path) appears.
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=20.0, duration=40.0,
        rng=RngStreams(7).get("trace"), registry=big_registry)
    region = ServingRegion.build(
        "chameleon", n_replicas=1, seed=7, registry=big_registry,
        region=RegionConfig(n_shards=2))
    tracer = Tracer()
    region.attach_tracer(tracer)
    region.run_trace(trace.fresh())
    path = tmp_path / "region.json"
    write_perfetto(tracer, path)
    return tracer, load_trace(path)


def test_region_trace_covers_the_span_vocabulary(region_trace_payload):
    tracer, payload = region_trace_payload
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert {"queue", "dispatch", "adapter_load", "execute"} <= names
    assert "spill" in tracer.instant_names()


def test_region_trace_validates_and_names_tracks(region_trace_payload):
    _, payload = region_trace_payload
    validate_trace_events(payload)
    threads = {e["args"]["name"] for e in payload["traceEvents"]
               if e["ph"] == "M"}
    assert {"s0/dispatcher", "s1/dispatcher", "s0/replica0",
            "s1/replica0"} <= threads


def test_trace_timestamps_are_integer_microseconds(region_trace_payload):
    _, payload = region_trace_payload
    xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert xs and all(
        isinstance(e["ts"], int) and isinstance(e["dur"], int)
        and e["dur"] >= 0 for e in xs)


def test_validate_trace_events_rejects_bad_payloads():
    with pytest.raises(ValueError):
        validate_trace_events({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_trace_events({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x"}]})  # no ts
    with pytest.raises(ValueError):
        validate_trace_events({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 1.5,
             "dur": 0}]})  # float ts


# --------------------------------------------------------------------- #
# Annotation instants from the event-shaping subsystems
# --------------------------------------------------------------------- #
def test_slo_shed_instants_carry_the_policy_args(big_registry, loaded_trace):
    sim = Simulator()
    system = build_system(
        big_registry, sim, n_replicas=1,
        slo_policy=SloPolicy(ttft_deadline=0.2, mode="shed"))
    tracer = Tracer()
    system.attach_tracer(tracer)
    system.run_trace(loaded_trace.fresh())
    sheds = [i for i in tracer.instants if i.name == "slo_shed"]
    assert sheds and sheds[0].args["deadline"] == 0.2
    assert sheds[0].args["mode"] == "shed"
    assert len(sheds) == system.cluster.stats.shed


def test_fault_and_migrate_instants(big_registry, tiny_trace):
    sim = Simulator()
    system = build_system(
        big_registry, sim, n_replicas=2,
        fault_schedule=FaultSchedule.parse("5:crash:1"))
    tracer = Tracer()
    system.attach_tracer(tracer)
    system.run_trace(tiny_trace.fresh())
    names = tracer.instant_names()
    assert "fault" in names and "lifecycle" in names
    fault = next(i for i in tracer.instants if i.name == "fault")
    assert fault.args["kind"] == "crash" and fault.args["replica"] == 1
    assert fault.tid == dispatcher_tid(0)


def test_autoscale_instant_mirrors_the_scale_event(big_registry):
    system = MultiReplicaSystem.build(
        "slora", registry=big_registry, predictor_accuracy=None, seed=0,
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=2))
    tracer = Tracer()
    system.attach_tracer(tracer)
    system.autoscaler._record("scale_out", [1], 0.1, 0.5, 0.9)
    instant = next(i for i in tracer.instants if i.name == "autoscale")
    assert instant.args["action"] == "scale_out"
    assert instant.args["replicas"] == [1]


# --------------------------------------------------------------------- #
# Slow-trace report
# --------------------------------------------------------------------- #
def test_slow_trace_report_renders_waterfalls(big_registry, tiny_trace):
    sim = Simulator()
    system = build_system(big_registry, sim)
    tracer = Tracer()
    system.attach_tracer(tracer)
    system.run_trace(tiny_trace.fresh())
    report = slow_trace_report(tracer, 2)
    assert "slowest 2 requests" in report
    worst = tracer.slowest(1)[0]
    assert f"request {worst['request_id']}" in report
    assert "#" in report  # the bars
    single = span_waterfall(tracer, worst["request_id"])
    assert "execute" in single


# --------------------------------------------------------------------- #
# MetricsRegistry
# --------------------------------------------------------------------- #
def test_counter_gauge_histogram_semantics():
    registry = MetricsRegistry()
    counter = registry.counter("finishes")
    assert registry.counter("finishes") is counter  # idempotent
    counter.inc()
    counter.inc(2.0)
    assert counter.value == 3.0
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    registry.gauge("depth", lambda: 4.0)
    with pytest.raises(ValueError):
        registry.gauge("depth", lambda: 0.0)  # duplicate gauge
    with pytest.raises(ValueError):
        registry.histogram("depth")  # cross-kind name conflict
    histogram = registry.histogram("ttft")
    for value in (0.1, 0.5, 0.3):
        histogram.observe(value)
    assert histogram.percentile(50) == 0.3
    summary = histogram.summary()
    assert summary["count"] == 3 and summary["max"] == 0.5


def test_sample_rows_have_sorted_stable_columns():
    registry = MetricsRegistry()
    registry.counter("b_count").inc()
    registry.gauge("a_gauge", lambda: 1.5)
    row = registry.sample(now=2.0)
    # Counters first, then gauges, each group sorted — the same order
    # column_names() promises, so CSV headers always line up.
    assert list(row) == ["time", "b_count", "a_gauge"]
    assert registry.column_names() == ["time", "b_count", "a_gauge"]
    assert registry.samples == [row]


def test_install_samples_on_the_sim_clock(sim):
    registry = MetricsRegistry()
    fired = []
    registry.gauge("g", lambda: float(len(fired)))
    registry.install(sim, interval=2.0, until=6.0)
    sim.run()
    assert [row["time"] for row in registry.samples] == [2.0, 4.0, 6.0]


def test_metrics_export_csv_json_and_markdown(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(2.0)
    registry.gauge("g", lambda: 0.5)
    registry.histogram("h").observe(1.0)
    registry.sample(now=1.0)
    csv_path, json_path = tmp_path / "m.csv", tmp_path / "m.json"
    write_metrics(registry, csv_path)
    write_metrics(registry, json_path)
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "time,c,g"
    assert lines[1] == "1.0,2.0,0.5"
    payload = json.loads(json_path.read_text())
    assert payload["columns"] == ["time", "c", "g"]
    assert payload["histograms"]["h"]["count"] == 1
    with pytest.raises(ValueError):
        write_metrics(registry, tmp_path / "m.txt")
    rendered = metrics_markdown(payload)
    assert "| time | c | g |" in rendered
    assert "Histograms" in rendered


def test_gauge_and_counter_reject_reuse_across_kinds():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x", lambda: 0.0)


# --------------------------------------------------------------------- #
# CLI smoke
# --------------------------------------------------------------------- #
def test_cli_trace_subcommand_end_to_end(tmp_path, capsys):
    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    code = repro_main([
        "trace", "--replicas", "1", "--rps", "6", "--duration", "20",
        "--seed", "3", "--out", str(out), "--metrics", str(metrics),
        "--slowest", "1"])
    assert code == 0
    payload = load_trace(out)
    validate_trace_events(payload)
    assert json.loads(metrics.read_text())["samples"]
    printed = capsys.readouterr().out
    assert "ui.perfetto.dev" in printed
    assert "slowest 1 requests" in printed
