"""Tests for the offline eviction-weight profiler (§4.2.2)."""

import pytest

from repro.core.tuning import profile_eviction_weights, simplex_grid
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def test_simplex_grid_step_half():
    points = simplex_grid(0.5)
    assert len(points) == 6
    for f, r, s in points:
        assert f + r + s == pytest.approx(1.0)
        assert min(f, r, s) >= 0.0


def test_simplex_grid_counts():
    # step 0.25 -> n=4 -> (n+1)(n+2)/2 = 15 points.
    assert len(simplex_grid(0.25)) == 15


def test_simplex_grid_validates():
    with pytest.raises(ValueError):
        simplex_grid(0.0)
    with pytest.raises(ValueError):
        simplex_grid(1.5)


def test_profile_returns_best_of_candidates(big_registry, rng_streams):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=6.0, duration=20.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    result = profile_eviction_weights(
        trace, big_registry,
        candidates=[(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.45, 0.10, 0.45)],
        warmup=5.0,
    )
    assert len(result.candidates) == 3
    best_latency = min(c.p99_ttft for c in result.candidates)
    assert result.best.p99_ttft == best_latency
    assert result.weights in [c.weights for c in result.candidates]


def test_profile_rejects_empty_candidates(big_registry, rng_streams):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=4.0, duration=10.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    with pytest.raises(ValueError):
        profile_eviction_weights(trace, big_registry, candidates=[])


def test_profile_candidates_record_hit_rates(big_registry, rng_streams):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=6.0, duration=20.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    result = profile_eviction_weights(
        trace, big_registry, candidates=[(0.45, 0.10, 0.45)], warmup=0.0)
    assert 0.0 <= result.best.hit_rate <= 1.0
    assert result.best.mean_ttft > 0.0
