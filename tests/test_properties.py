"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import choose_k_elbow, cluster_cutoffs, kmeans_1d, wcss
from repro.core.quotas import QueueStats, solve_quotas
from repro.core.wrs import WorkloadBounds, WrsParams, compute_wrs, max_possible_wrs
from repro.hardware.gpu import A40_48GB, GpuDevice, MemoryExhausted
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.metrics.summary import percentile, throughput_under_slo
from repro.sim.simulator import Simulator
from repro.workload.distributions import sample_lognormal_lengths, zipf_weights


# --------------------------------------------------------------------- #
# Simulator
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda t=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# --------------------------------------------------------------------- #
# GPU accounting
# --------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.sampled_from(["kv", "adapter", "adapter_cache"]),
                          st.integers(min_value=0, max_value=2 ** 32)),
                max_size=40))
def test_gpu_accounting_never_negative_or_overcommitted(ops):
    dev = GpuDevice(A40_48GB)
    held = {}
    for category, nbytes in ops:
        try:
            dev.reserve(category, nbytes)
            held[category] = held.get(category, 0) + nbytes
        except MemoryExhausted:
            pass
    assert dev.used_bytes <= dev.capacity
    assert dev.free_bytes >= 0
    for category, amount in held.items():
        assert dev.used(category) == amount


# --------------------------------------------------------------------- #
# PCIe conservation
# --------------------------------------------------------------------- #
@given(st.lists(st.integers(min_value=0, max_value=2 ** 28), min_size=1, max_size=30))
def test_pcie_conserves_bytes_and_orders_fifo(sizes):
    sim = Simulator()
    link = PcieLink(sim, PcieSpec())
    finished = []
    for i, size in enumerate(sizes):
        link.submit(size, callback=lambda x, i=i: finished.append(i))
    sim.run()
    assert finished == list(range(len(sizes)))
    assert link.total_bytes_moved == sum(sizes)
    assert link.queue_depth == 0


# --------------------------------------------------------------------- #
# Distributions
# --------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=500),
       st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
def test_zipf_weights_are_a_distribution(n, alpha):
    w = zipf_weights(n, alpha)
    assert w.shape == (n,)
    assert abs(w.sum() - 1.0) < 1e-9
    assert (w >= 0).all()
    assert (np.diff(w) <= 1e-12).all()


@given(st.floats(min_value=1.0, max_value=1e4),
       st.floats(min_value=0.01, max_value=2.0),
       st.integers(min_value=1, max_value=10000))
@settings(max_examples=30)
def test_lognormal_lengths_in_range(mean, sigma, max_len):
    rng = np.random.default_rng(0)
    lengths = sample_lognormal_lengths(rng, mean, sigma, max_len, 200)
    assert (lengths >= 1).all()
    assert (lengths <= max_len).all()


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1),
       st.floats(min_value=0.0, max_value=100.0))
def test_percentile_within_data_range(values, q):
    p = percentile(values, q)
    assert min(values) <= p <= max(values)


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=12),
       st.floats(min_value=0.01, max_value=200.0))
def test_throughput_under_slo_within_load_range(latencies, slo):
    loads = [float(i + 1) for i in range(len(latencies))]
    result = throughput_under_slo(loads, latencies, slo)
    assert 0.0 <= result <= loads[-1]


# --------------------------------------------------------------------- #
# WRS
# --------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=10000),
       st.integers(min_value=1, max_value=10000),
       st.one_of(st.none(), st.integers(min_value=1, max_value=10 ** 10)))
def test_wrs_bounded(inp, out, adapter_bytes):
    bounds = WorkloadBounds(4096, 1024, 10 ** 9)
    wrs = compute_wrs(inp, out, adapter_bytes, bounds)
    assert 0.0 <= wrs <= max_possible_wrs() + 1e-9


@given(st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=1024))
def test_wrs_output_only_matches_fraction(inp, out):
    bounds = WorkloadBounds(4096, 1024, 10 ** 9)
    wrs = compute_wrs(inp, out, None, bounds, WrsParams(mode="output_only"))
    assert wrs == min(1.0, out / 1024)


# --------------------------------------------------------------------- #
# Clustering
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=2, max_size=200),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_kmeans_labels_valid_and_centroids_sorted(values, k):
    centroids, labels = kmeans_1d(values, k)
    assert centroids.size >= 1
    assert (np.diff(centroids) >= -1e-12).all()
    assert labels.shape == (len(values),)
    assert labels.max() < centroids.size
    assert wcss(values, centroids, labels) >= 0.0


@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=1, max_size=200))
@settings(max_examples=40)
def test_choose_k_within_bounds(values):
    k = choose_k_elbow(values, k_max=4)
    assert 1 <= k <= 4


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=2, max_size=6, unique=True))
def test_cutoffs_strictly_between_centroids(centroids):
    cuts = cluster_cutoffs(np.array(centroids))
    ordered = sorted(centroids)
    for i, cut in enumerate(cuts):
        assert ordered[i] <= cut <= ordered[i + 1]


# --------------------------------------------------------------------- #
# Quotas
# --------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.floats(min_value=1.0, max_value=1e4),
                          st.floats(min_value=1e-3, max_value=60.0),
                          st.floats(min_value=0.0, max_value=50.0)),
                min_size=1, max_size=6),
       st.floats(min_value=100.0, max_value=1e6),
       st.floats(min_value=0.1, max_value=30.0))
@settings(max_examples=60)
def test_quotas_nonnegative_and_never_exceed_total(raw_stats, total, slo):
    stats = [QueueStats(s, d, lam) for s, d, lam in raw_stats]
    quotas = solve_quotas(stats, total, slo)
    assert len(quotas) == len(stats)
    assert all(q >= 0 for q in quotas)
    assert sum(quotas) <= total * (1 + 1e-9)
