"""Tests for the system presets: wiring and end-to-end runnability."""

import pytest

from repro.core.cache import ChameleonCacheManager
from repro.core.eviction import (
    ChameleonScorePolicy,
    FairSharePolicy,
    GdsfPolicy,
    LruPolicy,
)
from repro.core.mlq import MlqScheduler
from repro.hardware.cluster import TensorParallelGroup
from repro.hardware.gpu import A100_80GB, GB
from repro.llm.model import LLAMA_13B
from repro.serving.adapter_manager import SloraAdapterManager
from repro.serving.schedulers import FifoScheduler, SjfScheduler
from repro.systems import PRESETS, build_system
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


@pytest.mark.parametrize("preset", PRESETS)
def test_every_preset_builds_and_runs(preset, big_registry, rng_streams):
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=4.0, duration=10.0,
                             rng=rng_streams.get("trace"), registry=big_registry)
    system = build_system(preset, registry=big_registry, seed=0)
    system.run_trace(trace.fresh())
    summary = system.summary()
    assert summary.n_requests == len(trace)
    assert summary.p99_ttft > 0


def test_slora_wiring(big_registry):
    system = build_system("slora", registry=big_registry)
    assert isinstance(system.scheduler, FifoScheduler)
    assert isinstance(system.adapter_manager, SloraAdapterManager)


def test_slora_sjf_wiring(big_registry):
    system = build_system("slora_sjf", registry=big_registry)
    assert isinstance(system.scheduler, SjfScheduler)


def test_slora_chunked_sets_chunk_size(big_registry):
    system = build_system("slora_chunked", registry=big_registry)
    assert system.engine.config.chunk_size is not None


def test_slora_chunked_preserves_caller_engine_config(big_registry):
    """Regression: the chunked rebuild copied only 4 of 8 EngineConfig
    fields, silently resetting the caller's other knobs."""
    from repro.serving.engine import EngineConfig
    from repro.systems import DEFAULT_CHUNK_SIZE

    custom = EngineConfig(
        prefill_token_budget=1234,
        record_batch_occupancy=True,
        load_stall_bandwidth=None,
        max_batch_size=99,
    )
    system = build_system("slora_chunked", registry=big_registry,
                          engine_config=custom)
    config = system.engine.config
    assert config.chunk_size == DEFAULT_CHUNK_SIZE
    assert config.prefill_token_budget == 1234
    assert config.record_batch_occupancy is True
    assert config.load_stall_bandwidth is None
    assert config.max_batch_size == 99


def test_chameleon_wiring(big_registry):
    system = build_system("chameleon", registry=big_registry)
    assert isinstance(system.scheduler, MlqScheduler)
    assert isinstance(system.adapter_manager, ChameleonCacheManager)
    assert isinstance(system.adapter_manager.policy, ChameleonScorePolicy)
    assert not isinstance(system.adapter_manager.policy, FairSharePolicy)


def test_ablation_wiring(big_registry):
    nocache = build_system("chameleon_nocache", registry=big_registry)
    assert isinstance(nocache.scheduler, MlqScheduler)
    assert isinstance(nocache.adapter_manager, SloraAdapterManager)
    nosched = build_system("chameleon_nosched", registry=big_registry)
    assert isinstance(nosched.scheduler, FifoScheduler)
    assert isinstance(nosched.adapter_manager, ChameleonCacheManager)


def test_cache_policy_presets(big_registry):
    assert isinstance(
        build_system("chameleon_lru", registry=big_registry).adapter_manager.policy,
        LruPolicy)
    assert isinstance(
        build_system("chameleon_fairshare", registry=big_registry).adapter_manager.policy,
        FairSharePolicy)
    assert isinstance(
        build_system("chameleon_gdsf", registry=big_registry).adapter_manager.policy,
        GdsfPolicy)


def test_prefetch_preset_attaches_prefetcher(big_registry):
    system = build_system("chameleon_prefetch", registry=big_registry)
    assert system.prefetcher is not None
    assert system.adapter_manager.prefetcher is system.prefetcher


def test_static_preset(big_registry):
    system = build_system("chameleon_static", registry=big_registry)
    assert system.scheduler.config.static_k == 4
    assert system.scheduler.n_queues == 4


def test_outputonly_preset(big_registry):
    system = build_system("chameleon_outputonly", registry=big_registry)
    assert system.scheduler.config.wrs_params.mode == "output_only"


def test_unknown_preset_rejected(big_registry):
    with pytest.raises(ValueError):
        build_system("bogus", registry=big_registry)


def test_predictorless_mlq_rejected(big_registry):
    with pytest.raises(ValueError):
        build_system("chameleon", registry=big_registry, predictor_accuracy=None)


def test_predictorless_fifo_allowed(big_registry):
    system = build_system("slora", registry=big_registry, predictor_accuracy=None)
    assert system.predictor is None


def test_tp_build_uses_group(big_registry):
    system = build_system("chameleon", registry=big_registry,
                          gpu=A100_80GB, tp_degree=4)
    assert isinstance(system.gpu, TensorParallelGroup)
    assert system.gpu.capacity == 4 * 80 * GB
    assert system.cost_model.compute_speedup > 1.0


def test_tp_with_memory_override_rejected(big_registry):
    with pytest.raises(ValueError):
        build_system("chameleon", registry=big_registry, tp_degree=2,
                     gpu_memory_bytes=10 * GB)


def test_memory_override(big_registry):
    system = build_system("slora", registry=big_registry,
                          gpu=A100_80GB, gpu_memory_bytes=24 * GB)
    assert system.gpu.capacity == 24 * GB


def test_other_models(rng_streams):
    from repro.adapters.registry import AdapterRegistry

    registry = AdapterRegistry.build(LLAMA_13B, 20)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=2.0, duration=10.0,
                             rng=rng_streams.get("trace"), registry=registry)
    system = build_system("chameleon", model=LLAMA_13B, gpu=A100_80GB,
                          registry=registry)
    system.run_trace(trace.fresh())
    assert system.summary().n_requests == len(trace)


def test_registry_built_when_missing():
    system = build_system("slora", n_adapters=25)
    assert len(system.registry) == 25


# ----------------------------------------------------------------------- #
# GPU-zoo name resolution (heterogeneous replica specs, CLI fleets)
# ----------------------------------------------------------------------- #
def test_build_system_accepts_gpu_name(big_registry):
    system = build_system("slora", gpu="a100-80gb", registry=big_registry,
                          predictor_accuracy=None)
    assert system.gpu.spec.name == "a100-80gb"
    assert system.cost_model.gpu.name == "a100-80gb"


def test_build_system_rejects_unknown_gpu_name(big_registry):
    with pytest.raises(ValueError):
        build_system("slora", gpu="not-a-gpu", registry=big_registry,
                     predictor_accuracy=None)


def test_resolve_gpu_passthrough_and_lookup():
    from repro.hardware.gpu import A40_48GB
    from repro.systems import resolve_gpu

    assert resolve_gpu(A40_48GB) is A40_48GB
    assert resolve_gpu("a40-48gb") is A40_48GB
    with pytest.raises(ValueError):
        resolve_gpu("h100-999gb")
