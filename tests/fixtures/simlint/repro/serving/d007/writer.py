"""Fixture: the writer half of the summary().extra contract (D007)."""


def summarize(summary):
    summary.extra.update(alpha_rate=1.0)
    summary.extra["beta_count"] = 2
    return summary
