"""Fixture: the reader half — one drifted key among live ones (D007)."""


def consume(summary):
    a = summary.extra["alpha_rate"]
    b = summary.extra.get("beta_count", 0)
    ghost = summary.extra["never_written_key"]
    return a, b, ghost
