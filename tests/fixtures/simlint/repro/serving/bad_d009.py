"""Fixture: file writes from a runtime module (D009, in scope)."""

from pathlib import Path


def dump_state(path: str, payload: str) -> None:
    with open(path, "w") as fh:
        fh.write(payload)


def append_log(path: str, line: str) -> None:
    with open(path, mode="a") as fh:
        fh.write(line)


def save(path: Path, payload: str) -> None:
    path.write_text(payload)


def read_back(path: str) -> str:
    with open(path) as fh:  # read mode: not a violation
        return fh.read()
