"""Fixture: unordered iteration on the simulation path (D003, in scope)."""


def drain(pending: set) -> list:
    out = []
    for item in {1, 2, 3}:
        out.append(item)
    out.append(next(iter(pending)))
    out.extend(list(pending))
    state = {"a": 1}
    out.append(state.popitem())
    return out
