"""Fixture: file writes outside the D009 runtime scope (no violation)."""


def write_report(path: str, table: str) -> None:
    with open(path, "w") as fh:
        fh.write(table)
