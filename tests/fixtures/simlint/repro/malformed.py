"""Fixture: malformed suppressions are themselves violations (D000)."""

import time


def stamp() -> float:
    return time.time()  # simlint: ignore[D002]


def stamp_again() -> float:
    return time.time()  # simlint: ignore
