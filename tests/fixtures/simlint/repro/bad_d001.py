"""Fixture: ambient RNG outside the stream factory (D001 true positives)."""

import random

import numpy as np


def roll() -> float:
    return random.random()


def make_gen():
    return np.random.default_rng(0)
