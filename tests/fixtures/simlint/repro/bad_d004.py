"""Fixture: mutable default arguments (D004 true positives)."""


def enqueue(item, queue=[]):
    queue.append(item)
    return queue


def tally(counts={}):
    return counts
