"""Fixture: wall-clock read on the simulation path (D002 true positive)."""

import time


def stamp() -> float:
    return time.time()
