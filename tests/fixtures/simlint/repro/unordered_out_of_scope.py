"""Fixture: identical constructs OUTSIDE the D003 scope (reporting layer)."""


def drain(pending: set) -> list:
    out = []
    for item in {1, 2, 3}:
        out.append(item)
    out.append(next(iter(pending)))
    out.extend(list(pending))
    state = {"a": 1}
    out.append(state.popitem())
    return out
