"""Fixture: a disciplined module — every rule's true-negative forms."""

from repro.sim.rng import RngStreams


def sample(streams: RngStreams) -> float:
    gen = streams.get("trace")
    return float(gen.normal())


def ordered(pending: set) -> list:
    return sorted(pending)


def lowest(pending: set) -> int:
    return min(pending)


def scoped(value) -> int:
    result: int = value  # type: ignore[assignment]
    return result
