"""Fixture: blanket mypy suppression without an error code (D008)."""


def coerce(value):
    result = value  # type: ignore
    return result
