"""Fixture: id()-based ordering (D005 true positives)."""


def stable_order(handles):
    return sorted(handles, key=id)


def pick(a, b):
    if id(a) < id(b):
        return a
    return b
