"""Fixture: unregistered / non-literal stream names (D006 true positives)."""

from repro.sim.rng import RngStreams

streams = RngStreams(0)


def draw(name: str) -> float:
    good = streams.get("trace")  # registered: not flagged
    unregistered = streams.get("not-a-registered-stream")
    dynamic = streams.get(name)
    return good.random() + unregistered.random() + dynamic.random()
