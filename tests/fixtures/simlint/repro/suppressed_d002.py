"""Fixture: a justified per-line suppression silences the violation."""

import time


def stamp() -> float:
    return time.time()  # simlint: ignore[D002] -- fixture: exercises the suppression path
