"""Tests for adapter residency management: S-LoRA baseline semantics."""

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import A40_48GB, GB, GpuDevice
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.model import LLAMA_7B
from repro.serving.adapter_manager import AdapterState, SloraAdapterManager
from repro.sim.simulator import Simulator
from repro.workload.request import Request


@pytest.fixture
def env():
    sim = Simulator()
    gpu = GpuDevice(A40_48GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 20)
    mgr = SloraAdapterManager(sim, gpu, link, registry)
    return sim, gpu, link, registry, mgr


def _request(adapter_id, rid=0):
    return Request(request_id=rid, arrival_time=0.0, input_tokens=10,
                   output_tokens=5, adapter_id=adapter_id)


def test_acquire_missing_starts_load(env):
    sim, gpu, link, registry, mgr = env
    state = mgr.acquire(0)
    assert state is AdapterState.LOADING
    assert mgr.is_loading(0)
    assert gpu.used("adapter") == registry.get(0).size_bytes
    assert mgr.stats.misses == 1
    sim.run()
    assert mgr.is_resident(0)


def test_ready_callback_fires_on_completion(env):
    sim, gpu, link, registry, mgr = env
    ready = []
    mgr.on_ready(ready.append)
    mgr.acquire(3)
    sim.run()
    assert ready == [3]


def test_acquire_resident_is_hit(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.set_queued_needed({0})   # keep it around after release
    mgr.release(0)
    state = mgr.acquire(0)
    assert state is AdapterState.RESIDENT
    assert mgr.stats.hits == 1


def test_acquire_inflight_is_overlapped(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    state = mgr.acquire(0)
    assert state is AdapterState.LOADING
    assert mgr.stats.overlapped == 1
    assert mgr.refcount(0) == 2


def test_slora_discards_idle_adapter(env):
    """Baseline semantics: refcount 0 and not queued-needed -> discard."""
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.release(0)
    assert not mgr.is_resident(0)
    assert gpu.used("adapter") == 0
    assert gpu.used("adapter_cache") == 0


def test_slora_retains_adapter_needed_by_queue(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.set_queued_needed({0})
    mgr.release(0)
    assert mgr.is_resident(0)
    assert gpu.used("adapter_cache") == registry.get(0).size_bytes


def test_release_unpinned_raises(env):
    sim, gpu, link, registry, mgr = env
    with pytest.raises(RuntimeError):
        mgr.release(0)


def test_prefetch_on_arrival_starts_load(env):
    sim, gpu, link, registry, mgr = env
    mgr.on_request_arrival(_request(adapter_id=5))
    assert mgr.is_loading(5)


def test_prefetch_never_evicts(env):
    sim, gpu, link, registry, mgr = env
    # Fill the GPU so nothing fits.
    gpu.reserve("kv", gpu.free_bytes)
    assert mgr.prefetch(5) is False
    assert not mgr.is_loading(5)


def test_base_request_arrival_noop(env):
    sim, gpu, link, registry, mgr = env
    mgr.on_request_arrival(_request(adapter_id=None))
    assert gpu.used("adapter") == 0


def test_make_room_evicts_lru_first(env):
    sim, gpu, link, registry, mgr = env
    for aid in (0, 1):
        mgr.acquire(aid)
    sim.run()
    mgr.set_queued_needed({0, 1})
    mgr.entries[0].last_used = 1.0
    mgr.entries[1].last_used = 2.0
    mgr.release(0)
    mgr.release(1)
    gpu.reserve("kv", gpu.free_bytes)  # memory pressure
    freed = mgr.make_room(registry.get(0).size_bytes)
    assert freed
    assert not mgr.is_resident(0)   # LRU victim
    assert mgr.is_resident(1)


def test_make_room_never_evicts_pinned(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    gpu.reserve("kv", gpu.free_bytes)
    assert mgr.make_room(1) is False
    assert mgr.is_resident(0)


def test_make_room_trivially_true_when_free(env):
    sim, gpu, link, registry, mgr = env
    assert mgr.make_room(GB) is True


def test_load_completing_with_zero_refcount_discarded(env):
    """A prefetch whose requester vanished: baseline discards on completion."""
    sim, gpu, link, registry, mgr = env
    mgr.prefetch(4)
    sim.run()
    assert not mgr.is_resident(4)
    assert gpu.used_bytes == 0


def test_hit_rate_statistic(env):
    sim, gpu, link, registry, mgr = env
    mgr.acquire(0)
    sim.run()
    mgr.set_queued_needed({0})
    mgr.release(0)
    mgr.acquire(0)
    assert mgr.stats.hit_rate == pytest.approx(0.5)
