"""Differential tests across dispatch policies: every policy run on the
same seeded trace must complete the identical request set, and dispatch
accounting must conserve arrivals at every point — mid-run included."""

import pytest

from repro.adapters.registry import AdapterRegistry
from repro.hardware.cluster import DataParallelCluster
from repro.llm.model import LLAMA_7B
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.request import Request
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


@pytest.fixture(scope="module")
def diff_setup():
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=12.0, duration=20.0,
        rng=RngStreams(9).get("trace"), registry=registry)
    return registry, trace


def _run(policy, registry, trace, **kwargs):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy=policy,
        registry=registry, seed=5, **kwargs)
    cluster.run_trace(trace.fresh())
    return cluster


@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
def test_policy_completes_the_full_trace(policy, diff_setup):
    registry, trace = diff_setup
    cluster = _run(policy, registry, trace)
    done_ids = sorted(r.request_id for r in cluster.all_requests() if r.finished)
    assert done_ids == sorted(r.request_id for r in trace.requests)
    # Accounting identity: everything dispatched, nothing left in the queue.
    assert cluster.cluster.stats.dispatched + cluster.cluster.queue_len() \
        == len(trace)


def test_all_policies_complete_identical_request_sets(diff_setup):
    registry, trace = diff_setup
    completed = {
        policy: frozenset(
            r.request_id
            for r in _run(policy, registry, trace).all_requests() if r.finished)
        for policy in DataParallelCluster.POLICIES
    }
    reference = completed["round_robin"]
    assert all(ids == reference for ids in completed.values())


@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
def test_accounting_identity_holds_mid_run(policy, diff_setup):
    """dispatched + queue_len == arrivals, even while a backlogged run is
    stopped at a horizon with requests still in the global queue."""
    registry, _ = diff_setup
    burst = [
        Request(request_id=i, arrival_time=0.001 * i,
                input_tokens=300, output_tokens=300)
        for i in range(12)
    ]
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=2, dispatch_policy=policy,
        registry=registry, seed=5,
        engine_config=EngineConfig(max_batch_size=2))
    cluster.run_trace(burst, horizon=0.5)
    stats = cluster.cluster.stats
    assert cluster.cluster.queue_len() > 0  # genuinely stopped mid-backlog
    assert stats.dispatched + cluster.cluster.queue_len() == len(burst)
    assert len(cluster.all_requests()) == len(burst)
