"""Tests for the FIFO and SJF baseline schedulers."""

import pytest

from repro.serving.admission import AdmitResult
from repro.serving.schedulers import FifoScheduler, SjfScheduler
from repro.workload.request import Request


class FakeContext:
    """Admission stub: admits everything until a scripted refusal."""

    def __init__(self, now=0.0, deny=frozenset(), deny_result=AdmitResult.NO_MEMORY):
        self.now = now
        self.deny = set(deny)
        self.deny_result = deny_result
        self.admitted = []

    def try_admit(self, request):
        if request.request_id in self.deny:
            return self.deny_result
        self.admitted.append(request)
        return AdmitResult.ADMITTED


def _req(rid, predicted=None, adapter_id=None, enq=0.0):
    r = Request(request_id=rid, arrival_time=0.0, input_tokens=10,
                output_tokens=5, adapter_id=adapter_id)
    r.predicted_output_tokens = predicted
    r.enqueue_time = enq
    return r


def test_fifo_admits_in_arrival_order():
    sched = FifoScheduler()
    reqs = [_req(i) for i in range(3)]
    for r in reqs:
        sched.enqueue(r, 0.0)
    ctx = FakeContext()
    sched.select(ctx)
    assert [r.request_id for r in ctx.admitted] == [0, 1, 2]
    assert sched.queue_len() == 0


def test_fifo_strict_head_of_line_blocking():
    """§3.3: if the head does not fit, nothing behind it is tried."""
    sched = FifoScheduler()
    for i in range(3):
        sched.enqueue(_req(i), 0.0)
    ctx = FakeContext(deny={0})
    sched.select(ctx)
    assert ctx.admitted == []
    assert sched.queue_len() == 3


def test_fifo_partial_admission_stops_at_block():
    sched = FifoScheduler()
    for i in range(4):
        sched.enqueue(_req(i), 0.0)
    ctx = FakeContext(deny={2})
    sched.select(ctx)
    assert [r.request_id for r in ctx.admitted] == [0, 1]
    assert sched.queue_len() == 2


def test_fifo_requeue_front():
    sched = FifoScheduler()
    sched.enqueue(_req(0), 0.0)
    sched.requeue_front(_req(9), 0.0)
    ctx = FakeContext()
    sched.select(ctx)
    assert [r.request_id for r in ctx.admitted] == [9, 0]


def test_sjf_orders_by_predicted_output():
    sched = SjfScheduler()
    for rid, pred in [(0, 500), (1, 5), (2, 100)]:
        sched.enqueue(_req(rid, predicted=pred), 0.0)
    ctx = FakeContext()
    sched.select(ctx)
    assert [r.request_id for r in ctx.admitted] == [1, 2, 0]


def test_sjf_requires_predictions():
    sched = SjfScheduler()
    sched.enqueue(_req(0, predicted=None), 0.0)
    with pytest.raises(RuntimeError):
        sched.select(FakeContext())


def test_sjf_starves_long_request_without_aging():
    sched = SjfScheduler(aging_rate=0.0)
    sched.enqueue(_req(0, predicted=1000, enq=0.0), 0.0)
    sched.enqueue(_req(1, predicted=5, enq=100.0), 100.0)
    ctx = FakeContext(now=100.0, deny={0})
    sched.select(ctx)
    # The short request jumps the long one even after the long waited 100 s.
    assert [r.request_id for r in ctx.admitted] == [1]


def test_sjf_aging_eventually_promotes_long_request():
    sched = SjfScheduler(aging_rate=10.0)
    sched.enqueue(_req(0, predicted=1000, enq=0.0), 0.0)
    sched.enqueue(_req(1, predicted=5, enq=200.0), 200.0)
    ctx = FakeContext(now=200.0)
    sched.select(ctx)
    # After 200 s the long request's effective priority (1000 - 2000) wins.
    assert [r.request_id for r in ctx.admitted] == [0, 1]


def test_sjf_negative_aging_rejected():
    with pytest.raises(ValueError):
        SjfScheduler(aging_rate=-1.0)


def test_queued_adapter_ids_union():
    sched = FifoScheduler()
    sched.enqueue(_req(0, adapter_id=3), 0.0)
    sched.enqueue(_req(1, adapter_id=7), 0.0)
    sched.enqueue(_req(2, adapter_id=None), 0.0)
    assert sched.queued_adapter_ids() == {3, 7}


def test_on_finish_default_noop():
    sched = FifoScheduler()
    sched.on_finish(_req(0), 1.0)  # must not raise
