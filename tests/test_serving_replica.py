"""Tests for the data-parallel multi-replica system (§4.4)."""

import pytest

from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.workload.request import Request
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


@pytest.fixture
def cluster(big_registry):
    return MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=big_registry, seed=0)


@pytest.fixture
def dp_trace(big_registry, rng_streams):
    return synthesize_trace(SPLITWISE_PROFILE, rps=15.0, duration=30.0,
                            rng=rng_streams.get("trace"), registry=big_registry)


def test_build_shares_one_clock(cluster):
    assert len(cluster.replicas) == 3
    sims = {id(system.sim) for system in cluster.replicas}
    assert sims == {id(cluster.sim)}


def test_all_requests_complete(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    done = cluster.all_requests()
    assert len(done) == len(dp_trace)
    assert all(r.finished for r in done)


def test_load_spread_across_replicas(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    counts = cluster.per_replica_counts()
    assert len(counts) == 3
    assert min(counts) > 0
    # Least-loaded keeps the spread reasonable.
    assert max(counts) < 3 * min(counts)


def test_summary_aggregates(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    summary = cluster.summary()
    assert summary.n_requests == len(dp_trace)
    assert summary.p99_ttft > 0
    assert 0.0 <= cluster.mean_hit_rate() <= 1.0


def test_adapter_affinity_routing(big_registry, dp_trace):
    affinity = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy="adapter_affinity",
        registry=big_registry, seed=0)
    affinity.run_trace(dp_trace.fresh())
    rr = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy="round_robin",
        registry=big_registry, seed=0)
    rr.run_trace(dp_trace.fresh())
    assert affinity.mean_hit_rate() >= rr.mean_hit_rate() - 0.02


def test_rejects_reused_requests(cluster, dp_trace):
    requests = dp_trace.fresh()
    cluster.run_trace(requests)
    other = MultiReplicaSystem.build("slora", n_replicas=2, seed=0)
    with pytest.raises(ValueError):
        other.run_trace(requests)


def test_rejects_zero_replicas():
    with pytest.raises(ValueError):
        MultiReplicaSystem.build("slora", n_replicas=0)


# --------------------------------------------------------------------- #
# Per-replica RNG isolation
# --------------------------------------------------------------------- #
def test_replica_seeds_are_derived_not_shared(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=big_registry, seed=7)
    assert [system.rng.seed for system in cluster.replicas] == [7, 8, 9]


def test_replica_rng_streams_differ(big_registry):
    """Regression: a shared seed made predictor errors perfectly correlated
    across replicas, biasing every DP experiment."""
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=big_registry, seed=0)
    draws = [system.rng.get("predictor").random() for system in cluster.replicas]
    assert len(set(draws)) == len(draws)


def test_same_seed_is_deterministic(big_registry, dp_trace):
    def run_once():
        cluster = MultiReplicaSystem.build(
            "chameleon", n_replicas=3, dispatch_policy="p2c",
            registry=big_registry, seed=3)
        cluster.run_trace(dp_trace.fresh())
        return cluster.summary(), cluster.per_replica_counts()

    summary_a, counts_a = run_once()
    summary_b, counts_b = run_once()
    assert counts_a == counts_b
    assert summary_a.p99_ttft == summary_b.p99_ttft
    assert summary_a.p50_e2e == summary_b.p50_e2e
    assert summary_a.extra == summary_b.extra


# --------------------------------------------------------------------- #
# Dispatch-policy behaviour on skewed traces
# --------------------------------------------------------------------- #
def _alternating_burst(n=8, huge=(2000, 200), tiny=(20, 2)):
    """Huge and tiny requests arriving together: count and token load clash."""
    requests = []
    for i in range(n):
        inp, out = huge if i % 2 == 0 else tiny
        requests.append(Request(request_id=i, arrival_time=0.0,
                                input_tokens=inp, output_tokens=out))
    return requests


def _per_replica_token_totals(cluster):
    return [
        sum(r.input_tokens + r.output_tokens for r in engine.all_requests)
        for engine in cluster.engines
    ]


def test_token_weighted_balances_size_skew_better_than_jsq():
    def run_policy(policy):
        cluster = MultiReplicaSystem.build(
            "slora", n_replicas=2, dispatch_policy=policy,
            predictor_accuracy=None, seed=0)
        cluster.run_trace(_alternating_burst())
        totals = _per_replica_token_totals(cluster)
        return max(totals) / min(totals)

    # JSQ by request count pairs the huge requests onto one replica; the
    # token-weighted dispatcher splits them.
    assert run_policy("token_weighted") < run_policy("least_loaded")


def test_p2c_balances_a_skewed_trace(big_registry, dp_trace):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy="p2c",
        registry=big_registry, seed=0)
    cluster.run_trace(dp_trace.fresh())
    counts = cluster.per_replica_counts()
    assert min(counts) > 0
    assert cluster.load_imbalance() < 1.5


# --------------------------------------------------------------------- #
# Bounded adapter affinity on a hot-adapter trace
# --------------------------------------------------------------------- #
def _hot_adapter_trace(n=240, hot_fraction=0.8, spacing=0.1):
    """A skewed stream: most requests hit one hot adapter."""
    requests = []
    for i in range(n):
        adapter_id = 0 if i % 5 != 4 else 1 + (i // 5) % 19
        if hot_fraction >= 1.0:
            adapter_id = 0
        requests.append(Request(
            request_id=i, arrival_time=i * spacing,
            input_tokens=200, output_tokens=40, adapter_id=adapter_id))
    return requests


def test_bounded_affinity_spills_and_keeps_hit_rate(big_registry):
    def run_policy(policy):
        cluster = MultiReplicaSystem.build(
            "chameleon", n_replicas=4, dispatch_policy=policy,
            registry=big_registry, seed=0)
        cluster.run_trace(_hot_adapter_trace())
        return cluster

    bounded = run_policy("bounded_affinity")
    unbounded = run_policy("adapter_affinity")
    jsq = run_policy("least_loaded")

    # The unbounded variant piles the hot adapter onto few replicas; the
    # spill threshold restores balance...
    assert bounded.load_imbalance() < unbounded.load_imbalance()
    assert bounded.cluster.stats.spills > 0
    # ...without giving up the cache benefit of affinity routing.
    assert bounded.aggregate_hit_rate() >= jsq.aggregate_hit_rate()


# --------------------------------------------------------------------- #
# Global admission queue (backpressure) end to end
# --------------------------------------------------------------------- #
def test_backpressure_queues_and_completes(big_registry):
    burst = [
        Request(request_id=i, arrival_time=0.001 * i,
                input_tokens=300, output_tokens=30)
        for i in range(12)
    ]
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry, seed=0,
        predictor_accuracy=None,
        engine_config=EngineConfig(max_batch_size=2))
    cluster.run_trace(burst)
    assert all(r.finished for r in cluster.all_requests())
    assert len(cluster.all_requests()) == len(burst)
    # 4 slots existed; the rest waited in the global queue.
    assert cluster.cluster.stats.queued == 8
    delays = cluster.dispatch_queue_delays()
    assert max(delays) > 0.0
    summary = cluster.summary()
    assert summary.extra["p99_dispatch_queue_delay"] > 0.0
    assert summary.extra["cluster_queued"] == 8


def test_horizon_does_not_lose_queued_arrivals(big_registry):
    """Regression: arrivals still in the global queue when a horizon stops
    a backlogged run must stay visible in all_requests()/summary()."""
    burst = [
        Request(request_id=i, arrival_time=0.001 * i,
                input_tokens=300, output_tokens=300)
        for i in range(12)
    ]
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry, seed=0,
        predictor_accuracy=None,
        engine_config=EngineConfig(max_batch_size=2))
    cluster.run_trace(burst, horizon=0.5)
    assert len(cluster.all_requests()) == len(burst)
    assert cluster.cluster.queue_len() > 0
    assert cluster.summary().n_requests == sum(
        1 for r in cluster.all_requests() if r.finished)


def test_summary_extra_fields(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    extra = cluster.summary().extra
    assert len(extra["per_replica_counts"]) == 3
    assert extra["load_imbalance"] >= 1.0
    assert 0.0 <= extra["aggregate_hit_rate"] <= 1.0
    assert extra["p99_dispatch_queue_delay"] >= 0.0


def test_aggregate_hit_rate_is_lookup_weighted(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    stats = [system.adapter_manager.stats for system in cluster.replicas]
    hits = sum(s.hits for s in stats)
    lookups = sum(s.hits + s.misses + s.overlapped for s in stats)
    assert cluster.aggregate_hit_rate() == pytest.approx(hits / lookups)


# --------------------------------------------------------------------- #
# summary().extra math against hand-computed values
# --------------------------------------------------------------------- #
def _tiny_burst(n, spacing=0.0):
    return [
        Request(request_id=i, arrival_time=i * spacing,
                input_tokens=50, output_tokens=2)
        for i in range(n)
    ]


def test_load_imbalance_hand_computed(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, dispatch_policy="round_robin",
        registry=big_registry, predictor_accuracy=None, seed=0)
    cluster.run_trace(_tiny_burst(3, spacing=0.5))
    counts = cluster.per_replica_counts()
    assert sorted(counts) == [1, 2]
    # max/mean = 2 / 1.5 = 4/3 exactly.
    assert cluster.summary().extra["load_imbalance"] == pytest.approx(4 / 3)
    assert cluster.load_imbalance() == pytest.approx(4 / 3)


def test_aggregate_hit_rate_hand_computed_weighting(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", n_replicas=2, registry=big_registry, seed=0)
    stats0 = cluster.replicas[0].adapter_manager.stats
    stats1 = cluster.replicas[1].adapter_manager.stats
    stats0.hits, stats0.misses, stats0.overlapped = 3, 1, 0   # rate 0.75, 4 lookups
    stats1.hits, stats1.misses, stats1.overlapped = 0, 1, 0   # rate 0.00, 1 lookup
    # Lookup-weighted: (3+0) / (4+1) = 0.6, not the unweighted mean 0.375.
    assert cluster.aggregate_hit_rate() == pytest.approx(0.6)
    assert cluster.mean_hit_rate() == pytest.approx((0.75 + 0.0) / 2)
    assert cluster.summary().extra["aggregate_hit_rate"] == pytest.approx(0.6)


def test_dispatch_queue_delay_percentiles_hand_computed(big_registry):
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0)
    cluster.run_trace(_tiny_burst(4, spacing=0.5))
    done = [r for r in cluster.all_requests() if r.finished]
    assert len(done) == 4
    for request, delay in zip(sorted(done, key=lambda r: r.request_id),
                              (0.0, 0.0, 2.0, 4.0)):
        request.dispatch_queue_delay = delay
    extra = cluster.summary().extra
    # np.percentile with linear interpolation over [0, 0, 2, 4]:
    # p50 -> index 1.5 -> 1.0; p99 -> index 2.97 -> 2 + 0.97*2 = 3.94.
    assert extra["p50_dispatch_queue_delay"] == pytest.approx(1.0)
    assert extra["p99_dispatch_queue_delay"] == pytest.approx(3.94)


def test_slo_summary_fields_hand_computed(big_registry):
    from repro.serving.admission import SloPolicy

    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0,
        slo_policy=SloPolicy(ttft_deadline=100.0))
    cluster.run_trace(_tiny_burst(4, spacing=0.5))
    summary = cluster.summary(duration=10.0)
    extra = summary.extra
    # An unloaded run beats a 100s deadline everywhere: no sheds, full
    # attainment, goodput = 4 completions over the stated 10s window.
    assert extra["cluster_shed"] == 0
    assert extra["shed_rate"] == 0.0
    assert extra["cluster_slo_attainment"] == 1.0
    assert extra["goodput_rps"] == pytest.approx(0.4)
    # Without an explicit duration the span is the last finish time.
    extra2 = cluster.summary().extra
    last_finish = max(r.finish_time for r in cluster.all_requests())
    assert extra2["goodput_rps"] == pytest.approx(4 / last_finish)


def test_slo_attainment_counts_shed_against(big_registry):
    from repro.serving.admission import SloPolicy
    from repro.serving.engine import EngineConfig as EC

    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0,
        slo_policy=SloPolicy(ttft_deadline=0.05, mode="shed"),
        engine_config=EC(max_batch_size=1))
    # Spaced arrivals with varied lengths: finish events establish the
    # wait estimator while the cluster is still overloaded, so later
    # arrivals are shed.
    burst = [
        Request(request_id=i, arrival_time=0.25 * i,
                input_tokens=500, output_tokens=20 + (i % 4) * 15)
        for i in range(16)
    ]
    cluster.run_trace(burst)
    extra = cluster.summary().extra
    shed = extra["cluster_shed"]
    assert shed > 0
    assert extra["shed_rate"] == pytest.approx(shed / 16)
    done = [r for r in cluster.all_requests() if r.finished]
    attained = [r for r in done if r.ttft <= 0.05]
    assert extra["cluster_slo_attainment"] == pytest.approx(len(attained) / 16)
    assert len(cluster.all_requests()) == 16  # shed arrivals stay visible


# --------------------------------------------------------------------- #
# Heterogeneous replica specs
# --------------------------------------------------------------------- #
def test_replica_specs_build_mixed_fleet(big_registry):
    cluster = MultiReplicaSystem.build(
        "chameleon", registry=big_registry, seed=0,
        replica_specs=("a100-80gb", "a40-48gb"))
    assert len(cluster.replicas) == 2
    assert cluster.replicas[0].gpu.spec.name == "a100-80gb"
    assert cluster.replicas[1].gpu.spec.name == "a40-48gb"
    weights = cluster.capabilities()
    assert weights[0] > 1.0 > weights[1]
    assert sum(weights) == pytest.approx(2.0)


def test_replica_specs_accept_gpuspec_and_engine_config(big_registry):
    from repro.hardware.gpu import A100_80GB
    from repro.serving.engine import EngineConfig as EC

    cluster = MultiReplicaSystem.build(
        "chameleon", registry=big_registry, seed=0,
        replica_specs=(A100_80GB, EC(max_batch_size=7), None))
    assert cluster.replicas[0].gpu.spec.name == "a100-80gb"
    assert cluster.engines[1].config.max_batch_size == 7
    assert cluster.engines[2].config.max_batch_size == 256  # default kept


def test_replica_specs_dict_overrides(big_registry):
    from repro.serving.engine import EngineConfig as EC

    cluster = MultiReplicaSystem.build(
        "chameleon", registry=big_registry, seed=0,
        replica_specs=(
            {"gpu": "a100-80gb", "engine_config": EC(max_batch_size=9)},
            {},
        ))
    assert cluster.replicas[0].gpu.spec.name == "a100-80gb"
    assert cluster.engines[0].config.max_batch_size == 9
    assert cluster.replicas[1].gpu.spec.name == "a40-48gb"


def test_replica_specs_length_mismatch_raises(big_registry):
    with pytest.raises(ValueError):
        MultiReplicaSystem.build(
            "chameleon", n_replicas=3, registry=big_registry,
            replica_specs=("a100-80gb", "a40-48gb"))


def test_replica_specs_bad_entry_type_raises(big_registry):
    with pytest.raises(TypeError):
        MultiReplicaSystem.build(
            "chameleon", registry=big_registry, replica_specs=(42,))


def test_build_requires_count_or_specs():
    with pytest.raises(ValueError):
        MultiReplicaSystem.build("slora")


def test_homogeneous_fleet_weights_are_exactly_one(cluster):
    assert cluster.capabilities() == [1.0, 1.0, 1.0]


def test_mixed_fleet_runs_and_skews_completions(big_registry, dp_trace):
    cluster = MultiReplicaSystem.build(
        "chameleon", registry=big_registry, seed=0,
        replica_specs=("a100-80gb", "a100-80gb", "a40-48gb"))
    cluster.run_trace(dp_trace.fresh())
    assert all(r.finished for r in cluster.all_requests())
    counts = cluster.per_replica_counts()
    # The fast replicas absorb more of the trace than the slow one.
    assert min(counts[0], counts[1]) > counts[2]


# --------------------------------------------------------------------- #
# summary().extra edge cases: zero-serving replicas, cold estimators
# --------------------------------------------------------------------- #
def test_summary_with_zero_request_replica(big_registry):
    """A replica that served nothing must not poison the cluster math."""
    from repro.serving.admission import SloPolicy

    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=3, registry=big_registry,
        predictor_accuracy=None, seed=0,
        slo_policy=SloPolicy(ttft_deadline=100.0))
    # One request: least_loaded ties break to replica 0; 1 and 2 idle.
    cluster.run_trace([Request(request_id=0, arrival_time=0.0,
                               input_tokens=50, output_tokens=2)])
    counts = cluster.per_replica_counts()
    assert sorted(counts) == [0, 0, 1]
    extra = cluster.summary(duration=10.0).extra
    # max/mean with zero-count replicas: 1 / (1/3) = 3 exactly.
    assert extra["load_imbalance"] == pytest.approx(3.0)
    # No adapter lookups anywhere: the aggregate rate is NaN, not a crash.
    import math
    assert math.isnan(extra["aggregate_hit_rate"])
    assert math.isnan(cluster.mean_hit_rate())
    # Goodput: 1 deadline-compliant completion over the stated 10s window.
    assert extra["goodput_rps"] == pytest.approx(0.1)
    assert extra["cluster_slo_attainment"] == 1.0
    assert extra["p99_dispatch_queue_delay"] == 0.0


def test_summary_all_replicas_idle(big_registry):
    """An empty run (no requests at all) summarizes without dividing by 0."""
    import math

    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0)
    cluster.run_trace([])
    extra = cluster.summary().extra
    assert extra["per_replica_counts"] == [0, 0]
    assert math.isnan(extra["load_imbalance"])
    assert math.isnan(extra["aggregate_hit_rate"])


def test_estimated_queue_wait_cold_start(big_registry):
    """Before the first finish event the EWMA is unseeded: the estimator
    is optimistic (0.0) no matter how long the queue already is."""
    cluster = MultiReplicaSystem.build(
        "slora", n_replicas=2, registry=big_registry,
        predictor_accuracy=None, seed=0,
        engine_config=EngineConfig(max_batch_size=1))
    dispatcher = cluster.cluster
    assert dispatcher.estimated_queue_wait() == 0.0
    # Saturate both replicas and pile a queue up before anything finishes.
    for i in range(6):
        cluster.sim.schedule_at(0.001 * i, dispatcher.dispatch,
                                Request(request_id=i, arrival_time=0.001 * i,
                                        input_tokens=400, output_tokens=40))
    cluster.sim.run(until=0.01)  # arrivals in, nothing finished yet
    assert dispatcher.queue_len() > 0
    assert dispatcher._finish_interval_ewma is None
    assert dispatcher.estimated_queue_wait() == 0.0
    # After the first inter-finish sample the estimate turns positive.
    cluster.sim.run()
    assert dispatcher._finish_interval_ewma is not None
    assert dispatcher.estimated_queue_wait() > 0.0
