"""Tests for the data-parallel multi-replica system (§4.4)."""

import pytest

from repro.serving.replica import MultiReplicaSystem
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


@pytest.fixture
def cluster(big_registry):
    return MultiReplicaSystem.build(
        "chameleon", n_replicas=3, registry=big_registry, seed=0)


@pytest.fixture
def dp_trace(big_registry, rng_streams):
    return synthesize_trace(SPLITWISE_PROFILE, rps=15.0, duration=30.0,
                            rng=rng_streams.get("trace"), registry=big_registry)


def test_build_shares_one_clock(cluster):
    assert len(cluster.replicas) == 3
    sims = {id(system.sim) for system in cluster.replicas}
    assert sims == {id(cluster.sim)}


def test_all_requests_complete(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    done = cluster.all_requests()
    assert len(done) == len(dp_trace)
    assert all(r.finished for r in done)


def test_load_spread_across_replicas(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    counts = cluster.per_replica_counts()
    assert len(counts) == 3
    assert min(counts) > 0
    # Least-loaded keeps the spread reasonable.
    assert max(counts) < 3 * min(counts)


def test_summary_aggregates(cluster, dp_trace):
    cluster.run_trace(dp_trace.fresh())
    summary = cluster.summary()
    assert summary.n_requests == len(dp_trace)
    assert summary.p99_ttft > 0
    assert 0.0 <= cluster.mean_hit_rate() <= 1.0


def test_adapter_affinity_routing(big_registry, dp_trace):
    affinity = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy="adapter_affinity",
        registry=big_registry, seed=0)
    affinity.run_trace(dp_trace.fresh())
    rr = MultiReplicaSystem.build(
        "chameleon", n_replicas=3, dispatch_policy="round_robin",
        registry=big_registry, seed=0)
    rr.run_trace(dp_trace.fresh())
    assert affinity.mean_hit_rate() >= rr.mean_hit_rate() - 0.02


def test_rejects_reused_requests(cluster, dp_trace):
    requests = dp_trace.fresh()
    cluster.run_trace(requests)
    other = MultiReplicaSystem.build("slora", n_replicas=2, seed=0)
    with pytest.raises(ValueError):
        other.run_trace(requests)


def test_rejects_zero_replicas():
    with pytest.raises(ValueError):
        MultiReplicaSystem.build("slora", n_replicas=0)
