"""Tests for base-model geometry: the byte-level facts the paper quotes."""

import pytest

from repro.llm.model import (
    LLAMA_7B,
    LLAMA_13B,
    LLAMA_30B,
    LLAMA_70B,
    MB,
    MODEL_ZOO,
    ModelSpec,
)


def test_rank32_adapter_is_64mb_on_7b():
    """§3.2: 'a rank 32 adapter for Llama-7B is 64 MB'."""
    assert LLAMA_7B.adapter_bytes(32) == 64 * MB


def test_adapter_bytes_linear_in_rank():
    assert LLAMA_7B.adapter_bytes(64) == 2 * LLAMA_7B.adapter_bytes(32)
    assert LLAMA_7B.adapter_bytes(128) == 4 * LLAMA_7B.adapter_bytes(32)


def test_70b_adapter_much_larger_than_7b():
    """§3.2: the same-rank adapter grows with the base model (to ~hundreds of MB)."""
    small = LLAMA_7B.adapter_bytes(32)
    big = LLAMA_70B.adapter_bytes(32)
    assert big > 3 * small
    assert big >= 256 * MB  # paper: "grows to 256 MB"


def test_rank128_adapter_order_of_gbs_on_70b():
    """§3.2: 'Rank 128 adapter size grows to the order of GBs' for 70B."""
    assert LLAMA_70B.adapter_bytes(128) >= 1024 * MB


def test_kv_bytes_per_token_7b():
    # 2 (K,V) * 32 layers * 4096 hidden * 2 bytes = 512 KB per token.
    assert LLAMA_7B.kv_bytes_per_token == 512 * 1024


def test_weight_bytes_fp16():
    assert LLAMA_7B.weight_bytes == LLAMA_7B.n_params * 2


def test_flops_per_token_is_2n():
    assert LLAMA_7B.flops_per_token() == 2.0 * LLAMA_7B.n_params


def test_model_zoo_contains_all_llamas():
    assert set(MODEL_ZOO) == {"llama-7b", "llama-13b", "llama-30b", "llama-70b"}
    assert MODEL_ZOO["llama-13b"] is LLAMA_13B


def test_models_monotone_in_size():
    models = [LLAMA_7B, LLAMA_13B, LLAMA_30B, LLAMA_70B]
    for smaller, larger in zip(models, models[1:]):
        assert smaller.weight_bytes < larger.weight_bytes
        assert smaller.kv_bytes_per_token < larger.kv_bytes_per_token
        assert smaller.adapter_bytes(32) < larger.adapter_bytes(32)


def test_invalid_rank_rejected():
    with pytest.raises(ValueError):
        LLAMA_7B.adapter_bytes(0)
    with pytest.raises(ValueError):
        LLAMA_7B.adapter_bytes(-8)


def test_custom_model_spec():
    tiny = ModelSpec(name="tiny", n_params=1_000_000, n_layers=2, hidden_size=64)
    assert tiny.weight_bytes == 2_000_000
    assert tiny.kv_bytes_per_token == 2 * 2 * 64 * 2
