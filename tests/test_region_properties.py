"""Region invariants: conservation, eligibility, and 1-shard identity.

Property-based (hypothesis) checks over the sharded region control plane
(:mod:`repro.serving.region`):

* **Conservation across shards** — no request is lost or double-counted by
  routing, cross-shard spills, or work stealing: every shard's dispatcher
  books balance (``dispatched + shed + still-queued == arrivals + stolen -
  donated``), the region sees every trace arrival exactly once, and the
  shard arrival counts sum to the region's.
* **Eligibility** — stealing and spilling must never submit to a replica
  outside the dispatch set (draining, stalled, failed, cold), even while
  lifecycle churn is rewriting that set mid-run.
* **1-shard identity** — a 1-shard region is the bare
  ``MultiReplicaSystem`` bit for bit: same per-engine request sequences,
  same stats, same event count.

Plus deterministic checks of :class:`SharedGpuBudget` arithmetic and the
budget ceiling under autoscaling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters.registry import AdapterRegistry
from repro.llm.model import LLAMA_7B
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.region import RegionConfig, ServingRegion, SharedGpuBudget
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace

_REGISTRY = None


def _registry():
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = AdapterRegistry.build(LLAMA_7B, 100)
    return _REGISTRY


def _trace(rps, duration=10.0, seed=9, tenants=0):
    registry = _registry()
    rng = RngStreams(seed).get("trace")
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=rps, duration=duration,
                             rng=rng, registry=registry)
    if tenants:
        trace.label_tenants(tenants, RngStreams(seed).get("tenants"))
    return trace


def _build_region(trace, *, n_shards, spill, steal, shard_key="hash",
                  seed=5, churn=False, **kwargs):
    region = ServingRegion.build(
        "chameleon", n_replicas=2, registry=_registry(), seed=seed,
        engine_config=EngineConfig(max_batch_size=4),
        region=RegionConfig(n_shards=n_shards, shard_key=shard_key,
                            spill=spill, steal=steal),
        **kwargs)
    if churn and n_shards > 1:
        # Lifecycle churn on shard 0 while its siblings keep cooperating.
        cluster = region.systems[0].cluster
        region.sim.schedule_at(3.0, cluster.stall_replica, 0, 2.0)
        region.sim.schedule_at(5.0, cluster.drain_replica, 1)
    region.run_trace(trace.fresh())
    return region


# --------------------------------------------------------------------- #
# Conservation across shards
# --------------------------------------------------------------------- #
@settings(max_examples=8, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=4),
    rps=st.floats(min_value=10.0, max_value=50.0),
    spill=st.booleans(),
    steal=st.booleans(),
    tenant_keyed=st.booleans(),
)
def test_region_conserves_requests(n_shards, rps, spill, steal, tenant_keyed):
    trace = _trace(rps, tenants=8 if tenant_keyed else 0)
    region = _build_region(
        trace, n_shards=n_shards, spill=spill, steal=steal,
        shard_key="tenant" if tenant_keyed else "hash")
    # Region-level: every arrival exactly once, no duplicates.
    requests = region.all_requests()
    assert sorted(r.request_id for r in requests) == \
        sorted(r.request_id for r in trace.requests)
    assert region.stats.arrivals == len(trace.requests)
    assert sum(region.stats.routed) == region.stats.arrivals
    # Shard-level books balance, donations and thefts included.
    for system in region.systems:
        stats = system.cluster.stats
        assert stats.dispatched + stats.shed + system.cluster.queue_len() \
            == stats.arrivals + stats.stolen - stats.donated
    assert sum(s.cluster.stats.donated for s in region.systems) \
        == sum(s.cluster.stats.stolen for s in region.systems) \
        == region.stats.steals


# --------------------------------------------------------------------- #
# Eligibility: steal/spill never submit outside the dispatch set
# --------------------------------------------------------------------- #
@settings(max_examples=6, deadline=None)
@given(
    rps=st.floats(min_value=25.0, max_value=60.0),
    steal=st.booleans(),
)
def test_region_never_dispatches_to_ineligible_replica(rps, steal):
    trace = _trace(rps)
    violations = []

    def guard(cluster, shard):
        original = cluster._submit

        def wrapped(request):
            index = original(request)
            if not cluster._is_eligible[index]:
                violations.append((shard, index, request.request_id))
            return index

        cluster._submit = wrapped

    region = ServingRegion.build(
        "chameleon", n_replicas=2, registry=_registry(), seed=5,
        engine_config=EngineConfig(max_batch_size=4),
        region=RegionConfig(n_shards=3, spill=True, steal=steal))
    for shard, system in enumerate(region.systems):
        guard(system.cluster, shard)
    cluster = region.systems[0].cluster
    region.sim.schedule_at(3.0, cluster.stall_replica, 0, 2.0)
    region.sim.schedule_at(5.0, cluster.drain_replica, 1)
    region.run_trace(trace.fresh())
    assert not violations


# --------------------------------------------------------------------- #
# 1-shard region == bare MultiReplicaSystem, bit for bit
# --------------------------------------------------------------------- #
def _fingerprint(system):
    stats = system.cluster.stats
    return {
        "per_engine": [
            [r.request_id for r in engine.all_requests]
            for engine in system.engines
        ],
        "dispatched": stats.dispatched,
        "queued": stats.queued,
        "shed": stats.shed,
        "queue_delays": list(stats.queue_delays),
        "ttfts": sorted(
            (r.request_id, r.ttft)
            for r in system.all_requests()
            if r.first_token_time is not None
        ),
    }


@pytest.mark.parametrize("policy", ("least_loaded", "p2c", "token_weighted"))
def test_one_shard_region_is_bare_system(policy):
    trace = _trace(30.0, duration=12.0)
    region = _build_region(trace, n_shards=1, spill=True, steal=True,
                           dispatch_policy=policy)
    bare = MultiReplicaSystem.build(
        "chameleon", n_replicas=2, dispatch_policy=policy,
        registry=_registry(), seed=5,
        engine_config=EngineConfig(max_batch_size=4))
    bare.run_trace(trace.fresh())
    assert _fingerprint(region.systems[0]) == _fingerprint(bare)
    assert region.sim.processed_events == bare.sim.processed_events
    assert region.stats.cross_shard_spills == 0
    assert region.stats.steals == 0


# --------------------------------------------------------------------- #
# Shared GPU budget
# --------------------------------------------------------------------- #
def test_shared_budget_arithmetic():
    budget = SharedGpuBudget(10)
    assert budget.available() == 10
    budget.report(0, 4)
    budget.report(1, 3)
    assert budget.held() == 7 and budget.available() == 3
    budget.report(0, 1)  # absolute refresh, not a delta
    assert budget.held() == 4 and budget.available() == 6
    budget.report(2, 9)  # over-claim clamps availability at zero
    assert budget.available() == 0
    with pytest.raises(ValueError):
        SharedGpuBudget(0)


def test_region_autoscalers_respect_shared_budget():
    trace = _trace(45.0, duration=20.0)
    capacity = 6
    region = ServingRegion.build(
        "chameleon", registry=_registry(), seed=5,
        engine_config=EngineConfig(max_batch_size=4),
        autoscale=AutoscaleConfig(
            min_replicas=1, max_replicas=6, tick_interval=2.0,
            provision_delay=1.0, sustain_ticks=1, cooldown=2.0,
            queue_wait_threshold=0.5),
        region=RegionConfig(n_shards=2, gpu_budget=capacity),
    )
    over = []
    for t in range(1, 21):
        region.sim.schedule_at(
            float(t),
            lambda: region.total_replicas() <= capacity
            or over.append(region.sim.now))
    region.run_trace(trace.fresh())
    assert not over, f"region held more GPUs than the budget at {over}"
    assert region.total_replicas() <= capacity
    scale_outs = sum(s.autoscaler.scale_out_count for s in region.systems)
    assert scale_outs > 0, "the load never triggered a scale-out"


def test_budget_requires_autoscale():
    with pytest.raises(ValueError, match="autoscale"):
        ServingRegion.build(
            "chameleon", n_replicas=1, registry=_registry(),
            region=RegionConfig(n_shards=2, gpu_budget=8))
