"""Tests for popularity and length distributions."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams
from repro.workload.distributions import (
    bursty_arrival_times,
    poisson_arrival_times,
    sample_categorical,
    sample_lognormal_lengths,
    zipf_weights,
)


@pytest.fixture
def rng():
    return RngStreams(42).get("test")


def test_zipf_weights_normalized_and_decreasing():
    w = zipf_weights(10, alpha=1.0)
    assert w.sum() == pytest.approx(1.0)
    assert all(w[i] >= w[i + 1] for i in range(9))


def test_zipf_alpha_zero_is_uniform():
    w = zipf_weights(5, alpha=0.0)
    assert np.allclose(w, 0.2)


def test_zipf_higher_alpha_more_skewed():
    flat = zipf_weights(100, alpha=0.5)
    steep = zipf_weights(100, alpha=2.0)
    assert steep[0] > flat[0]


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        zipf_weights(0)
    with pytest.raises(ValueError):
        zipf_weights(5, alpha=-1.0)


def test_sample_categorical_respects_weights(rng):
    items = ["a", "b"]
    picks = sample_categorical(rng, items, np.array([0.95, 0.05]), size=2000)
    assert picks.count("a") > 1600


def test_sample_categorical_length_mismatch(rng):
    with pytest.raises(ValueError):
        sample_categorical(rng, ["a"], np.array([0.5, 0.5]), size=1)


def test_lognormal_lengths_hit_target_mean(rng):
    lengths = sample_lognormal_lengths(rng, mean=200.0, sigma=1.0, max_len=100000, size=50000)
    assert np.mean(lengths) == pytest.approx(200.0, rel=0.1)


def test_lognormal_lengths_clipped(rng):
    lengths = sample_lognormal_lengths(rng, mean=500.0, sigma=1.5, max_len=1024, size=5000)
    assert lengths.min() >= 1
    assert lengths.max() <= 1024
    assert lengths.dtype.kind == "i"


def test_lognormal_heavy_tail(rng):
    """Most requests short, a few very long (§3.3's observation)."""
    lengths = sample_lognormal_lengths(rng, mean=100.0, sigma=1.2, max_len=100000, size=20000)
    assert np.median(lengths) < np.mean(lengths)
    assert np.percentile(lengths, 99) > 5 * np.median(lengths)


def test_lognormal_rejects_bad_args(rng):
    with pytest.raises(ValueError):
        sample_lognormal_lengths(rng, mean=0.0, sigma=1.0, max_len=10, size=1)
    with pytest.raises(ValueError):
        sample_lognormal_lengths(rng, mean=10.0, sigma=1.0, max_len=0, size=1)


def test_poisson_rate_and_horizon(rng):
    times = poisson_arrival_times(rng, rate=10.0, duration=200.0)
    assert times.size == pytest.approx(2000, rel=0.1)
    assert times.max() < 200.0
    assert (np.diff(times) >= 0).all()


def test_poisson_rejects_bad_args(rng):
    with pytest.raises(ValueError):
        poisson_arrival_times(rng, rate=0.0, duration=10.0)
    with pytest.raises(ValueError):
        poisson_arrival_times(rng, rate=1.0, duration=0.0)


def test_bursty_preserves_mean_rate(rng):
    times = bursty_arrival_times(rng, rate=10.0, duration=600.0,
                                 burst_factor=3.0, burst_fraction=0.1, cycle=60.0)
    assert times.size == pytest.approx(6000, rel=0.1)


def test_bursty_is_actually_bursty(rng):
    times = bursty_arrival_times(rng, rate=10.0, duration=600.0,
                                 burst_factor=4.0, burst_fraction=0.1, cycle=60.0)
    in_burst = np.count_nonzero((times % 60.0) < 6.0)
    # 10% of each cycle carries ~4x the base rate: well above the 10% share.
    assert in_burst / times.size > 0.2


def test_bursty_rejects_bad_args(rng):
    with pytest.raises(ValueError):
        bursty_arrival_times(rng, 10.0, 60.0, burst_factor=0.5)
    with pytest.raises(ValueError):
        bursty_arrival_times(rng, 10.0, 60.0, burst_fraction=1.0)
