"""Tests for the M/M/1 per-queue quota solver (§4.3.5)."""

import pytest

from repro.core.quotas import QueueStats, solve_quotas


def test_min_tokens_formula():
    q = QueueStats(max_request_tokens=1000, expected_duration=2.0, arrival_rate=3.0)
    # S*D*(1/SLO + lambda) = 1000*2*(0.2+3) = 6400
    assert q.min_tokens(slo=5.0) == pytest.approx(6400.0)


def test_min_tokens_floored_at_s():
    """A quota below one max-size request would deadlock the lane."""
    q = QueueStats(max_request_tokens=1000, expected_duration=0.001, arrival_rate=0.0)
    assert q.min_tokens(slo=100.0) == pytest.approx(1000.0)


def test_min_tokens_grows_with_arrival_rate():
    lo = QueueStats(100, 1.0, 1.0).min_tokens(5.0)
    hi = QueueStats(100, 1.0, 10.0).min_tokens(5.0)
    assert hi > lo


def test_min_tokens_grows_with_tighter_slo():
    loose = QueueStats(100, 1.0, 1.0).min_tokens(slo=10.0)
    tight = QueueStats(100, 1.0, 1.0).min_tokens(slo=0.5)
    assert tight > loose


def test_invalid_slo_rejected():
    with pytest.raises(ValueError):
        QueueStats(100, 1.0, 1.0).min_tokens(slo=0.0)


def test_quotas_exhaust_total():
    stats = [QueueStats(100, 0.5, 5.0), QueueStats(1000, 2.0, 1.0)]
    quotas = solve_quotas(stats, total_tokens=50_000, slo=5.0)
    assert sum(quotas) == pytest.approx(50_000)


def test_quotas_cover_minima_when_provisioned():
    stats = [QueueStats(100, 0.5, 5.0), QueueStats(1000, 2.0, 1.0)]
    quotas = solve_quotas(stats, total_tokens=50_000, slo=5.0)
    for quota, stat in zip(quotas, stats):
        assert quota >= stat.min_tokens(5.0)


def test_surplus_split_proportional_to_minima():
    stats = [QueueStats(100, 1.0, 1.0), QueueStats(200, 1.0, 1.0)]
    minima = [s.min_tokens(5.0) for s in stats]
    quotas = solve_quotas(stats, total_tokens=10_000, slo=5.0)
    assert quotas[0] / quotas[1] == pytest.approx(minima[0] / minima[1])


def test_oversubscription_scales_down_proportionally():
    stats = [QueueStats(10_000, 5.0, 10.0), QueueStats(20_000, 5.0, 10.0)]
    quotas = solve_quotas(stats, total_tokens=1000, slo=1.0)
    assert sum(quotas) == pytest.approx(1000)
    assert quotas[1] / quotas[0] == pytest.approx(2.0)


def test_validation():
    with pytest.raises(ValueError):
        solve_quotas([], total_tokens=100, slo=1.0)
    with pytest.raises(ValueError):
        solve_quotas([QueueStats(1, 1, 1)], total_tokens=0, slo=1.0)
