"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.simulator import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule_at(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []
    assert sim.processed_events == 0


def test_cancel_twice_is_harmless():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    sim.run()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_execution():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(e1)
    assert sim.peek_time() == 2.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_zero_delay_event_fires_at_now():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


# --------------------------------------------------------------------- #
# Heap hygiene: cancelled-event accounting and compaction
# --------------------------------------------------------------------- #
def test_pending_events_counts_live_only():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert sim.pending_events == 6
    sim.cancel(events[0])
    sim.cancel(events[1])
    assert sim.pending_events == 4
    sim.run()
    assert sim.pending_events == 0


def test_cancel_twice_counts_once():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 1


def test_compaction_evicts_cancelled_majority():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for event in events[:6]:
        sim.cancel(event)
    # Cancelled (6) outnumber live (4): the heap was compacted in place.
    assert len(sim._heap) == 4
    assert sim.pending_events == 4
    assert all(not entry[2].cancelled for entry in sim._heap)


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    events = {}
    for i in range(20):
        events[i] = sim.schedule(float(20 - i), fired.append, 20 - i)
    for i in range(0, 20, 2):
        sim.cancel(events[i])  # cancel every other one -> triggers compaction
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == 10


def test_cancel_interleaved_with_execution():
    sim = Simulator()
    fired = []
    keep = [sim.schedule(float(i + 1), fired.append, i) for i in range(8)]
    # Cancel half mid-run from inside an event callback.
    def cancel_rest():
        for event in keep[4:]:
            sim.cancel(event)
    sim.schedule(0.5, cancel_rest)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.pending_events == 0


def test_cancel_after_fire_keeps_accounting_intact():
    """Regression: cancelling an already-fired event must stay a no-op —
    it is not in the heap, so pending_events must not be decremented."""
    sim = Simulator()
    fired = sim.schedule(1.0, lambda: None)
    sim.run()
    live = sim.schedule(2.0, lambda: None)
    sim.cancel(fired)
    sim.cancel(fired)
    assert sim.pending_events == 1
    sim.cancel(live)
    assert sim.pending_events == 0


# --------------------------------------------------------------------- #
# Bulk cancellation (cancel_if): crash handling drops a dead replica's
# pending events in one sweep
# --------------------------------------------------------------------- #
def test_cancel_if_cancels_matching_events_only():
    sim = Simulator()
    fired = []
    for i in range(8):
        sim.schedule(float(i + 1), fired.append, i)
    cancelled = sim.cancel_if(lambda event: event.args[0] % 2 == 0)
    assert cancelled == 4
    sim.run()
    assert fired == [1, 3, 5, 7]


def test_cancel_if_skips_already_cancelled():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    sim.cancel(events[0])
    assert sim.cancel_if(lambda event: True) == 3
    assert sim.pending_events == 0


def test_cancel_if_matches_bound_method_owner():
    # The exact predicate crash handling uses: events whose callback is a
    # bound method of the dead engine die with it, everything else lives.
    class Owner:
        def __init__(self):
            self.fired = []

        def hit(self):
            self.fired.append(True)

    sim = Simulator()
    dead, alive = Owner(), Owner()
    sim.schedule(1.0, dead.hit)
    sim.schedule(2.0, alive.hit)
    sim.schedule(3.0, dead.hit)
    count = sim.cancel_if(
        lambda event: getattr(event.callback, "__self__", None) is dead)
    assert count == 2
    sim.run()
    assert dead.fired == [] and alive.fired == [True]


def test_compaction_still_triggers_after_bulk_cancel():
    """Regression: cancel_if goes through the same cancelled-event
    accounting as cancel, so a bulk sweep that leaves cancelled entries in
    the majority compacts the heap (and later per-event cancels keep
    compacting) instead of bloating it."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.cancel_if(lambda event: event.time <= 6.0) == 6
    # Cancelled (6) outnumber live (4): compacted in place, one pass.
    assert len(sim._heap) == 4
    assert sim.pending_events == 4
    assert all(not entry[2].cancelled for entry in sim._heap)
    # The survivors still fire in order, and per-event cancellation after a
    # bulk sweep keeps the accounting exact.
    sim.cancel(events[6])
    fired = []
    sim.schedule(0.5, fired.append, 0)
    sim.run()
    assert fired == [0]
    assert sim.pending_events == 0
    assert sim.processed_events == 4  # 3 survivors + the late probe


def test_max_events_stop_does_not_advance_clock_to_until():
    """A max_events stop is a mid-flight pause: the clock stays at the last
    executed event so the caller can resume exactly where it left off.
    Only a natural stop (heap drained, or next event past the horizon)
    advances the clock to ``until``."""
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(until=100.0, max_events=3)
    assert fired == [0, 1, 2]
    assert sim.now == 3.0  # NOT advanced to until=100
    # Resuming picks up the remaining events, and the natural stop then
    # advances the clock to the horizon.
    sim.run(until=100.0)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 100.0


def test_max_events_stop_mid_burst_preserves_order():
    """max_events can split a same-timestamp burst across two runs without
    reordering or dropping events."""
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.schedule(1.0, fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]
    assert sim.now == 1.0
    sim.run()
    assert fired == [0, 1, 2, 3]
