"""Tests for the markdown report generator."""

import json

from repro.cli import main
from repro.experiments.common import ExperimentResult
from repro.experiments.report import render_markdown, report_from_json


def _result():
    return ExperimentResult(
        experiment="fig99",
        description="demo experiment",
        rows=[{"rps": 5.0, "p99_s": 1.25}, {"rps": 9.0, "p99_s": 4.0}],
        params={"duration": 60.0},
        notes=["a note"],
    )


def test_render_markdown_structure():
    doc = render_markdown([_result()], title="Demo")
    assert doc.startswith("# Demo")
    assert "## fig99" in doc
    assert "demo experiment" in doc
    assert "| rps | p99_s |" in doc
    assert "| 5 | 1.25 |" in doc
    assert "> a note" in doc
    assert "duration=60.0" in doc


def test_render_heterogeneous_rows():
    result = ExperimentResult(
        "x", "mixed", rows=[{"a": 1}, {"b": 2.5}],
    )
    doc = render_markdown([result])
    assert "| a | b |" in doc
    assert "| 1 |  |" in doc
    assert "|  | 2.5 |" in doc


def test_report_from_json_roundtrip(tmp_path):
    result = _result()
    payload = [{
        "experiment": result.experiment,
        "description": result.description,
        "params": result.params,
        "rows": result.rows,
        "notes": result.notes,
    }]
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload))
    doc = report_from_json(path, title="Round trip")
    assert "# Round trip" in doc
    assert "## fig99" in doc


def test_cli_json_feeds_report(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["fig02", "--json", str(path)]) == 0
    capsys.readouterr()
    doc = report_from_json(path)
    assert "## fig02" in doc
    assert "| rank |" in doc
