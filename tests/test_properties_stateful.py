"""Property-based tests over the stateful components: the adapter managers'
accounting under random acquire/release sequences, the MLQ's quota ledger
under random scheduling episodes, the cost model's monotonicity, and the
data-parallel dispatcher's invariants under random arrival/finish
interleavings (for every dispatch policy and SLO admission mode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters.registry import AdapterRegistry
from repro.core.cache import ChameleonCacheManager
from repro.core.mlq import MlqConfig, MlqScheduler
from repro.core.wrs import WorkloadBounds
from repro.hardware.cluster import DataParallelCluster
from repro.hardware.gpu import A40_48GB, GpuDevice
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B
from repro.serving.adapter_manager import AdapterState, SloraAdapterManager
from repro.serving.admission import AdmitResult, SloPolicy
from repro.sim.simulator import Simulator
from repro.workload.request import Request, RequestState


# --------------------------------------------------------------------- #
# Adapter managers under random operation sequences
# --------------------------------------------------------------------- #
@st.composite
def manager_ops(draw):
    """A sequence of (op, adapter_id) with op in acquire/release/run/room."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        ops.append((
            draw(st.sampled_from(["acquire", "release", "run", "make_room"])),
            draw(st.integers(min_value=0, max_value=9)),
        ))
    return ops


@given(manager_ops(), st.sampled_from(["slora", "chameleon"]))
@settings(max_examples=40, deadline=None)
def test_manager_accounting_invariants(ops, kind):
    sim = Simulator()
    gpu = GpuDevice(A40_48GB)
    link = PcieLink(sim, PcieSpec())
    registry = AdapterRegistry.build(LLAMA_7B, 10)
    cls = SloraAdapterManager if kind == "slora" else ChameleonCacheManager
    mgr = cls(sim, gpu, link, registry)
    pins: dict[int, int] = {}
    for op, aid in ops:
        if op == "acquire":
            mgr.acquire(aid)
            pins[aid] = pins.get(aid, 0) + 1
        elif op == "release":
            if pins.get(aid, 0) > 0:
                mgr.release(aid)
                pins[aid] -= 1
        elif op == "run":
            sim.run()
        else:
            mgr.make_room(64 * 1024 * 1024)
        # Invariants hold after every operation:
        assert gpu.free_bytes >= 0
        resident_bytes = sum(
            e.size_bytes for e in mgr.entries.values()
            if e.state is not AdapterState.MISSING
        )
        assert resident_bytes == gpu.used("adapter") + gpu.used("adapter_cache")
        for adapter_id, count in pins.items():
            assert mgr.refcount(adapter_id) == count
    sim.run()
    # Pinned adapters are resident after the heap drains; none were evicted.
    for adapter_id, count in pins.items():
        if count > 0:
            assert mgr.is_resident(adapter_id)


# --------------------------------------------------------------------- #
# MLQ quota ledger under random episodes
# --------------------------------------------------------------------- #
class _RecordingContext:
    def __init__(self, admit_probability, rng):
        self.now = 0.0
        self.total_token_capacity = 50_000
        self.free_bytes = 10 ** 12
        self.admitted = []
        self._p = admit_probability
        self._rng = rng

    def try_admit(self, request):
        if self._rng.random() < self._p:
            self.admitted.append(request)
            request.state = RequestState.PREFILL
            return AdmitResult.ADMITTED
        return AdmitResult.NO_MEMORY

    def is_adapter_available(self, request):
        return True

    def estimate_service_time(self, request):
        return 1.0

    def estimate_earliest_release(self):
        return 10.0

    def adapter_refcount(self, adapter_id):
        return 1

    def squash(self, request):
        request.state = RequestState.QUEUED


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=2000),
                          st.integers(min_value=1, max_value=500),
                          st.one_of(st.none(), st.integers(min_value=0, max_value=9))),
                min_size=1, max_size=30),
       st.floats(min_value=0.2, max_value=1.0),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_mlq_ledger_conserved(specs, admit_probability, seed):
    registry = AdapterRegistry.build(LLAMA_7B, 10)
    bounds = WorkloadBounds(4096, 1024, registry.max_size_bytes)
    mlq = MlqScheduler(LLAMA_7B, registry, CostModel(LLAMA_7B, A40_48GB), bounds,
                       MlqConfig(min_samples=5))
    rng = np.random.default_rng(seed)
    requests = []
    for i, (inp, out, aid) in enumerate(specs):
        r = Request(request_id=i, arrival_time=0.0, input_tokens=inp,
                    output_tokens=out, adapter_id=aid)
        r.predicted_output_tokens = out
        r.enqueue_time = 0.0
        r.state = RequestState.QUEUED
        requests.append(r)
        mlq.enqueue(r, 0.0)
    ctx = _RecordingContext(admit_probability, rng)
    for round_no in range(5):
        mlq.on_schedule(float(round_no))
        mlq.select(ctx)
        # Borrowed never negative, never wildly above the (overcommitted) pool.
        for q in mlq.queues:
            assert q.borrowed >= 0.0
    # Finish everything that was admitted; ledger must drain to zero.
    for request in ctx.admitted:
        mlq.on_finish(request, 10.0)
    assert sum(q.borrowed for q in mlq.queues) == pytest.approx(0.0, abs=1e-6)
    assert all(v >= 0 for v in mlq._adapter_active.values())
    assert sum(mlq._adapter_active.values()) == 0
    # Whatever was not admitted is still queued exactly once.
    assert mlq.queue_len() == len(requests) - len(set(map(id, ctx.admitted)))


# --------------------------------------------------------------------- #
# Data-parallel dispatch under random arrival/finish interleavings
# --------------------------------------------------------------------- #
class _StepSim:
    def __init__(self):
        self.now = 0.0


class _SatEngine:
    """A saturable fake engine that *asserts* the backpressure contract: a
    dispatcher with backpressure on must never submit to it while it is
    saturated (the global queue exists precisely to prevent that)."""

    def __init__(self, capacity, sim, submit_log):
        self.capacity = capacity
        self.sim = sim
        self.submitted = []
        self.in_flight = []
        self._submit_log = submit_log
        self._callbacks = []
        self.adapter_manager = self

    def in_flight_count(self):
        return len(self.in_flight)

    def is_resident(self, adapter_id):
        # A fixed residency pattern so affinity policies take both branches.
        return adapter_id is not None and adapter_id % 2 == 0

    def is_saturated(self):
        return len(self.in_flight) >= self.capacity

    def on_finish(self, callback):
        self._callbacks.append(callback)

    def submit(self, request):
        assert not self.is_saturated(), \
            "submitted to a saturated engine (unsaturated peers may exist)"
        self.submitted.append(request)
        self.in_flight.append(request)
        self._submit_log.append(request)

    def finish_one(self):
        request = self.in_flight.pop(0)
        for callback in self._callbacks:
            callback(request)


def _interleavings():
    """Random op sequences: arrivals (with an adapter draw) and finishes."""
    return st.lists(
        st.tuples(st.sampled_from(["arrive", "finish"]),
                  st.integers(min_value=0, max_value=7)),
        min_size=1, max_size=60,
    )


def _run_interleaving(policy, ops, n_engines, capacity, slo_policy=None):
    sim = _StepSim()
    submit_log: list = []
    engines = [_SatEngine(capacity, sim, submit_log) for _ in range(n_engines)]
    cluster = DataParallelCluster(
        engines, policy=policy, slo_policy=slo_policy,
        rng=np.random.default_rng(7))
    arrived: list = []
    queued_order: list = []
    for kind, draw in ops:
        if kind == "arrive":
            request = Request(
                request_id=len(arrived), arrival_time=sim.now,
                input_tokens=10, output_tokens=2,
                adapter_id=draw if draw < 4 else None)
            arrived.append(request)
            before = cluster.queue_len()
            index = cluster.dispatch(request)
            if index is None and cluster.queue_len() > before \
                    and not request.deprioritized:
                queued_order.append(request)
        else:
            busy = [e for e in engines if e.in_flight]
            if busy:
                busy[draw % len(busy)].finish_one()
        sim.now += 0.25

        # Conservation: every arrival is in exactly one place — submitted to
        # exactly one engine, still pending at the cluster, or shed.
        in_engines = [r.request_id for e in engines for r in e.submitted]
        pending = [r.request_id for r in cluster.pending_requests()]
        shed = [r.request_id for r in cluster.shed_requests()]
        assert len(in_engines) == len(set(in_engines))
        assert sorted(in_engines + pending + shed) == \
            [r.request_id for r in arrived]
        # Stats mirror the same identity.
        assert cluster.stats.dispatched + cluster.queue_len() \
            + cluster.stats.shed == len(arrived)
        # No engine is ever pushed past its capacity.
        assert all(len(e.in_flight) <= e.capacity for e in engines)
    return submit_log, queued_order


@pytest.mark.parametrize("policy", DataParallelCluster.POLICIES)
@given(ops=_interleavings(),
       n_engines=st.integers(min_value=2, max_value=4),
       capacity=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_dispatch_interleavings_conserve_requests(policy, ops, n_engines, capacity):
    submit_log, queued_order = _run_interleaving(policy, ops, n_engines, capacity)
    # FIFO: requests that went through the global queue are submitted in
    # queue-entry order — nothing overtakes the queued head.
    queued_ids = {r.request_id for r in queued_order}
    released = [r.request_id for r in submit_log if r.request_id in queued_ids]
    expected = [r.request_id for r in queued_order if r.request_id in set(released)]
    assert released == expected


@pytest.mark.parametrize("mode", SloPolicy.MODES)
@given(ops=_interleavings(),
       policy=st.sampled_from(DataParallelCluster.POLICIES),
       deadline=st.floats(min_value=0.05, max_value=2.0),
       capacity=st.integers(min_value=1, max_value=2))
@settings(max_examples=25, deadline=None)
def test_slo_interleavings_conserve_requests(mode, ops, policy, deadline, capacity):
    slo_policy = SloPolicy(ttft_deadline=deadline, mode=mode)
    submit_log, queued_order = _run_interleaving(
        policy, ops, n_engines=3, capacity=capacity, slo_policy=slo_policy)
    # Deprioritized arrivals never overtake the FIFO lane: among submitted
    # requests, a FIFO-lane request enqueued before a low-lane request that
    # was parked at that time is released first (checked per-step above via
    # conservation; here we check shed requests never ran at all).
    assert all(not r.shed for r in submit_log)
    # The FIFO lane keeps its no-overtake guarantee under SLO admission:
    # FIFO-lane requests are released in queue-entry order (deprioritized
    # arrivals are excluded from queued_order — they may be overtaken).
    queued_ids = {r.request_id for r in queued_order}
    released = [r.request_id for r in submit_log if r.request_id in queued_ids]
    expected = [r.request_id for r in queued_order if r.request_id in set(released)]
    assert released == expected


# --------------------------------------------------------------------- #
# Cost-model monotonicity
# --------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=4000),
       st.integers(min_value=1, max_value=3999),
       st.sampled_from([8, 16, 32, 64, 128]))
@settings(max_examples=60)
def test_prefill_monotone_property(n, delta, rank):
    cm = CostModel(LLAMA_7B, A40_48GB)
    assert cm.prefill_time(n + delta, rank) > cm.prefill_time(n, rank)


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=1, max_value=100))
@settings(max_examples=60)
def test_decode_step_monotone_property(n_requests, ctx_tokens, extra):
    cm = CostModel(LLAMA_7B, A40_48GB)
    base = cm.decode_step_time(n_requests, ctx_tokens)
    assert cm.decode_step_time(n_requests + extra, ctx_tokens) > base
    assert cm.decode_step_time(n_requests, ctx_tokens + extra) > base


@given(st.integers(min_value=1, max_value=2000),
       st.integers(min_value=2, max_value=400),
       st.sampled_from([None, 8, 32, 128]))
@settings(max_examples=40)
def test_estimate_tracks_exact_isolated(inp, out, rank):
    cm = CostModel(LLAMA_7B, A40_48GB)
    exact = cm.isolated_request_time(inp, out, rank)
    estimate = cm.estimate_service_time(inp, out, rank)
    assert estimate == pytest.approx(exact, rel=0.08)
