"""Tests for named reproducible RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).get("arrivals").random(10)
    b = RngStreams(7).get("arrivals").random(10)
    assert (a == b).all()


def test_different_names_are_independent():
    streams = RngStreams(7)
    a = streams.get("arrivals").random(10)
    b = streams.get("lengths").random(10)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngStreams(1).get("arrivals").random(10)
    b = RngStreams(2).get("arrivals").random(10)
    assert not (a == b).all()


def test_stream_is_cached():
    streams = RngStreams(7)
    assert streams.get("x") is streams.get("x")


def test_order_independence():
    """Requesting streams in a different order must not change their values."""
    s1 = RngStreams(9)
    first_a = s1.get("a").random()
    s2 = RngStreams(9)
    s2.get("b")  # request another stream first
    assert s2.get("a").random() == first_a


def test_spawn_prefixes_namespace():
    parent = RngStreams(5)
    child = parent.spawn("engine0")
    direct = RngStreams(5).get("engine0/trace").random()
    assert child.get("trace").random() == direct
