"""Host-side registry of all adapters an LLM instance can serve.

The paper's default pool (§5.1): ``N_a`` adapters over five ranks
{8, 16, 32, 64, 128}, an equal number of adapters per rank, requests
assigned a rank uniformly and an adapter within the rank by a power law.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.adapters.adapter import LoraAdapter
from repro.llm.model import ModelSpec

#: The five ranks of the paper's evaluation.
DEFAULT_RANKS: tuple[int, ...] = (8, 16, 32, 64, 128)


class AdapterRegistry:
    """All adapters known to the system, stored in host memory.

    Adapters are identified by dense integer ids ``0..n-1``.  The registry is
    read-only after construction; GPU residency is tracked by the adapter
    managers, not here.
    """

    def __init__(self, adapters: Sequence[LoraAdapter]) -> None:
        if not adapters:
            raise ValueError("registry needs at least one adapter")
        self._adapters = list(adapters)
        ids = [a.adapter_id for a in self._adapters]
        if ids != list(range(len(ids))):
            raise ValueError("adapter ids must be dense 0..n-1 in order")

    @classmethod
    def build(
        cls,
        model: ModelSpec,
        n_adapters: int,
        ranks: Iterable[int] = DEFAULT_RANKS,
    ) -> "AdapterRegistry":
        """Build the paper's pool: ranks round-robined over ``n_adapters`` ids.

        With ``n_adapters`` divisible by the number of ranks this yields an
        equal number of adapters per rank, matching §5.1.
        """
        ranks = tuple(ranks)
        if n_adapters <= 0:
            raise ValueError(f"n_adapters must be positive, got {n_adapters}")
        adapters = [
            LoraAdapter(
                adapter_id=i,
                rank=ranks[i % len(ranks)],
                size_bytes=model.adapter_bytes(ranks[i % len(ranks)]),
            )
            for i in range(n_adapters)
        ]
        return cls(adapters)

    def __len__(self) -> int:
        return len(self._adapters)

    def __iter__(self):
        return iter(self._adapters)

    def get(self, adapter_id: int) -> LoraAdapter:
        if not 0 <= adapter_id < len(self._adapters):
            raise KeyError(f"unknown adapter id {adapter_id}")
        return self._adapters[adapter_id]

    def ids_by_rank(self, rank: int) -> list[int]:
        """All adapter ids of a given rank (used by popularity sampling)."""
        return [a.adapter_id for a in self._adapters if a.rank == rank]

    @property
    def ranks(self) -> list[int]:
        """Sorted distinct ranks present in the pool."""
        return sorted({a.rank for a in self._adapters})

    @property
    def max_size_bytes(self) -> int:
        return max(a.size_bytes for a in self._adapters)

    @property
    def max_rank(self) -> int:
        return max(a.rank for a in self._adapters)
