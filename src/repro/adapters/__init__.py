"""LoRA adapter specifications and the host-side adapter registry."""

from repro.adapters.adapter import LoraAdapter
from repro.adapters.registry import AdapterRegistry, DEFAULT_RANKS

__all__ = ["LoraAdapter", "AdapterRegistry", "DEFAULT_RANKS"]
