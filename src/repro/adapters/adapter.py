"""A single LoRA adapter."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LoraAdapter:
    """Immutable description of one fine-tuned adapter.

    Attributes:
        adapter_id: Unique id within the registry.
        rank: LoRA rank (the paper's "size" axis of heterogeneity).
        size_bytes: GPU bytes the adapter occupies (derived from the base
            model's geometry by the registry).
    """

    adapter_id: int
    rank: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
