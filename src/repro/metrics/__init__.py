"""Metrics: per-request summaries, percentiles, slowdown, SLO attainment."""

from repro.metrics.summary import (
    percentile,
    RunSummary,
    summarize_run,
    windowed_p99_ttft,
    cdf_points,
    slowdowns,
    throughput_under_slo,
    compute_slo,
    jain_fairness_index,
    tenant_breakdown,
)

__all__ = [
    "percentile",
    "RunSummary",
    "summarize_run",
    "windowed_p99_ttft",
    "cdf_points",
    "slowdowns",
    "throughput_under_slo",
    "compute_slo",
    "jain_fairness_index",
    "tenant_breakdown",
]
