"""Windowed time-series metrics: throughput, goodput, batch occupancy.

Complements the percentile summaries with the over-time views used in the
timeline figures and in capacity diagnostics: how many requests complete per
window, how many of them met the SLO (goodput), and how full the continuous
batch ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workload.request import Request


@dataclass(frozen=True)
class WindowPoint:
    """One time-window's aggregate."""

    window_end: float
    value: float


def windowed_throughput(
    requests: Sequence[Request],
    window: float,
    horizon: float,
) -> list[WindowPoint]:
    """Completed requests per second, per window (by completion time)."""
    if window <= 0 or horizon <= 0:
        raise ValueError("window and horizon must be positive")
    n_bins = max(1, int(np.ceil(horizon / window)))
    counts = np.zeros(n_bins)
    for request in requests:
        if request.finish_time is None:
            continue
        idx = min(int(request.finish_time / window), n_bins - 1)
        counts[idx] += 1
    return [
        WindowPoint(window_end=(i + 1) * window, value=counts[i] / window)
        for i in range(n_bins)
    ]


def windowed_goodput(
    requests: Sequence[Request],
    window: float,
    horizon: float,
    slo_ttft: float,
) -> list[WindowPoint]:
    """SLO-compliant completions per second, per window."""
    if slo_ttft <= 0:
        raise ValueError("slo_ttft must be positive")
    n_bins = max(1, int(np.ceil(horizon / window)))
    counts = np.zeros(n_bins)
    for request in requests:
        if request.finish_time is None or request.first_token_time is None:
            continue
        if request.ttft > slo_ttft:
            continue
        idx = min(int(request.finish_time / window), n_bins - 1)
        counts[idx] += 1
    return [
        WindowPoint(window_end=(i + 1) * window, value=counts[i] / window)
        for i in range(n_bins)
    ]


def batch_occupancy_series(
    samples: Sequence[tuple[float, int]],
    window: float,
    horizon: float,
) -> list[WindowPoint]:
    """Mean batch size per window, from the engine's occupancy samples.

    Enable recording with ``EngineConfig.record_batch_occupancy``; the engine
    then appends ``(time, batch_size)`` to ``engine.batch_occupancy`` at each
    iteration start.
    """
    n_bins = max(1, int(np.ceil(horizon / window)))
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for time, size in samples:
        idx = min(int(time / window), n_bins - 1)
        sums[idx] += size
        counts[idx] += 1
    return [
        WindowPoint(window_end=(i + 1) * window,
                    value=(sums[i] / counts[i]) if counts[i] else 0.0)
        for i in range(n_bins)
    ]


def peak_concurrency(requests: Sequence[Request]) -> int:
    """Maximum number of simultaneously-admitted requests over a run."""
    events: list[tuple[float, int]] = []
    for request in requests:
        if request.admit_time is None or request.finish_time is None:
            continue
        events.append((request.admit_time, +1))
        events.append((request.finish_time, -1))
    events.sort()
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak
