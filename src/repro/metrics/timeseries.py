"""Windowed time-series metrics: throughput, goodput, batch occupancy.

Complements the percentile summaries with the over-time views used in the
timeline figures and in capacity diagnostics: how many requests complete per
window, how many of them met the SLO (goodput), and how full the continuous
batch ran.

All series share the same binning contract: points with ``time > horizon``
are **dropped** (they are outside the series being reported — clamping them
into the last bin would silently inflate the final window), while the exact
``time == horizon`` boundary stays in the last bin.  Binning and counting
run on preallocated numpy arrays (one ``bincount`` per series) rather than
per-request Python dict/object churn, so million-request traces summarize in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workload.request import Request


@dataclass(frozen=True)
class WindowPoint:
    """One time-window's aggregate."""

    window_end: float
    value: float


def _n_bins(window: float, horizon: float) -> int:
    return max(1, int(np.ceil(horizon / window)))


def _bin_indices(times: np.ndarray, window: float, n_bins: int) -> np.ndarray:
    """Bin index per timestamp; the ``== horizon`` boundary lands in-bin.

    Callers have already dropped ``time > horizon`` points, so the only
    index reaching ``n_bins`` is the exact right edge — fold it into the
    last bin.
    """
    idx = (times / window).astype(np.intp)
    return np.minimum(idx, n_bins - 1)


def windowed_throughput(
    requests: Sequence[Request],
    window: float,
    horizon: float,
) -> list[WindowPoint]:
    """Completed requests per second, per window (by completion time).

    Completions after ``horizon`` are excluded (see module docstring).
    """
    if window <= 0 or horizon <= 0:
        raise ValueError("window and horizon must be positive")
    n_bins = _n_bins(window, horizon)
    finishes = np.fromiter(
        (r.finish_time for r in requests
         if r.finish_time is not None and r.finish_time <= horizon),
        dtype=float,
    )
    counts = np.bincount(
        _bin_indices(finishes, window, n_bins), minlength=n_bins)
    return [
        WindowPoint(window_end=(i + 1) * window, value=counts[i] / window)
        for i in range(n_bins)
    ]


def windowed_goodput(
    requests: Sequence[Request],
    window: float,
    horizon: float,
    slo_ttft: float,
) -> list[WindowPoint]:
    """SLO-compliant completions per second, per window.

    Completions after ``horizon`` are excluded (see module docstring).
    """
    if slo_ttft <= 0:
        raise ValueError("slo_ttft must be positive")
    n_bins = _n_bins(window, horizon)
    finishes = np.fromiter(
        (r.finish_time for r in requests
         if r.finish_time is not None and r.first_token_time is not None
         and r.ttft <= slo_ttft and r.finish_time <= horizon),
        dtype=float,
    )
    counts = np.bincount(
        _bin_indices(finishes, window, n_bins), minlength=n_bins)
    return [
        WindowPoint(window_end=(i + 1) * window, value=counts[i] / window)
        for i in range(n_bins)
    ]


def batch_occupancy_series(
    samples: Sequence[tuple[float, int]],
    window: float,
    horizon: float,
) -> list[WindowPoint]:
    """Mean batch size per window, from the engine's occupancy samples.

    Enable recording with ``EngineConfig.record_batch_occupancy``; the engine
    then appends ``(time, batch_size)`` to ``engine.batch_occupancy`` at each
    iteration start.  Samples after ``horizon`` are excluded (see module
    docstring).
    """
    n_bins = _n_bins(window, horizon)
    kept = [(time, size) for time, size in samples if time <= horizon]
    times = np.fromiter(
        (time for time, _ in kept), dtype=float, count=len(kept))
    sizes = np.fromiter(
        (size for _, size in kept), dtype=float, count=len(kept))
    idx = _bin_indices(times, window, n_bins)
    sums = np.bincount(idx, weights=sizes, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    return [
        WindowPoint(window_end=(i + 1) * window,
                    value=(sums[i] / counts[i]) if counts[i] else 0.0)
        for i in range(n_bins)
    ]


def peak_concurrency(requests: Sequence[Request]) -> int:
    """Maximum number of simultaneously-admitted requests over a run.

    Tie-break at equal timestamps: **arrivals are processed before
    departures**, so a request admitted at the exact instant another one
    finishes (a hand-off) counts as overlapping with it.  The alternative
    (departure first) would report a peak of 1 for a chain of back-to-back
    hand-offs, hiding the instant where the slot is doubly held.
    """
    n = sum(
        1 for r in requests
        if r.admit_time is not None and r.finish_time is not None)
    if n == 0:
        return 0
    times = np.empty(2 * n, dtype=float)
    deltas = np.empty(2 * n, dtype=np.intp)
    pos = 0
    for r in requests:
        if r.admit_time is None or r.finish_time is None:
            continue
        times[pos] = r.admit_time
        deltas[pos] = 1
        times[pos + 1] = r.finish_time
        deltas[pos + 1] = -1
        pos += 2
    # Sort by time; at equal times, +1 before -1 (lexsort: last key is the
    # primary one, and -deltas puts arrivals first).
    order = np.lexsort((-deltas, times))
    running = np.cumsum(deltas[order])
    return int(running.max(initial=0))
