"""Latency summaries over finished requests.

Implements every metric the paper reports: TTFT (P50/P99), TBT (P99 over
inter-token gaps), E2E latency, per-request slowdown vs. isolated execution
(Figure 8), windowed P99-over-time series (Figures 15/19), SLO attainment and
throughput-under-SLO (the load where the P99-TTFT curve crosses the SLO,
which yields the paper's 1.5x headline from Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, Optional, Sequence

import numpy as np

from repro.llm.costmodel import CostModel
from repro.workload.request import Request


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]); NaN for an empty input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


@dataclass
class RunSummary:
    """Aggregate statistics of one simulation run."""

    n_requests: int
    p50_ttft: float
    p99_ttft: float
    mean_ttft: float
    p50_e2e: float
    p99_e2e: float
    p99_tbt: float
    mean_queueing_delay: float
    completed_rps: float
    slo_ttft: Optional[float] = None
    slo_attainment: Optional[float] = None
    extra: dict = field(default_factory=dict)

    def meets_slo(self) -> Optional[bool]:
        if self.slo_ttft is None:
            return None
        return bool(self.p99_ttft <= self.slo_ttft)


def finished_only(requests: Sequence[Request]) -> list[Request]:
    return [r for r in requests if r.finished]


def summarize_run(
    requests: Sequence[Request],
    duration: Optional[float] = None,
    slo_ttft: Optional[float] = None,
    warmup: float = 0.0,
) -> RunSummary:
    """Summarize a run; requests arriving before ``warmup`` are excluded."""
    done = [r for r in finished_only(requests) if r.arrival_time >= warmup]
    if not done:
        nan = float("nan")
        return RunSummary(0, nan, nan, nan, nan, nan, nan, nan, 0.0, slo_ttft, None)
    n = len(done)
    ttfts = np.fromiter((r.ttft for r in done), dtype=float, count=n)
    e2es = np.fromiter((r.e2e_latency for r in done), dtype=float, count=n)
    # TBT samples: per-request inter-token gaps, computed in one vectorized
    # pass over the concatenated token times.  Adjacent-request boundary
    # diffs are masked out — they are not gaps of any request.
    lengths = np.fromiter(
        (len(r.token_times) for r in done), dtype=np.intp, count=n)
    token_times = np.fromiter(
        chain.from_iterable(r.token_times for r in done), dtype=float,
        count=int(lengths.sum()),
    )
    diffs = token_times[1:] - token_times[:-1]
    keep = np.ones(diffs.size, dtype=bool)
    if n > 1 and diffs.size:
        boundaries = np.cumsum(lengths)[:-1] - 1
        keep[boundaries[boundaries >= 0]] = False
    gaps = diffs[keep]
    qdelays = np.fromiter(
        (r.queueing_delay for r in done if r.admit_time is not None),
        dtype=float,
    )
    span = duration if duration is not None else max(r.finish_time for r in done)
    attainment = None
    if slo_ttft is not None:
        attainment = float(np.mean(ttfts <= slo_ttft))
    return RunSummary(
        n_requests=len(done),
        p50_ttft=percentile(ttfts, 50),
        p99_ttft=percentile(ttfts, 99),
        mean_ttft=float(np.mean(ttfts)),
        p50_e2e=percentile(e2es, 50),
        p99_e2e=percentile(e2es, 99),
        p99_tbt=percentile(gaps, 99),
        mean_queueing_delay=float(np.mean(qdelays)) if qdelays.size else float("nan"),
        completed_rps=len(done) / span if span > 0 else 0.0,
        slo_ttft=slo_ttft,
        slo_attainment=attainment,
    )


def windowed_p99_ttft(
    requests: Sequence[Request],
    window: float,
    horizon: float,
) -> list[tuple[float, float]]:
    """(window_end, P99 TTFT of requests arriving in the window) series."""
    done = finished_only(requests)
    n_bins = max(1, int(np.ceil(horizon / window)))
    bins: list[list[float]] = [[] for _ in range(n_bins)]
    for r in done:
        idx = min(int(r.arrival_time / window), n_bins - 1)
        bins[idx].append(r.ttft)
    return [
        ((i + 1) * window, percentile(vals, 99))
        for i, vals in enumerate(bins)
        if vals
    ]


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Sorted (value, cumulative probability) pairs for CDF plots."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return []
    probs = np.arange(1, arr.size + 1) / arr.size
    return list(zip(arr.tolist(), probs.tolist()))


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means the values are perfectly even; ``1/n`` means one member holds
    everything.  Values must be non-negative (they are shares: per-tenant
    attainment, goodput, ...).  All-zero inputs are perfectly even (1.0);
    empty input is NaN.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    if np.any(arr < 0):
        raise ValueError("fairness is defined over non-negative shares")
    square_sum = float(np.sum(arr * arr))
    if square_sum == 0.0:
        return 1.0
    return float(np.sum(arr)) ** 2 / (arr.size * square_sum)


def tenant_breakdown(
    requests: Sequence[Request],
    warmup: float = 0.0,
    attained: Optional[Callable[[Request], bool]] = None,
) -> dict:
    """Per-tenant outcome counts over post-warmup arrivals.

    Returns parallel lists keyed by ``tenant_ids`` (sorted; the anonymous
    ``None`` tenant, if present, last): arrivals, completions, shed, lost,
    and attainment — deadline-compliant completions per arrival when an
    ``attained`` predicate is given (shed/unfinished count against it,
    matching ``cluster_slo_attainment``), plain completion ratio otherwise.
    """
    arrivals = [r for r in requests if r.arrival_time >= warmup]
    by_tenant: dict = {}
    for r in arrivals:
        by_tenant.setdefault(r.tenant_id, []).append(r)
    tenant_ids = sorted(
        (t for t in by_tenant if t is not None)) + (
        [None] if None in by_tenant else [])
    counts = {"arrivals": [], "completed": [], "shed": [], "lost": [],
              "attainment": []}
    for tenant in tenant_ids:
        mine = by_tenant[tenant]
        done = [r for r in mine if r.finished]
        good = [r for r in done if attained(r)] if attained is not None \
            else done
        counts["arrivals"].append(len(mine))
        counts["completed"].append(len(done))
        counts["shed"].append(sum(1 for r in mine if r.shed))
        counts["lost"].append(sum(1 for r in mine if r.lost))
        counts["attainment"].append(
            len(good) / len(mine) if mine else float("nan"))
    return {"tenant_ids": tenant_ids, **counts}


def slowdowns(
    requests: Sequence[Request],
    cost_model: CostModel,
    rank_of: Callable[[Request], Optional[int]],
    load_time_of: Callable[[Request], float],
) -> list[float]:
    """Per-request slowdown: observed E2E over isolated E2E (Figure 8)."""
    out = []
    for r in finished_only(requests):
        isolated = cost_model.isolated_request_time(
            r.input_tokens, r.output_tokens, rank_of(r), load_time_of(r)
        )
        out.append(r.e2e_latency / isolated)
    return out


def compute_slo(
    requests: Sequence[Request],
    cost_model: CostModel,
    rank_of: Callable[[Request], Optional[int]],
    load_time_of: Callable[[Request], float],
    multiplier: float = 5.0,
    sample_cap: int = 512,
) -> float:
    """The paper's SLO: ``multiplier`` x average isolated execution time (§5.1)."""
    sample = list(requests)[:sample_cap]
    if not sample:
        raise ValueError("cannot compute an SLO from an empty trace")
    isolated = [
        cost_model.isolated_request_time(
            r.input_tokens, r.output_tokens, rank_of(r), load_time_of(r)
        )
        for r in sample
    ]
    return multiplier * float(np.mean(isolated))


def throughput_under_slo(
    loads: Sequence[float],
    p99_ttfts: Sequence[float],
    slo: float,
) -> float:
    """Max sustainable load: where the P99-TTFT curve crosses the SLO.

    Linearly interpolates between the last compliant and the first violating
    load, matching how the paper reads throughput off Figure 11.  Returns the
    highest measured load if the SLO is never violated, and 0 if even the
    lowest load violates it.
    """
    if len(loads) != len(p99_ttfts) or not loads:
        raise ValueError("loads and p99_ttfts must be equal-length, non-empty")
    pairs = sorted(zip(loads, p99_ttfts))
    prev_load, prev_lat = None, None
    for load, lat in pairs:
        if np.isnan(lat):
            continue
        if lat > slo:
            if prev_load is None:
                return 0.0
            if lat == prev_lat:
                return prev_load
            frac = (slo - prev_lat) / (lat - prev_lat)
            return prev_load + frac * (load - prev_load)
        prev_load, prev_lat = load, lat
    return pairs[-1][0] if prev_load is not None else 0.0
