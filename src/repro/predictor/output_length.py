"""Output-length predictor with a configurable accuracy knob.

The paper uses µServe's BERT proxy model, measured at ~80% average accuracy,
and studies sensitivity by artificially setting accuracy to 100/80/60%
(§5.4.1).  We reproduce exactly that interface: with probability ``accuracy``
the prediction is (nearly) correct; otherwise it errs by a multiplicative
log-normal factor, which matches the long-tailed mistakes a length classifier
makes on conversational traffic.
"""

from __future__ import annotations

import numpy as np

from repro.workload.request import Request


class OutputLengthPredictor:
    """Simulated BERT-proxy output-length predictor.

    Args:
        rng: Dedicated random stream (so accuracy changes do not perturb the
            workload itself).
        accuracy: Probability that a prediction is within ``tolerance`` of the
            truth.  1.0 gives an oracle.
        tolerance: Relative error of a "correct" prediction.
        miss_sigma: Log-space spread of the multiplicative error on a miss.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        accuracy: float = 0.8,
        tolerance: float = 0.1,
        miss_sigma: float = 0.8,
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self.rng = rng
        self.accuracy = accuracy
        self.tolerance = tolerance
        self.miss_sigma = miss_sigma
        self._n_predictions = 0
        self._n_hits = 0

    def predict(self, request: Request) -> int:
        """Predict the output length of ``request`` (and record hit/miss)."""
        truth = request.output_tokens
        self._n_predictions += 1
        if self.accuracy >= 1.0 or self.rng.random() < self.accuracy:
            self._n_hits += 1
            if self.accuracy >= 1.0:
                return truth
            jitter = 1.0 + self.rng.uniform(-self.tolerance, self.tolerance)
            return max(1, int(round(truth * jitter)))
        factor = self.rng.lognormal(mean=0.0, sigma=self.miss_sigma)
        # A miss is a genuine miss: push the factor out of the tolerance band
        # (rounding-safe margin of 2x tolerance on either side).
        if abs(factor - 1.0) < 2.0 * self.tolerance:
            sign = 1.0 if factor >= 1.0 else -1.0
            factor = 1.0 + sign * 2.0 * self.tolerance
        return max(1, int(round(truth * factor)))

    def annotate(self, request: Request) -> None:
        """Fill in ``request.predicted_output_tokens``."""
        request.predicted_output_tokens = self.predict(request)

    @property
    def observed_accuracy(self) -> float:
        """Fraction of predictions that were within tolerance so far."""
        if self._n_predictions == 0:
            return float("nan")
        return self._n_hits / self._n_predictions


class BucketPredictor:
    """Bucketed output-length classifier, as the µServe proxy actually works.

    µServe's BERT proxy classifies a request into one of K geometric length
    buckets rather than regressing an exact count; the prediction returned is
    the bucket's geometric midpoint.  With probability ``accuracy`` the true
    bucket is predicted; otherwise an adjacent bucket (weighted toward
    under-prediction, the common failure mode of length classifiers).

    This is an alternative to :class:`OutputLengthPredictor` with coarser,
    structurally-realistic errors; schedulers consume both identically.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        accuracy: float = 0.8,
        n_buckets: int = 8,
        max_tokens: int = 2048,
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        if n_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {n_buckets}")
        self.rng = rng
        self.accuracy = accuracy
        # Geometric bucket edges: 1 .. max_tokens.
        ratio = max_tokens ** (1.0 / n_buckets)
        self.edges = [ratio ** i for i in range(n_buckets + 1)]
        self._n_predictions = 0
        self._n_hits = 0

    def bucket_of(self, tokens: int) -> int:
        for i in range(len(self.edges) - 1):
            if tokens < self.edges[i + 1]:
                return i
        return len(self.edges) - 2

    def _midpoint(self, bucket: int) -> int:
        lo, hi = self.edges[bucket], self.edges[bucket + 1]
        return max(1, int(round((lo * hi) ** 0.5)))

    def predict(self, request: Request) -> int:
        self._n_predictions += 1
        true_bucket = self.bucket_of(request.output_tokens)
        n = len(self.edges) - 1
        if self.accuracy >= 1.0 or self.rng.random() < self.accuracy:
            self._n_hits += 1
            return self._midpoint(true_bucket)
        # Miss: adjacent bucket, biased 2:1 toward under-prediction.
        step = -1 if self.rng.random() < 2.0 / 3.0 else 1
        wrong = min(n - 1, max(0, true_bucket + step))
        if wrong == true_bucket:  # at the boundary, flip direction
            wrong = min(n - 1, max(0, true_bucket - step))
        return self._midpoint(wrong)

    def annotate(self, request: Request) -> None:
        request.predicted_output_tokens = self.predict(request)

    @property
    def observed_accuracy(self) -> float:
        if self._n_predictions == 0:
            return float("nan")
        return self._n_hits / self._n_predictions
