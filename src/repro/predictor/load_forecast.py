"""Load forecasting: per-adapter use prediction and cluster arrival rates.

§4.2.3 of the paper explores prefetching adapters for requests that are *not
yet queued*, driven by the histogram technique of Shahrad et al. [48]: keep a
per-adapter histogram of inter-arrival times and predict the next use from
the histogram's mass below a horizon.  The Chameleon prefetcher asks, every
refresh interval, which adapters are likely to be used within the horizon and
warms them into the cache if there is room.
:class:`HistogramLoadPredictor` implements that per-adapter view.

:class:`ArrivalRateForecaster` lifts the same idea from adapters to the
*cluster*: an online forecast of the aggregate arrival rate, which is what a
predictive autoscaler needs — replicas pay a provisioning cold start, so the
controller must know the demand ``provision_delay`` seconds from now, not the
demand it is already drowning in.  The forecaster keeps a windowed history of
rate buckets (one per control-loop tick), extrapolates a linear trend over
the window, and — when the workload has a known period (diurnal cycles,
batch-job cron bursts) — overlays a seasonal histogram of phase-binned rates
so a burst observed in previous cycles is predicted *before* it re-arrives.
Every estimate carries a confidence band that widens under sparse data.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Optional

import numpy as np


class HistogramLoadPredictor:
    """Per-adapter inter-arrival-time histograms with a fixed bin width.

    Args:
        bin_width: Histogram bin width in seconds.
        max_bins: Inter-arrivals beyond ``bin_width * max_bins`` land in an
            overflow bin (treated as "not soon").
        history: How many recent inter-arrivals to keep per adapter.
    """

    def __init__(self, bin_width: float = 1.0, max_bins: int = 240, history: int = 64) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if max_bins < 1:
            raise ValueError(f"max_bins must be >= 1, got {max_bins}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.bin_width = bin_width
        self.max_bins = max_bins
        self.history = history
        self._last_seen: dict[int, float] = {}
        self._intervals: dict[int, deque[float]] = defaultdict(
            lambda: deque(maxlen=history))
        self._use_counts: dict[int, int] = defaultdict(int)

    def record_use(self, adapter_id: int, now: float) -> None:
        """Record that a request for ``adapter_id`` arrived at time ``now``."""
        last = self._last_seen.get(adapter_id)
        if last is not None and now >= last:
            self._intervals[adapter_id].append(now - last)
        self._last_seen[adapter_id] = now
        self._use_counts[adapter_id] += 1

    def probability_within(self, adapter_id: int, now: float, horizon: float) -> float:
        """P(next use of ``adapter_id`` occurs within ``horizon`` seconds).

        Uses the empirical inter-arrival distribution conditioned on the time
        already elapsed since the adapter's last use (the hazard the histogram
        method approximates).  Unknown adapters get probability 0, as does a
        degenerate (negative) horizon.  Single-sample histories and
        zero-length intervals (two uses at one timestamp) are well-defined:
        the result is always a finite probability in [0, 1], never NaN.
        """
        last = self._last_seen.get(adapter_id)
        intervals = self._intervals.get(adapter_id)
        if last is None or not intervals or horizon < 0:
            return 0.0
        elapsed = max(0.0, now - last)
        samples = np.asarray(intervals, dtype=float)
        at_risk = samples[samples >= elapsed]
        if at_risk.size == 0:
            return 0.0
        hits = int(np.count_nonzero(at_risk <= elapsed + horizon))
        return hits / int(at_risk.size)

    def rank_candidates(
        self,
        now: float,
        horizon: float,
        exclude: Optional[set[int]] = None,
        min_probability: float = 0.3,
    ) -> list[tuple[int, float]]:
        """Adapters likely to be used within ``horizon``, most likely first."""
        exclude = exclude or set()
        scored: list[tuple[int, float]] = []
        for adapter_id in self._last_seen:
            if adapter_id in exclude:
                continue
            p = self.probability_within(adapter_id, now, horizon)
            if p >= min_probability:
                scored.append((adapter_id, p))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    def use_count(self, adapter_id: int) -> int:
        return self._use_counts.get(adapter_id, 0)


@dataclass(frozen=True)
class RateForecast:
    """One arrival-rate forecast: a point estimate with a confidence band.

    Attributes:
        rate: Predicted mean arrival rate (requests/second) at the target
            time, clamped to >= 0.
        lower / upper: Confidence band around ``rate`` (both >= 0).  The
            band widens under sparse data — a forecast from one bucket is a
            guess, a forecast from thirty is a trend.
        horizon: Seconds ahead of "now" the forecast targets.
        basis: How the estimate was formed — ``"cold"`` (no history at all),
            ``"current"`` (too few buckets for a trend: the windowed observed
            rate), ``"trend"`` (least-squares extrapolation over the window),
            with ``"+seasonal"`` appended when the phase histogram's estimate
            exceeded the base and was used instead.
    """

    rate: float
    lower: float
    upper: float
    horizon: float
    basis: str


class ArrivalRateForecaster:
    """Online cluster arrival-rate forecast from windowed rate buckets.

    The caller (the autoscaler's control loop) feeds one bucket per tick via
    :meth:`observe`; the forecaster keeps the buckets covering the trailing
    ``window`` seconds and answers :meth:`forecast` queries for any horizon:

    * With no history the forecast is cold (rate 0 — the current observed
      rate of an empty window — and an empty band; the caller's reactive
      safety net owns cold starts).
    * With fewer than ``min_trend_samples`` buckets the point estimate is
      the windowed observed rate and the band half-width is
      ``rate / sqrt(n)`` — maximally wide at one sample, shrinking as the
      window fills.
    * With enough buckets, an ordinary-least-squares line through the
      (bucket midpoint, bucket rate) points is extrapolated to the target
      time; the band half-width is ``band_z * s * sqrt(1 + 1/n)`` with
      ``s`` the residual standard deviation, so a noisy window yields a
      wide band and a clean ramp a tight one.

    ``cycle`` (optional) enables the seasonal overlay: every bucket also
    lands in a phase histogram of ``seasonal_bins`` bins over the cycle
    (Shahrad-style, the same technique :class:`HistogramLoadPredictor`
    applies per adapter).  When the phase bin of the *target* time has
    history and its mean rate exceeds the base estimate, the seasonal rate
    wins — this is what lets the forecaster see a periodic burst coming
    before any trend has formed in the current cycle.  Its band widens
    with the *bin's* sparsity (half-width ``rate / sqrt(observations)``),
    so a phase estimate built from a single anomalous bucket carries no
    confidence until later cycles confirm it.

    Everything is deterministic: no RNG, no wall clock — two runs feeding
    identical buckets produce identical forecasts.
    """

    def __init__(self, window: float = 30.0, *, min_trend_samples: int = 4,
                 band_z: float = 1.0, cycle: Optional[float] = None,
                 seasonal_bins: int = 24) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if min_trend_samples < 2:
            raise ValueError(
                f"min_trend_samples must be >= 2, got {min_trend_samples}")
        if band_z < 0:
            raise ValueError(f"band_z must be >= 0, got {band_z}")
        if cycle is not None and cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {cycle}")
        if seasonal_bins < 1:
            raise ValueError(f"seasonal_bins must be >= 1, got {seasonal_bins}")
        self.window = window
        self.min_trend_samples = min_trend_samples
        self.band_z = band_z
        self.cycle = cycle
        self.seasonal_bins = seasonal_bins
        self._buckets: deque[tuple[float, float, int]] = deque()
        # Phase histograms; only touched when ``cycle`` is set.
        self._seasonal_time = [0.0] * seasonal_bins
        self._seasonal_count = [0.0] * seasonal_bins
        self._seasonal_obs = [0] * seasonal_bins

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, start: float, end: float, count: int) -> None:
        """Record one rate bucket: ``count`` arrivals over ``[start, end)``.

        A zero-width bucket carries no rate information and is ignored (it
        must not divide by zero); a negative span or count is an error.
        """
        if end < start:
            raise ValueError(f"bucket ends before it starts: [{start}, {end})")
        if count < 0:
            raise ValueError(f"bucket count must be >= 0, got {count}")
        if end == start:
            return  # zero-width window: no rate, no crash
        self._buckets.append((start, end, count))
        while self._buckets and self._buckets[0][1] <= end - self.window:
            self._buckets.popleft()
        if self.cycle is not None:
            bin_index = self._phase_bin((start + end) / 2.0)
            self._seasonal_time[bin_index] += end - start
            self._seasonal_count[bin_index] += count
            self._seasonal_obs[bin_index] += 1

    def sample_count(self) -> int:
        """Rate buckets currently inside the window."""
        return len(self._buckets)

    def observed_rate(self) -> float:
        """Windowed mean arrival rate: total arrivals over total span
        of the retained buckets (0.0 with no history)."""
        span = sum(end - start for start, end, _ in self._buckets)
        if span <= 0:
            return 0.0
        return sum(count for _, _, count in self._buckets) / span

    def _phase_bin(self, at_time: float) -> int:
        assert self.cycle is not None
        bin_index = int((at_time % self.cycle) / self.cycle * self.seasonal_bins)
        return min(bin_index, self.seasonal_bins - 1)

    def seasonal_rate(self, at_time: float) -> Optional[float]:
        """Mean historical rate of the phase bin containing ``at_time``,
        or ``None`` without a cycle or without history in that bin."""
        if self.cycle is None:
            return None
        bin_index = self._phase_bin(at_time)
        if self._seasonal_time[bin_index] <= 0:
            return None
        return self._seasonal_count[bin_index] / self._seasonal_time[bin_index]

    # ------------------------------------------------------------------ #
    # Forecast
    # ------------------------------------------------------------------ #
    def forecast(self, now: float, horizon: float) -> RateForecast:
        """Predict the arrival rate ``horizon`` seconds after ``now``."""
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        n = len(self._buckets)
        if n == 0:
            return RateForecast(rate=0.0, lower=0.0, upper=0.0,
                                horizon=horizon, basis="cold")
        target_time = now + horizon
        estimate, halfwidth, basis = self._base_estimate(target_time, n)
        seasonal = self.seasonal_rate(target_time)
        if seasonal is not None and seasonal > estimate:
            estimate = seasonal
            basis += "+seasonal"
            # The band must reflect the *seasonal* bin's sparsity, not the
            # trailing window's: a phase estimate built from one bucket is
            # one anomaly wide (half-width = the full rate, floor at zero),
            # tightening as the bin accumulates observations across cycles.
            obs = self._seasonal_obs[self._phase_bin(target_time)]
            halfwidth = max(halfwidth, estimate / math.sqrt(obs))
        return RateForecast(
            rate=estimate,
            lower=max(0.0, estimate - halfwidth),
            upper=estimate + halfwidth,
            horizon=horizon,
            basis=basis,
        )

    def _base_estimate(self, target_time: float,
                       n: int) -> tuple[float, float, str]:
        """(point estimate, band half-width, basis) before the seasonal
        overlay: windowed rate when sparse, OLS extrapolation otherwise."""
        current = self.observed_rate()
        if n < self.min_trend_samples:
            return current, current / math.sqrt(n), "current"
        mids = [(start + end) / 2.0 for start, end, _ in self._buckets]
        rates = [count / (end - start) for start, end, count in self._buckets]
        mean_t = sum(mids) / n
        mean_r = sum(rates) / n
        sxx = sum((t - mean_t) ** 2 for t in mids)
        if sxx <= 0:  # all buckets share one midpoint: no trend to fit
            return current, current / math.sqrt(n), "current"
        slope = sum((t - mean_t) * (r - mean_r)
                    for t, r in zip(mids, rates)) / sxx
        intercept = mean_r - slope * mean_t
        estimate = max(0.0, intercept + slope * target_time)
        residual_var = sum(
            (r - (intercept + slope * t)) ** 2 for t, r in zip(mids, rates)
        ) / n
        halfwidth = self.band_z * math.sqrt(residual_var) \
            * math.sqrt(1.0 + 1.0 / n)
        return estimate, halfwidth, "trend"
