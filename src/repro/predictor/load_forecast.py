"""Histogram-based per-adapter load forecasting (Serverless-in-the-Wild style).

§4.2.3 of the paper explores prefetching adapters for requests that are *not
yet queued*, driven by the histogram technique of Shahrad et al. [48]: keep a
per-adapter histogram of inter-arrival times and predict the next use from
the histogram's mass below a horizon.  The Chameleon prefetcher asks, every
refresh interval, which adapters are likely to be used within the horizon and
warms them into the cache if there is room.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Optional

import numpy as np


class HistogramLoadPredictor:
    """Per-adapter inter-arrival-time histograms with a fixed bin width.

    Args:
        bin_width: Histogram bin width in seconds.
        max_bins: Inter-arrivals beyond ``bin_width * max_bins`` land in an
            overflow bin (treated as "not soon").
        history: How many recent inter-arrivals to keep per adapter.
    """

    def __init__(self, bin_width: float = 1.0, max_bins: int = 240, history: int = 64) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self.max_bins = max_bins
        self.history = history
        self._last_seen: dict[int, float] = {}
        self._intervals: dict[int, deque] = defaultdict(lambda: deque(maxlen=history))
        self._use_counts: dict[int, int] = defaultdict(int)

    def record_use(self, adapter_id: int, now: float) -> None:
        """Record that a request for ``adapter_id`` arrived at time ``now``."""
        last = self._last_seen.get(adapter_id)
        if last is not None and now >= last:
            self._intervals[adapter_id].append(now - last)
        self._last_seen[adapter_id] = now
        self._use_counts[adapter_id] += 1

    def probability_within(self, adapter_id: int, now: float, horizon: float) -> float:
        """P(next use of ``adapter_id`` occurs within ``horizon`` seconds).

        Uses the empirical inter-arrival distribution conditioned on the time
        already elapsed since the adapter's last use (the hazard the histogram
        method approximates).  Unknown adapters get probability 0.
        """
        last = self._last_seen.get(adapter_id)
        intervals = self._intervals.get(adapter_id)
        if last is None or not intervals:
            return 0.0
        elapsed = max(0.0, now - last)
        samples = np.asarray(intervals, dtype=float)
        at_risk = samples[samples >= elapsed]
        if at_risk.size == 0:
            return 0.0
        hits = np.count_nonzero(at_risk <= elapsed + horizon)
        return hits / at_risk.size

    def rank_candidates(
        self,
        now: float,
        horizon: float,
        exclude: Optional[set] = None,
        min_probability: float = 0.3,
    ) -> list[tuple[int, float]]:
        """Adapters likely to be used within ``horizon``, most likely first."""
        exclude = exclude or set()
        scored = []
        for adapter_id in self._last_seen:
            if adapter_id in exclude:
                continue
            p = self.probability_within(adapter_id, now, horizon)
            if p >= min_probability:
                scored.append((adapter_id, p))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    def use_count(self, adapter_id: int) -> int:
        return self._use_counts.get(adapter_id, 0)
