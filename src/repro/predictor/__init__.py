"""Predictors: output-length proxy models and histogram load forecaster."""

from repro.predictor.output_length import BucketPredictor, OutputLengthPredictor
from repro.predictor.load_forecast import HistogramLoadPredictor

__all__ = ["OutputLengthPredictor", "BucketPredictor", "HistogramLoadPredictor"]
