"""Predictors: output-length proxy models and load/arrival forecasters."""

from repro.predictor.output_length import BucketPredictor, OutputLengthPredictor
from repro.predictor.load_forecast import (
    ArrivalRateForecaster,
    HistogramLoadPredictor,
    RateForecast,
)

__all__ = [
    "OutputLengthPredictor",
    "BucketPredictor",
    "HistogramLoadPredictor",
    "ArrivalRateForecaster",
    "RateForecast",
]
