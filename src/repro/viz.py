"""Terminal plots for experiment results (no plotting dependencies).

The offline environment has no matplotlib; these ASCII renderers make the
regenerated figures *look* like figures: multi-series line charts for the
load sweeps and timelines, bar charts for the grouped comparisons.  Used by
``python -m repro.cli <id> --plot``.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x@#%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps, max(0, int(round(frac * steps))))


def line_chart(
    x: Sequence[float],
    series: dict,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multiple y-series over a shared x-axis as an ASCII chart.

    ``series`` maps name -> list of y values (``None`` entries are skipped).
    """
    if not x or not series:
        raise ValueError("need at least one x point and one series")
    values = [v for ys in series.values() for v in ys if v is not None]
    if not values:
        raise ValueError("all series are empty")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(x), max(x)

    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for (name, ys), glyph in zip(series.items(), SERIES_GLYPHS):
        for xi, yi in zip(x, ys):
            if yi is None:
                continue
            col = _scale(xi, x_lo, x_hi, width)
            row = height - _scale(yi, lo, hi, height)
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = hi - (hi - lo) * i / height
        prefix = f"{y_value:10.3g} |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * (width + 1))
    lines.append(" " * 12 + f"{x_lo:<10.4g}{' ' * max(0, width - 18)}{x_hi:>10.4g}")
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), SERIES_GLYPHS)
    )
    lines.append(f"legend: {legend}")
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be equal-length and non-empty")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (_scale(value, 0.0, peak, width) if peak > 0 else 0)
        lines.append(f"{label.rjust(label_width)} |{bar} {value:.4g}{unit}")
    return "\n".join(lines)


def result_chart(result) -> Optional[str]:
    """Best-effort chart for an ExperimentResult.

    Numeric multi-column rows over a numeric leading column render as a line
    chart; single-row-per-category tables render as bars; anything else
    returns ``None`` (the caller falls back to the table).
    """
    rows = result.rows
    if not rows:
        return None
    columns = list(rows[0].keys())
    first = columns[0]
    numeric_x = all(isinstance(r.get(first), (int, float)) and r.get(first) is not None
                    for r in rows)
    value_columns = [
        c for c in columns[1:]
        if all(isinstance(r.get(c), (int, float)) or r.get(c) is None for r in rows)
        and any(isinstance(r.get(c), (int, float)) for r in rows)
    ]
    if numeric_x and len(rows) >= 3 and value_columns:
        x = [float(r[first]) for r in rows]
        series = {c: [r.get(c) for r in rows] for c in value_columns[:len(SERIES_GLYPHS)]}
        return line_chart(x, series, title=result.description, x_label=first)
    if not numeric_x and value_columns:
        column = value_columns[0]
        labels = [str(r[first]) for r in rows]
        values = [float(r[column]) if r[column] is not None else 0.0 for r in rows]
        return bar_chart(labels, values, title=f"{result.description} — {column}")
    return None
