"""Chameleon reproduction: adaptive caching + scheduling for many-adapter LLM serving.

Public API quick reference::

    from repro import build_system, synthesize_trace, SPLITWISE_PROFILE
    from repro.adapters import AdapterRegistry
    from repro.sim import RngStreams

    rng = RngStreams(seed=0)
    registry = AdapterRegistry.build(model=..., n_adapters=100)
    trace = synthesize_trace(SPLITWISE_PROFILE, rps=8.0, duration=120.0,
                             rng=rng.get("trace"), registry=registry)
    system = build_system("chameleon", registry=registry)
    system.run_trace(trace)
    print(system.summary())

See ``examples/quickstart.py`` for a complete walkthrough and
``repro.experiments`` for the per-figure reproduction harness.
"""

from repro.systems import PRESETS, System, build_system, default_bounds
from repro.workload.trace import (
    LMSYS_PROFILE,
    SPLITWISE_PROFILE,
    TRACE_PROFILES,
    WILDCHAT_PROFILE,
    synthesize_trace,
)

__version__ = "1.0.0"

__all__ = [
    "PRESETS",
    "System",
    "build_system",
    "default_bounds",
    "synthesize_trace",
    "SPLITWISE_PROFILE",
    "WILDCHAT_PROFILE",
    "LMSYS_PROFILE",
    "TRACE_PROFILES",
    "__version__",
]
