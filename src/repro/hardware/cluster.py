"""Multi-GPU organizations: tensor parallelism and data parallelism.

Tensor parallelism (TP) is modelled as one logical device whose memory is the
sum of the member GPUs and whose compute scales by the TP degree times a
sub-linear efficiency factor.  Adapter loads become sharded transfers with a
per-shard synchronization overhead, which is what makes loading a *bigger*
fraction of TTFT as TP grows (paper Figure 5).

Data parallelism (DP) is a set of independent engines behind a two-level
scheduler (§4.4): a global dispatcher routes each request to one engine, and
each engine keeps its own local scheduler and adapter cache (the paper
replicates the cache across DP engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.hardware.gpu import GpuDevice, GpuSpec
from repro.hardware.pcie import PcieLink, Transfer


#: Parallel efficiency of tensor-parallel compute (all-reduce overheads make
#: TP-N less than N-times faster; 0.82 matches common Megatron-style scaling).
TP_COMPUTE_EFFICIENCY = 0.82

#: Extra per-shard synchronization cost of a TP-sharded adapter load, seconds.
#: Calibrated against paper Figure 5 (loading = 68% of TTFT for rank 32 at
#: TP4 on Llama-70B): partitioning, per-GPU dispatch and synchronization
#: dominate the raw copy for sharded loads.
TP_SHARD_SYNC_OVERHEAD = 30e-3


class TensorParallelGroup(GpuDevice):
    """N GPUs executing one model replica with tensor parallelism.

    The group behaves like one big :class:`GpuDevice` (weights, KV and
    adapters are all sharded evenly, so aggregate byte accounting is exact)
    plus TP-aware compute scaling and sharded adapter transfers.
    """

    def __init__(self, spec: GpuSpec, tp_degree: int,
                 sync_overhead: float = TP_SHARD_SYNC_OVERHEAD,
                 compute_efficiency: float = TP_COMPUTE_EFFICIENCY) -> None:
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        super().__init__(spec, memory_bytes=spec.memory_bytes * tp_degree)
        self.tp_degree = tp_degree
        self.sync_overhead = sync_overhead
        self.compute_efficiency = compute_efficiency

    @property
    def compute_speedup(self) -> float:
        """Effective compute speed relative to a single GPU."""
        if self.tp_degree == 1:
            return 1.0
        return self.tp_degree * self.compute_efficiency

    def submit_adapter_load(
        self,
        link: PcieLink,
        nbytes: int,
        callback: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Load an adapter, sharded across the group's GPUs."""
        if self.tp_degree == 1:
            return link.submit(nbytes, callback=callback, tag=tag)
        return link.submit_sharded(
            nbytes, shards=self.tp_degree,
            per_shard_overhead=self.sync_overhead,
            callback=callback, tag=tag,
        )

    def adapter_load_time(self, link: PcieLink, nbytes: int) -> float:
        """Unloaded service time of a (possibly sharded) adapter load."""
        if self.tp_degree == 1:
            return link.transfer_time(nbytes)
        per_shard = self.sync_overhead + link.spec.setup_latency
        return link.transfer_time(nbytes) + self.tp_degree * per_shard


class DataParallelCluster:
    """A set of independent engines behind a global dispatcher.

    The dispatcher implements the two-level scheduling of §4.4.  Policies:

    * ``"least_loaded"`` — join the engine with the fewest in-flight requests
      (running + queued), the classic JSQ heuristic.
    * ``"round_robin"`` — cyclic assignment.
    * ``"adapter_affinity"`` — prefer the least-loaded engine among those that
      already have the request's adapter resident (falls back to JSQ); this
      exploits the per-engine adapter caches.
    """

    POLICIES = ("least_loaded", "round_robin", "adapter_affinity")

    def __init__(self, engines: Sequence, policy: str = "least_loaded") -> None:
        if not engines:
            raise ValueError("cluster needs at least one engine")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown dispatch policy {policy!r}; pick from {self.POLICIES}")
        self.engines = list(engines)
        self.policy = policy
        self._rr_next = 0

    def dispatch(self, request) -> int:
        """Pick an engine index for ``request`` and submit it there."""
        idx = self._pick(request)
        self.engines[idx].submit(request)
        return idx

    def _pick(self, request) -> int:
        if self.policy == "round_robin":
            idx = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.engines)
            return idx
        loads = [engine.in_flight_count() for engine in self.engines]
        if self.policy == "adapter_affinity" and request.adapter_id is not None:
            resident = [
                i for i, engine in enumerate(self.engines)
                if engine.adapter_manager.is_resident(request.adapter_id)
            ]
            if resident:
                return min(resident, key=lambda i: loads[i])
        return min(range(len(self.engines)), key=lambda i: loads[i])
