"""Multi-GPU organizations: tensor parallelism and data parallelism.

Tensor parallelism (TP) is modelled as one logical device whose memory is the
sum of the member GPUs and whose compute scales by the TP degree times a
sub-linear efficiency factor.  Adapter loads become sharded transfers with a
per-shard synchronization overhead, which is what makes loading a *bigger*
fraction of TTFT as TP grows (paper Figure 5).

Data parallelism (DP) is a set of independent engines behind a two-level
scheduler (§4.4): a global dispatcher routes each request to one engine, and
each engine keeps its own local scheduler and adapter cache (the paper
replicates the cache across DP engines).  The dispatcher owns a global
admission queue with backpressure: when every replica's batch is saturated,
arrivals wait at the cluster level (with per-request queue-delay accounting)
and replicas pull from the queue on finish events instead of having work
force-fed into an overloaded local queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.hardware.gpu import GpuDevice, GpuSpec
from repro.hardware.pcie import PcieLink, Transfer


#: Parallel efficiency of tensor-parallel compute (all-reduce overheads make
#: TP-N less than N-times faster; 0.82 matches common Megatron-style scaling).
TP_COMPUTE_EFFICIENCY = 0.82

#: Extra per-shard synchronization cost of a TP-sharded adapter load, seconds.
#: Calibrated against paper Figure 5 (loading = 68% of TTFT for rank 32 at
#: TP4 on Llama-70B): partitioning, per-GPU dispatch and synchronization
#: dominate the raw copy for sharded loads.
TP_SHARD_SYNC_OVERHEAD = 30e-3


class TensorParallelGroup(GpuDevice):
    """N GPUs executing one model replica with tensor parallelism.

    The group behaves like one big :class:`GpuDevice` (weights, KV and
    adapters are all sharded evenly, so aggregate byte accounting is exact)
    plus TP-aware compute scaling and sharded adapter transfers.
    """

    def __init__(self, spec: GpuSpec, tp_degree: int,
                 sync_overhead: float = TP_SHARD_SYNC_OVERHEAD,
                 compute_efficiency: float = TP_COMPUTE_EFFICIENCY) -> None:
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        super().__init__(spec, memory_bytes=spec.memory_bytes * tp_degree)
        self.tp_degree = tp_degree
        self.sync_overhead = sync_overhead
        self.compute_efficiency = compute_efficiency

    @property
    def compute_speedup(self) -> float:
        """Effective compute speed relative to a single GPU."""
        if self.tp_degree == 1:
            return 1.0
        return self.tp_degree * self.compute_efficiency

    def submit_adapter_load(
        self,
        link: PcieLink,
        nbytes: int,
        callback: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Load an adapter, sharded across the group's GPUs."""
        if self.tp_degree == 1:
            return link.submit(nbytes, callback=callback, tag=tag)
        return link.submit_sharded(
            nbytes, shards=self.tp_degree,
            per_shard_overhead=self.sync_overhead,
            callback=callback, tag=tag,
        )

    def adapter_load_time(self, link: PcieLink, nbytes: int) -> float:
        """Unloaded service time of a (possibly sharded) adapter load."""
        if self.tp_degree == 1:
            return link.transfer_time(nbytes)
        per_shard = self.sync_overhead + link.spec.setup_latency
        return link.transfer_time(nbytes) + self.tp_degree * per_shard


@dataclass
class DispatchStats:
    """Global-dispatcher telemetry (queueing, routing decisions)."""

    dispatched: int = 0        # requests handed to an engine
    queued: int = 0            # arrivals that waited in the global queue
    spills: int = 0            # bounded-affinity fallbacks past the bound
    queue_delays: list = field(default_factory=list)  # seconds, queued only


class DataParallelCluster:
    """A set of independent engines behind a global dispatcher.

    The dispatcher implements the two-level scheduling of §4.4: routing
    (``policy``) plus a global admission queue.  With ``backpressure`` on,
    an arrival finding *every* engine saturated (batch at capacity) waits in
    a cluster-level FIFO queue rather than being force-submitted; engines
    pull from the queue as finish events free batch slots, and the time each
    request spent waiting is stamped on ``request.dispatch_queue_delay``.

    Policies (see also the table in :mod:`repro.serving.replica`):

    * ``"least_loaded"`` — join the engine with the fewest in-flight requests
      (running + queued), the classic JSQ heuristic.
    * ``"round_robin"`` — cyclic assignment.
    * ``"p2c"`` — power-of-two-choices: sample two engines, join the less
      loaded; near-JSQ balance with O(1) load probes.
    * ``"token_weighted"`` — JSQ over in-flight *tokens* (remaining prefill +
      predicted remaining decode) instead of request count, so one huge
      request counts for what it costs.
    * ``"adapter_affinity"`` — prefer the least-loaded engine among those
      that already have the request's adapter resident (falls back to JSQ);
      exploits the per-engine adapter caches.  Unbounded: a hot adapter can
      pile its whole stream onto one replica.
    * ``"bounded_affinity"`` — adapter affinity with a spill bound: when the
      affine replica's load exceeds ``spill_factor`` times the cluster mean,
      fall back to JSQ (consistent-hashing-with-bounded-loads style).
    """

    POLICIES = (
        "least_loaded",
        "round_robin",
        "adapter_affinity",
        "p2c",
        "token_weighted",
        "bounded_affinity",
    )

    def __init__(
        self,
        engines: Sequence,
        policy: str = "least_loaded",
        *,
        backpressure: bool = True,
        spill_factor: float = 1.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not engines:
            raise ValueError("cluster needs at least one engine")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown dispatch policy {policy!r}; pick from {self.POLICIES}")
        if spill_factor < 1.0:
            raise ValueError(f"spill_factor must be >= 1.0, got {spill_factor}")
        self.engines = list(engines)
        self.policy = policy
        self.backpressure = backpressure
        self.spill_factor = spill_factor
        self.stats = DispatchStats()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._rr_next = 0
        self._queue: deque = deque()  # (request, enqueue_time) FIFO
        # Pull-based dispatch: drain the global queue on finish events.
        for engine in self.engines:
            register = getattr(engine, "on_finish", None)
            if callable(register):
                register(self._on_engine_finish)

    # ------------------------------------------------------------------ #
    # Dispatch path
    # ------------------------------------------------------------------ #
    def dispatch(self, request) -> Optional[int]:
        """Route ``request``: submit it to an engine, or queue it.

        Returns the engine index, or ``None`` when backpressure held the
        request in the global queue (it is submitted later, in arrival
        order, as finish events free capacity).
        """
        if self.backpressure and (self._queue or self._all_saturated()):
            # FIFO: nothing may overtake an already-queued arrival.
            self._queue.append((request, self._now()))
            self.stats.queued += 1
            self._drain()
            return None
        return self._submit(request)

    def queue_len(self) -> int:
        """Requests currently held in the global admission queue."""
        return len(self._queue)

    def pending_requests(self) -> list:
        """Requests still waiting in the global queue (never dispatched).

        Non-empty only when a run stops at a horizon while the cluster is
        backlogged; accounting must not lose these arrivals.
        """
        return [request for request, _ in self._queue]

    def _submit(self, request) -> int:
        candidates = None
        if self.backpressure:
            # Never force-feed a saturated engine while another has room —
            # that is the exact failure mode the global queue exists to
            # prevent (matters for routing policies that don't follow load).
            unsaturated = [
                i for i, engine in enumerate(self.engines)
                if not self._saturated(engine)
            ]
            if unsaturated:
                candidates = unsaturated
        idx = self._pick(request, candidates)
        self.engines[idx].submit(request)
        self.stats.dispatched += 1
        return idx

    def _on_engine_finish(self, request) -> None:
        self._drain()

    def _drain(self) -> None:
        while self._queue and not self._all_saturated():
            request, enqueued_at = self._queue.popleft()
            request.dispatch_queue_delay = self._now() - enqueued_at
            self.stats.queue_delays.append(request.dispatch_queue_delay)
            self._submit(request)

    def _now(self) -> float:
        sim = getattr(self.engines[0], "sim", None)
        return sim.now if sim is not None else 0.0

    def _all_saturated(self) -> bool:
        return all(self._saturated(engine) for engine in self.engines)

    @staticmethod
    def _saturated(engine) -> bool:
        checker = getattr(engine, "is_saturated", None)
        return checker() if callable(checker) else False

    # ------------------------------------------------------------------ #
    # Routing policies
    # ------------------------------------------------------------------ #
    def _load(self, idx: int) -> float:
        engine = self.engines[idx]
        if self.policy == "token_weighted":
            probe = getattr(engine, "in_flight_token_load", None)
            if callable(probe):
                return probe()
        return engine.in_flight_count()

    def _pick(self, request, candidates: Optional[list] = None) -> int:
        """Pick an engine index among ``candidates`` (default: all)."""
        n = len(self.engines)
        if candidates is None:
            candidates = list(range(n))
        if len(candidates) == 1:
            return candidates[0]
        if self.policy == "round_robin":
            eligible = set(candidates)
            for _ in range(n):
                idx = self._rr_next
                self._rr_next = (self._rr_next + 1) % n
                if idx in eligible:
                    return idx
            return candidates[0]  # unreachable: candidates is non-empty
        if self.policy == "p2c":
            i, j = (
                candidates[int(k)]
                for k in self._rng.choice(len(candidates), size=2, replace=False)
            )
            if self._load(i) == self._load(j):
                return min(i, j)
            return i if self._load(i) < self._load(j) else j
        loads = {i: self._load(i) for i in candidates}
        if (
            self.policy in ("adapter_affinity", "bounded_affinity")
            and request.adapter_id is not None
        ):
            resident = [
                i for i in candidates
                if self.engines[i].adapter_manager.is_resident(request.adapter_id)
            ]
            if resident:
                best = min(resident, key=lambda i: loads[i])
                if self.policy == "adapter_affinity":
                    return best
                bound = self.spill_factor * max(
                    1.0, sum(loads.values()) / len(loads))
                if loads[best] <= bound:
                    return best
                self.stats.spills += 1  # affine replica too hot: spill to JSQ
        return min(candidates, key=lambda i: loads[i])
