"""Multi-GPU organizations: tensor parallelism and data parallelism.

Tensor parallelism (TP) is modelled as one logical device whose memory is the
sum of the member GPUs and whose compute scales by the TP degree times a
sub-linear efficiency factor.  Adapter loads become sharded transfers with a
per-shard synchronization overhead, which is what makes loading a *bigger*
fraction of TTFT as TP grows (paper Figure 5).

Data parallelism (DP) is a set of independent engines behind a two-level
scheduler (§4.4): a global dispatcher routes each request to one engine, and
each engine keeps its own local scheduler and adapter cache (the paper
replicates the cache across DP engines).  The dispatcher owns a global
admission queue with backpressure: when every replica's batch is saturated,
arrivals wait at the cluster level (with per-request queue-delay accounting)
and replicas pull from the queue on finish events instead of having work
force-fed into an overloaded local queue.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.hardware.dispatch_index import MinLoadHeap, SelectableBitset
from repro.hardware.gpu import GpuDevice, GpuSpec
from repro.hardware.pcie import PcieLink, Transfer


#: Parallel efficiency of tensor-parallel compute (all-reduce overheads make
#: TP-N less than N-times faster; 0.82 matches common Megatron-style scaling).
TP_COMPUTE_EFFICIENCY = 0.82

#: Extra per-shard synchronization cost of a TP-sharded adapter load, seconds.
#: Calibrated against paper Figure 5 (loading = 68% of TTFT for rank 32 at
#: TP4 on Llama-70B): partitioning, per-GPU dispatch and synchronization
#: dominate the raw copy for sharded loads.
TP_SHARD_SYNC_OVERHEAD = 30e-3


class TensorParallelGroup(GpuDevice):
    """N GPUs executing one model replica with tensor parallelism.

    The group behaves like one big :class:`GpuDevice` (weights, KV and
    adapters are all sharded evenly, so aggregate byte accounting is exact)
    plus TP-aware compute scaling and sharded adapter transfers.
    """

    def __init__(self, spec: GpuSpec, tp_degree: int,
                 sync_overhead: float = TP_SHARD_SYNC_OVERHEAD,
                 compute_efficiency: float = TP_COMPUTE_EFFICIENCY) -> None:
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        super().__init__(spec, memory_bytes=spec.memory_bytes * tp_degree)
        self.tp_degree = tp_degree
        self.sync_overhead = sync_overhead
        self.compute_efficiency = compute_efficiency

    @property
    def compute_speedup(self) -> float:
        """Effective compute speed relative to a single GPU."""
        if self.tp_degree == 1:
            return 1.0
        return self.tp_degree * self.compute_efficiency

    def submit_adapter_load(
        self,
        link: PcieLink,
        nbytes: int,
        callback: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Load an adapter, sharded across the group's GPUs."""
        if self.tp_degree == 1:
            return link.submit(nbytes, callback=callback, tag=tag)
        return link.submit_sharded(
            nbytes, shards=self.tp_degree,
            per_shard_overhead=self.sync_overhead,
            callback=callback, tag=tag,
        )

    def adapter_load_time(self, link: PcieLink, nbytes: int) -> float:
        """Unloaded service time of a (possibly sharded) adapter load."""
        if self.tp_degree == 1:
            return link.transfer_time(nbytes)
        per_shard = self.sync_overhead + link.spec.setup_latency
        return link.transfer_time(nbytes) + self.tp_degree * per_shard


@dataclass
class TenantBook:
    """Per-tenant dispatch ledger (one per lane; fairness dispatch only).

    All counters are *offers and outcomes at this cluster*: a migrated
    request re-offered after a crash counts ``submitted`` again, exactly as
    it counts ``DispatchStats.arrivals`` again.  At any instant

        submitted + stolen == admitted + shed + donated + waiting

    holds exactly per tenant, where ``waiting`` is the tenant's lane length
    plus its entries still parked in the shared deprioritized lane (the
    invariant suite checks it), and every counter summed over the books
    equals its cluster-wide ``DispatchStats`` twin.  ``admitted - borrowed - deprioritized`` is bounded by the lane's
    token bucket (burst + rate x horizon) — the quota-ceiling invariant; the
    deprioritized lane bypasses quota because it only drains idle capacity
    by construction.
    """

    weight: float = 1.0        # DRR quantum (max(1, class weight))
    submitted: int = 0         # offers to the dispatcher (incl. migrations)
    admitted: int = 0          # handed to an engine here
    queued: int = 0            # offers that waited in a lane
    shed: int = 0              # rejected by the SLO policy
    deprioritized: int = 0     # moved to the shared low-priority lane
    throttled: int = 0         # lane visits skipped on an empty token bucket
    borrowed: int = 0          # admissions past the cap while capacity idled
    donated: int = 0           # lane entries handed to a sibling shard
    stolen: int = 0            # entries accepted from a sibling's lanes
    lost: int = 0              # stranded by replica failures
    virtual_time: float = 0.0  # cumulative admitted service / weight


class _TokenBucket:
    """Request-rate token bucket: ``rate`` tokens/s, depth ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # a fresh lane may burst immediately
        self.stamp = now

    def try_take(self, now: float) -> bool:
        """Spend one token if the bucket has one (refilled lazily)."""
        if now > self.stamp:
            self.tokens = min(
                self.burst, self.tokens + self.rate * (now - self.stamp))
            self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens the bucket would hold at ``now`` (no refill side effect)."""
        if now <= self.stamp:
            return self.tokens
        return min(self.burst, self.tokens + self.rate * (now - self.stamp))


@dataclass
class DispatchStats:
    """Global-dispatcher telemetry (queueing, routing, SLO admission)."""

    arrivals: int = 0          # every request offered to the dispatcher
    dispatched: int = 0        # requests handed to an engine
    finishes: int = 0          # engine finish events observed cluster-wide
    queued: int = 0            # arrivals that waited in a cluster queue
    spills: int = 0            # bounded-affinity fallbacks past the bound
    shed: int = 0              # arrivals rejected by the SLO policy
    deprioritized: int = 0     # arrivals moved to the low-priority lane
    failures: int = 0          # replica crash events (fault injection)
    stalls: int = 0            # transient-stall fault windows opened
    migrations: int = 0        # requests re-dispatched off a dead/draining
    #                            replica (each re-offer counts once)
    lost: int = 0              # requests stranded forever by a failure
    donated: int = 0           # queued requests handed to a sibling shard
    stolen: int = 0            # requests accepted from a sibling's queue
    queue_delays: list = field(default_factory=list)  # seconds, queued only
    #: tenant id -> TenantBook; populated only under a TenantFairnessPolicy
    #: (empty dict otherwise — the anonymous path never touches it).
    tenants: dict = field(default_factory=dict)


#: EWMA weight of the newest cluster-wide inter-finish interval sample in the
#: dispatcher's queue-wait estimator (higher = more reactive, noisier).
FINISH_INTERVAL_EWMA_ALPHA = 0.2


class DataParallelCluster:
    """A set of independent engines behind a global dispatcher.

    The dispatcher implements the two-level scheduling of §4.4: routing
    (``policy``) plus a global admission queue.  With ``backpressure`` on,
    an arrival finding *every* engine saturated (batch at capacity) waits in
    a cluster-level FIFO queue rather than being force-submitted; engines
    pull from the queue as finish events free batch slots, and the time each
    request spent waiting is stamped on ``request.dispatch_queue_delay``.

    **SLO admission** (``slo_policy``): whenever an arrival would have to
    queue, the dispatcher estimates its queue wait as ``(fifo position) x``
    an EWMA of cluster-wide inter-finish intervals (each finish event admits
    one queued request, so the finish rate *is* the drain rate).  An arrival
    whose estimate exceeds its TTFT deadline is past the knee: it is either
    shed (rejected, with accounting) or deprioritized into a low-priority
    lane that drains only while the FIFO lane is empty — new deadline-
    feasible arrivals may overtake the low lane, but never the FIFO lane.

    **Heterogeneous fleets**: engines exposing a ``capability()`` probe (a
    relative throughput weight; see ``ServingEngine.capability``) get every
    load reading normalized by it, so JSQ/p2c/token-weighted routing and the
    bounded-affinity spill bound compare *utilization* rather than raw
    backlog and a fast replica is offered proportionally more work.
    Saturation is inherently per-replica (each engine's own batch cap) and
    needs no normalization.  Homogeneous fleets are bit-for-bit unaffected.
    Pass a ``capability_estimator`` (an
    :class:`~repro.serving.autoscaler.ObservedCapabilityEstimator`) to derive
    the weights from *observed* per-replica service rates instead of specs —
    robust to PCIe-bound workloads where spec capability misleads, with a
    spec prior for replicas that have no history yet.

    **Elastic fleets**: every engine sits behind a
    :class:`~repro.serving.replica.ReplicaHandle`; all routing, saturation
    probes, capability normalization and queue drains operate over the
    *current active set*.  :meth:`add_replica` grows the fleet mid-run
    (cold-start delays apply before the newcomer becomes a dispatch target);
    :meth:`drain_replica` lets a replica finish its in-flight work while
    accepting nothing new, then retires it.  Engine indices are stable for
    the life of the run — retired replicas keep their slot, so per-replica
    accounting never shifts.  A cluster built from a static engine list has
    every handle ACTIVE from the start and behaves bit-for-bit as before.

    **Faults**: :meth:`fail_replica` kills a replica (terminal FAILED state,
    pending engine events bulk-cancelled via ``Simulator.cancel_if``) and
    migrates its recoverable work back through this dispatch path — or
    strands it as ``lost`` for the no-recovery baseline;
    :meth:`stall_replica` opens a transient window during which the replica
    accepts nothing (it keeps serving in-flight work and rejoins
    afterwards).  Dispatch eligibility everywhere is
    ``ReplicaHandle.accepts_work``: ACTIVE and not stalled.

    Policies (see also the table in :mod:`repro.serving.replica`):

    * ``"least_loaded"`` — join the engine with the fewest in-flight requests
      (running + queued), the classic JSQ heuristic.
    * ``"round_robin"`` — cyclic assignment.
    * ``"p2c"`` — power-of-two-choices: sample two engines, join the less
      loaded; near-JSQ balance with O(1) load probes.
    * ``"token_weighted"`` — JSQ over in-flight *tokens* (remaining prefill +
      predicted remaining decode) instead of request count, so one huge
      request counts for what it costs.
    * ``"adapter_affinity"`` — prefer the least-loaded engine among those
      that already have the request's adapter resident (falls back to JSQ);
      exploits the per-engine adapter caches.  Unbounded: a hot adapter can
      pile its whole stream onto one replica.
    * ``"bounded_affinity"`` — adapter affinity with a spill bound: when the
      affine replica's load exceeds ``spill_factor`` times the cluster mean,
      fall back to JSQ (consistent-hashing-with-bounded-loads style).
    """

    POLICIES = (
        "least_loaded",
        "round_robin",
        "adapter_affinity",
        "p2c",
        "token_weighted",
        "bounded_affinity",
    )

    def __init__(
        self,
        engines: Sequence,
        policy: str = "least_loaded",
        *,
        backpressure: bool = True,
        spill_factor: float = 1.5,
        slo_policy=None,
        normalize_capability: bool = True,
        rng: Optional[np.random.Generator] = None,
        capability_estimator=None,
        sim=None,
        dispatch_index: bool = True,
        tenancy=None,
    ) -> None:
        if not engines:
            raise ValueError("cluster needs at least one engine")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown dispatch policy {policy!r}; pick from {self.POLICIES}")
        if spill_factor < 1.0:
            raise ValueError(f"spill_factor must be >= 1.0, got {spill_factor}")
        if slo_policy is not None and not backpressure:
            raise ValueError(
                "SLO admission needs backpressure: the knee is the global "
                "queue, which force-submission bypasses")
        if tenancy is not None and not backpressure:
            raise ValueError(
                "tenant fairness needs backpressure: quotas and DRR act on "
                "the global queue, which force-submission bypasses")
        self.engines = list(engines)
        self.policy = policy
        self.backpressure = backpressure
        self.spill_factor = spill_factor
        self.slo_policy = slo_policy
        self.tenancy = tenancy
        self.normalize_capability = normalize_capability
        self.capability_estimator = capability_estimator
        self.stats = DispatchStats()
        # Observability hooks (see repro.obs): both default to None, and
        # every hook site is guarded by an `is not None` attribute check —
        # the disabled path never makes a call.  `attach_tracer` /
        # `attach_metrics` set them after construction; the tid fields are
        # pre-seeded for shard 0 so a tracer attached without a region
        # still lands on valid tracks.
        self._tracer = None
        self._trace_shard = 0
        self._trace_tid = 1           # dispatcher_tid(0)
        self._replica_tid_base = 1000  # replica_tid(0, i) - i
        self._metrics = None
        self._metrics_prefix = ""
        self._metrics_ttft = None
        self._sim = sim
        self._sim_memo = None  # resolved clock, cached on first use
        self._rng = rng if rng is not None else np.random.default_rng(0)  # simlint: ignore[D001] -- dispatch RNG byte stream pinned since PR 1; moving it into RngStreams would re-pair every fig26-fig30 baseline
        self._rr_next = 0
        self._queue: deque = deque()      # (request, enqueue_time) FIFO lane
        self._low_queue: deque = deque()  # deprioritized lane (SLO policy)
        self._shed: list = []             # arrivals rejected by SLO admission
        self._lost: list = []             # stranded by replica failures
        # Tenant-fairness lane state (used only with a tenancy policy; the
        # anonymous path never touches it beyond the `_fair_backlog == 0`
        # reads folded into can_admit/queue_len).  Lanes live in dicts keyed
        # by tenant id, but every dispatch-path iteration walks `_lane_ring`
        # — the deterministic activation-order list — never the dicts.
        self._lanes: dict = {}            # tenant -> deque[(request, t)]
        self._lane_ring: list = []        # lane keys, activation order
        self._lane_cursor: int = 0        # DRR position in _lane_ring
        self._visit_open: bool = False    # mid-visit at the cursor lane
        self._deficit: dict = {}          # tenant -> carried DRR deficit
        self._lane_quantum: dict = {}     # tenant -> max(1, class weight)
        self._buckets: dict = {}          # tenant -> _TokenBucket (capped)
        self._fair_backlog: int = 0       # total queued across lanes
        #: One record per migrated request re-offer: time, request id, the
        #: replica it was evacuated from, and its retry ordinal.
        self.migration_log: list[dict] = []
        self._stall_until: dict[int, float] = {}  # replica -> stall deadline
        # Queue-wait estimator state (cluster-wide inter-finish EWMA).
        # Finishes sharing one timestamp (a batch completing in one engine
        # iteration) count as one drain event of that size, not as zero-
        # length intervals — those would collapse the EWMA at every batch
        # boundary and make shed decisions track batch phase, not backlog.
        self._finish_interval_ewma: Optional[float] = None
        self._last_finish_time: Optional[float] = None
        self._finish_batch = 0  # finishes observed at _last_finish_time
        # Lifecycle: every engine sits behind a ReplicaHandle; the initial
        # fleet starts ACTIVE.  Lazy import — the hardware layer must not
        # import the serving package at module load (cycle).
        from repro.serving.replica import ReplicaHandle
        now = self._now()
        self.handles = [
            ReplicaHandle(engine=engine, index=i, provisioned_at=now,
                          active_at=now)
            for i, engine in enumerate(self.engines)
        ]
        #: (time, replica index, new state) for every lifecycle transition.
        self.lifecycle_log: list[tuple] = [
            (now, handle.index, handle.state.value) for handle in self.handles
        ]
        # Incremental load bookkeeping: every dispatch probe used to walk the
        # engine's running + queued sets (in_flight_count), and the
        # saturation sweep repeated that per replica per drain step —
        # O(fleet x batch) work per arrival that dominated the hot path.
        # Instead, for engines whose probes we can prove are pure counters
        # (an unmodified ServingEngine), maintain the in-flight count here:
        # +1 on submit, -1 on finish, resynced from the engine on the rare
        # bulk moves (crash evacuation, drain migration).  Engines with
        # custom probe overrides (test fakes, experimental engines) keep the
        # live-probe path, bit-for-bit.
        self._inflight: list[int] = []
        self._fast: list[bool] = []
        self._batch_cap: list[float] = []
        self._is_eligible: list[bool] = []
        self._all_fast: bool = True  # every engine on the cached fast path
        self._uniform_batch_cap: bool = True  # one shared max_batch_size
        # O(log n) dispatch indices over those counters (PR 8).  Which
        # structures exist depends on the policy; whether they are *used*
        # is decided per arrival by `_index_active`, which proves the pick
        # bit-for-bit equal to the linear scan before trusting an index —
        # otherwise `_submit` falls back to the scan, unchanged.  Pass
        # ``dispatch_index=False`` to force the scan everywhere (the
        # differential tests and the linear-scan benchmark baseline).
        self._use_index = bool(dispatch_index)
        self._count_heap: Optional[MinLoadHeap] = None
        self._token_heap: Optional[MinLoadHeap] = None
        self._unsat_bits: Optional[SelectableBitset] = None
        self._heap_limit = 4 * len(self.engines) + 64
        if self._use_index:
            if policy in ("least_loaded", "adapter_affinity", "bounded_affinity"):
                self._count_heap = MinLoadHeap()
            if policy == "token_weighted":
                self._token_heap = MinLoadHeap()
            if policy in ("p2c", "round_robin"):
                self._unsat_bits = SelectableBitset([])
        self._token_load: list[float] = []   # mirrored in_flight_token_load
        self._token_fast: list[bool] = []    # stock token probe (mirror safe)
        self._all_token_fast: bool = True
        self._total_inflight: int = 0        # fast engines, fleet-wide
        self._sum_eligible_inflight: int = 0  # fast engines, eligible only
        self._slow_all: list[int] = []       # engines needing live probes
        #: adapter id -> ascending replica indices that (recently) held it
        #: resident.  A lazily-pruned *superset*: entries are added on the
        #: adapter manager's ready callback (the only transition into
        #: RESIDENT) and dropped when a pick observes ``is_resident`` is no
        #: longer true — eviction paths need no hook of their own.
        self._resident: dict[int, list[int]] = {}
        for engine in self.engines:
            self._track_engine(engine)
        # Dispatch-eligibility cache: lifecycle and stall transitions are
        # rare, so the `accepts_work` sweep is recomputed only then.  The
        # saturation caches make `_all_saturated` O(1) on a stock fleet:
        # `_n_fast_unsat` counts eligible fast engines with headroom and is
        # maintained incrementally on submit/finish; `_slow_eligible` lists
        # the eligible engines that still need a live probe (test fakes).
        self._eligible: list[int] = []
        self._slow_eligible: list[int] = []
        self._n_fast_unsat: int = 0
        #: Region-router hooks fired whenever a capacity-freeing event
        #: (finish, activation, stall end) leaves this cluster able to admit
        #: — the work-stealing trigger.  Empty for a standalone cluster, in
        #: which case the notify path is a no-op.
        self._capacity_callbacks: list = []
        self._refresh_eligible()
        # Per-engine capability weights, normalized to mean 1.0 over the
        # active set.  Identical capabilities (or none reported) keep every
        # weight at exactly 1.0 so homogeneous clusters behave bit-for-bit
        # as before.
        self._caps_raw = [self._engine_capability(engine) for engine in self.engines]
        if capability_estimator is not None:
            for index, cap in enumerate(self._caps_raw):
                capability_estimator.register(index, cap)
        self._capability = [1.0] * len(self.engines)
        self._recompute_weights()
        # Pull-based dispatch: drain the global queue on finish events.
        for handle in self.handles:
            self._register_finish(handle)

    @staticmethod
    def _engine_capability(engine) -> float:
        probe = getattr(engine, "capability", None)
        cap = float(probe()) if callable(probe) else 1.0
        if cap <= 0:
            raise ValueError(f"engine capability must be > 0, got {cap}")
        return cap

    def _register_finish(self, handle) -> None:
        register = getattr(handle.engine, "on_finish", None)
        if callable(register):
            register(lambda request, _h=handle: self._on_engine_finish(_h, request))

    # ------------------------------------------------------------------ #
    # Incremental load bookkeeping (hot-path caches)
    # ------------------------------------------------------------------ #
    def _track_engine(self, engine) -> None:
        """Append load-cache slots for a (new) engine.

        The cached-count fast path is only safe when the engine's load and
        saturation probes are the stock ``ServingEngine`` counters — a
        subclass or test fake overriding either gets live probes instead.
        Lazy import: the hardware layer must not import the serving package
        at module load (cycle).
        """
        from repro.serving.adapter_manager import AdapterState
        from repro.serving.engine import ServingEngine
        index = len(self._fast)
        fast = (
            isinstance(engine, ServingEngine)
            and type(engine).in_flight_count is ServingEngine.in_flight_count
            and type(engine).is_saturated is ServingEngine.is_saturated
        )
        self._fast.append(fast)
        self._inflight.append(engine.in_flight_count() if fast else 0)
        self._total_inflight += self._inflight[index]
        self._batch_cap.append(
            float(engine.config.max_batch_size) if fast else float("inf"))
        # Not dispatch-eligible until the next lifecycle refresh.
        self._is_eligible.append(False)
        self._all_fast = fast and self._all_fast
        self._uniform_batch_cap = min(self._batch_cap) == max(self._batch_cap)
        if not fast:
            self._slow_all.append(index)
        self._heap_limit = 4 * len(self._fast) + 64
        # Token-load mirror: safe only when the probe is the stock
        # ServingEngine method, so the engine's load-change notifications
        # are guaranteed to cover every mutation the probe can observe.
        token_fast = (
            fast
            and type(engine).in_flight_token_load
            is ServingEngine.in_flight_token_load
        )
        self._token_fast.append(token_fast)
        self._all_token_fast = token_fast and self._all_token_fast
        if token_fast and self._token_heap is not None:
            self._token_load.append(engine.in_flight_token_load())
            engine.on_load_change(
                lambda _i=index: self._on_token_load_change(_i))
        else:
            self._token_load.append(0.0)
        # Residency index for the affinity policies: mirror every
        # transition into RESIDENT (the ready callback is the only one).
        if self._count_heap is not None and self.policy != "least_loaded":
            manager = getattr(engine, "adapter_manager", None)
            register = getattr(manager, "on_ready", None)
            if callable(register):
                register(lambda aid, _i=index: self._note_resident(_i, aid))
                for aid, entry in getattr(manager, "entries", {}).items():
                    if entry.state is AdapterState.RESIDENT:
                        self._note_resident(index, aid)

    def _refresh_eligible(self) -> None:
        """Recompute the dispatch-eligibility caches (same order as the
        ``accepts_work`` sweep they replace: ascending replica index).

        Lifecycle and stall transitions are the only triggers, so this is
        also where every O(1) fleet counter (active/fleet/holding/failed,
        the autoscaler's per-tick reads) and every dispatch index is
        rebuilt from scratch — an O(n) sweep per *transition* instead of
        per tick or per arrival."""
        self._eligible = [h.index for h in self.handles if h.accepts_work]
        self._is_eligible = [False] * len(self.engines)
        self._slow_eligible = []
        n_unsat = 0
        sum_eligible = 0
        for idx in self._eligible:
            self._is_eligible[idx] = True
            if self._fast[idx]:
                sum_eligible += self._inflight[idx]
                if self._inflight[idx] < self._batch_cap[idx]:
                    n_unsat += 1
            else:
                self._slow_eligible.append(idx)
        self._n_fast_unsat = n_unsat
        self._sum_eligible_inflight = sum_eligible
        # O(1) fleet-composition counters (ascending-index sweeps, same
        # membership as the per-call scans they replace).
        n_active = n_in_fleet = n_holding = n_failed = 0
        active: list[int] = []
        serving: list[int] = []
        for handle in self.handles:
            if handle.is_active:
                n_active += 1
                active.append(handle.index)
            if handle.is_active or handle.is_draining:
                serving.append(handle.index)
            if handle.in_fleet:
                n_in_fleet += 1
            if handle.is_failed:
                n_failed += 1
            elif not handle.is_retired:
                n_holding += 1
        self._n_active = n_active
        self._n_in_fleet = n_in_fleet
        self._n_holding = n_holding
        self._n_failed = n_failed
        self._active_cache = active
        self._serving_cache = serving
        # Rebuild the dispatch indices over the new membership.
        self._heap_limit = 4 * len(self.engines) + 64
        inflight = self._inflight
        if self._count_heap is not None:
            self._count_heap.rebuild(
                (inflight[i], i) for i in self._eligible if self._fast[i])
        if self._token_heap is not None:
            token = self._token_load
            for i in self._eligible:  # self-correcting: re-probe live
                if self._token_fast[i]:
                    token[i] = self.engines[i].in_flight_token_load()
            self._token_heap.rebuild(
                (token[i], i) for i in self._eligible if self._token_fast[i])
        if self._unsat_bits is not None:
            fast, cap = self._fast, self._batch_cap
            self._unsat_bits = SelectableBitset(
                self._is_eligible[i] and fast[i] and inflight[i] < cap[i]
                for i in range(len(self.engines)))

    def _count(self, idx: int) -> int:
        """In-flight request count of engine ``idx`` (cached when safe;
        0 for engines without a probe, like ``ReplicaHandle.in_flight``)."""
        if self._fast[idx]:
            return self._inflight[idx]
        probe = getattr(self.engines[idx], "in_flight_count", None)
        return probe() if callable(probe) else 0

    def _saturated_at(self, idx: int) -> bool:
        """Saturation probe of engine ``idx`` (cached when safe)."""
        if self._fast[idx]:
            return self._inflight[idx] >= self._batch_cap[idx]
        return self._saturated(self.engines[idx])

    def _resync_load(self, idx: int) -> None:
        """Re-read engine ``idx``'s true in-flight count after a bulk move
        (crash evacuation, drain migration) that bypassed submit/finish."""
        if self._fast[idx]:
            stale = self._inflight[idx]
            self._inflight[idx] = self.engines[idx].in_flight_count()
            self._total_inflight += self._inflight[idx] - stale
            self._refresh_eligible()  # the saturation count may have moved

    def _recompute_weights(self) -> None:
        """Refresh per-engine capability weights over the *active* set.

        Weights of non-active replicas stay at 1.0 — they receive no new
        work, so their value never feeds a routing decision.  With a
        capability estimator the weights track observed service rates;
        otherwise they are the spec-derived probes captured at registration.
        A static homogeneous fleet keeps every weight at exactly 1.0.
        """
        # The active set only moves on lifecycle transitions, which all
        # refresh the cache before landing here — estimator-driven calls
        # (one per finish sample) reuse it instead of sweeping the fleet.
        active = self._active_cache
        self._capability = [1.0] * len(self.engines)
        self._uniform_caps = True  # routing may skip the division entirely
        if not active or not self.normalize_capability:
            return
        if self.capability_estimator is not None:
            weights = self.capability_estimator.weights(active)
            caps = [weights[i] for i in active]
        else:
            caps = [self._caps_raw[i] for i in active]
        if max(caps) == min(caps):
            return
        mean_cap = sum(caps) / len(caps)
        for index, cap in zip(active, caps):
            self._capability[index] = cap / mean_cap
        self._uniform_caps = False

    # ------------------------------------------------------------------ #
    # Dispatch path
    # ------------------------------------------------------------------ #
    def dispatch(self, request) -> Optional[int]:
        """Route ``request``: submit it to an engine, queue it, or shed it.

        Returns the engine index, or ``None`` when backpressure held the
        request in a cluster queue (it is submitted later, FIFO lane in
        arrival order, as finish events free capacity) or the SLO policy
        shed it (``request.shed`` is set; it never runs).

        An elastic fleet can be momentarily replica-less (everything still
        provisioning, or draining out): such arrivals always wait at the
        cluster — backpressure or not, there is nowhere to submit — and are
        released when a replica activates.

        With a :class:`~repro.serving.admission.TenantFairnessPolicy`
        attached (``tenancy=``), waiting arrivals park in per-tenant lanes
        drained by deficit round-robin under token-bucket rate caps instead
        of the single FIFO — see :meth:`_dispatch_fair`.
        """
        if self.tenancy is not None:
            return self._dispatch_fair(request)
        self.stats.arrivals += 1
        if self.can_admit():
            return self._submit(request)
        # The arrival must wait: consult the SLO policy before the FIFO
        # lane commits capacity to a request that cannot meet its deadline.
        if self.slo_policy is not None:
            deadline = self.slo_policy.deadline_for(request)
            if self.estimated_queue_wait() > deadline:
                if self.slo_policy.mode == "shed":
                    request.shed = True
                    self.stats.shed += 1
                    self._shed.append(request)
                    if self._tracer is not None:
                        self._tracer.instant(
                            "slo_shed", self._now(), self._trace_tid,
                            request_id=request.request_id,
                            **self.slo_policy.trace_args(request, deadline))
                    return None
                request.deprioritized = True
                self.stats.deprioritized += 1
                self.stats.queued += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "slo_deprioritize", self._now(), self._trace_tid,
                        request_id=request.request_id,
                        **self.slo_policy.trace_args(request, deadline))
                self._low_queue.append((request, self._now()))
                self._drain()
                return None
        # FIFO lane: nothing may overtake an already-queued arrival.
        self._queue.append((request, self._now()))
        self.stats.queued += 1
        self._drain()
        return None

    def can_admit(self) -> bool:
        """True when an arrival offered right now would be submitted to an
        engine immediately (no queueing, no shed): some replica is eligible
        and, under backpressure, nothing is already waiting and not every
        eligible replica is saturated.  O(1) on a stock fleet — the region
        router calls this per arrival to decide spills, and the
        work-stealing loop calls it per steal."""
        return self._has_available() and not (
            self.backpressure and (
                self._queue or self._fair_backlog or self._all_saturated()))

    def estimated_queue_wait(self) -> float:
        """Predicted queue wait of the next FIFO arrival, in seconds.

        Each cluster-wide finish event admits one queued request, so the
        wait of an arrival joining the FIFO lane at position ``k`` (1-based)
        is about ``k`` inter-finish intervals.  Before any finish has been
        observed the estimator is optimistic (0.0): cold starts admit.
        """
        if self._finish_interval_ewma is None:
            return 0.0
        return (len(self._queue) + self._fair_backlog + 1) * \
            self._finish_interval_ewma

    def queue_len(self) -> int:
        """Requests currently waiting at the cluster (all lanes)."""
        return len(self._queue) + self._fair_backlog + len(self._low_queue)

    def low_queue_len(self) -> int:
        """Requests currently parked in the deprioritized lane."""
        return len(self._low_queue)

    def pending_requests(self) -> list:
        """Requests still waiting at the cluster (never dispatched).

        Covers every lane — FIFO first, then tenant lanes in activation
        order, then the deprioritized lane.  Non-empty only when a run stops
        at a horizon while the cluster is backlogged; accounting must not
        lose these arrivals.
        """
        pending = [request for request, _ in self._queue]
        for key in self._lane_ring:
            pending.extend(request for request, _ in self._lanes[key])
        pending.extend(request for request, _ in self._low_queue)
        return pending

    def shed_requests(self) -> list:
        """Arrivals the SLO policy rejected (they never ran)."""
        return list(self._shed)

    def capability_weights(self) -> list:
        """Per-engine relative capability weights used to normalize loads
        (all 1.0 on a homogeneous fleet or with normalization disabled;
        recomputed on membership changes and, with a capability estimator,
        on every finish event)."""
        return list(self._capability)

    def raw_capabilities(self) -> list:
        """Unnormalized spec-derived capability probes, one per engine ever
        built (the values captured at registration; arbitrary units).  The
        predictive autoscaler uses these to size heterogeneous scale-out:
        demonstrated throughput per capability unit times a candidate
        spec's capability estimates what one such replica will serve."""
        return list(self._caps_raw)

    def _submit(self, request) -> int:
        # Only ACTIVE, un-stalled replicas are dispatch targets:
        # provisioning/warming replicas have not joined yet, draining ones
        # accept nothing new, stalled ones are mid-fault, and failed ones
        # are gone.
        idx = self._pick_indexed(request) if self._index_active() else None
        if idx is None:
            candidates = self._eligible
            if self.backpressure:
                # Never force-feed a saturated engine while another has room
                # — that is the exact failure mode the global queue exists to
                # prevent (matters for routing policies that don't follow
                # load).  Skip the filter when the caches prove every
                # candidate has headroom (the common case on an unloaded
                # stock fleet), or when it provably cannot change the pick:
                # JSQ over a homogeneous fleet (shared batch cap, uniform
                # capability) lands on an unsaturated engine by itself
                # whenever one exists — the minimum count is below the
                # shared cap.
                if (self.policy == "least_loaded" and self._all_fast
                        and self._uniform_batch_cap and self._uniform_caps):
                    pass
                elif self._n_fast_unsat != len(candidates) or self._slow_eligible:
                    if self._all_fast:
                        inflight, cap = self._inflight, self._batch_cap
                        unsaturated = [
                            i for i in candidates if inflight[i] < cap[i]
                        ]
                    else:
                        unsaturated = [
                            i for i in candidates if not self._saturated_at(i)
                        ]
                    if unsaturated:
                        candidates = unsaturated
            idx = self._pick(request, candidates)
        self.engines[idx].submit(request)
        self._inflight[idx] += 1
        if self._fast[idx]:
            self._total_inflight += 1
            if self._is_eligible[idx]:
                self._sum_eligible_inflight += 1
                if self._inflight[idx] == self._batch_cap[idx]:
                    self._n_fast_unsat -= 1  # just became saturated
                    if self._unsat_bits is not None:
                        self._unsat_bits.set(idx, False)
            if self._count_heap is not None:
                self._push_count(idx)
        self.stats.dispatched += 1
        return idx

    def _on_engine_finish(self, handle, request) -> None:
        now = self._now()
        self.stats.finishes += 1
        if self._metrics_ttft is not None:
            first = request.first_token_time
            if first is not None:
                self._metrics_ttft.observe(first - request.arrival_time)
        idx = handle.index
        self._inflight[idx] -= 1
        if self._fast[idx]:
            self._total_inflight -= 1
            if self._is_eligible[idx]:
                self._sum_eligible_inflight -= 1
                if self._inflight[idx] == self._batch_cap[idx] - 1:
                    self._n_fast_unsat += 1  # just regained headroom
                    if self._unsat_bits is not None:
                        self._unsat_bits.set(idx, True)
            if self._count_heap is not None:
                self._push_count(idx)
        if self._last_finish_time is None:
            self._last_finish_time = now
            self._finish_batch = 1
        elif now == self._last_finish_time:
            self._finish_batch += 1  # same drain event, defer the sample
        else:
            # The previous drain event freed ``_finish_batch`` slots and it
            # took ``now - last`` until the next one: the per-slot drain
            # interval is the gap amortized over that batch.
            interval = (now - self._last_finish_time) / self._finish_batch
            if self._finish_interval_ewma is None:
                self._finish_interval_ewma = interval
            else:
                alpha = FINISH_INTERVAL_EWMA_ALPHA
                self._finish_interval_ewma = (
                    (1.0 - alpha) * self._finish_interval_ewma + alpha * interval
                )
            self._last_finish_time = now
            self._finish_batch = 1
        if self.capability_estimator is not None:
            # Recompute weights only when a rate sample actually landed:
            # batched same-timestamp finishes just grow the pending batch.
            if self.capability_estimator.observe_finish(
                    handle.index, now, idle=self._count(handle.index) == 0):
                self._recompute_weights()
        if handle.is_draining and self._count(handle.index) == 0:
            self._retire(handle)
        self._drain()
        self._notify_capacity()

    def _drain(self) -> None:
        if self.tenancy is not None:
            self._drain_fair()
            return
        while self._queue and not self._all_saturated():
            self._release(self._queue.popleft())
        # The low-priority lane drains only while the FIFO lane is empty: a
        # deprioritized request never delays a deadline-feasible one.
        while not self._queue and self._low_queue and not self._all_saturated():
            self._release(self._low_queue.popleft())

    def _release(self, entry) -> None:
        request, enqueued_at = entry
        # Accumulate, don't overwrite: a migrated request can pass through
        # the queue once before its replica died and again after — its
        # delay is the total time spent waiting at the cluster.  First-pass
        # requests start at 0.0, so fault-free runs are bit-identical.
        delay = self._now() - enqueued_at
        request.dispatch_queue_delay += delay
        self.stats.queue_delays.append(delay)
        if self._tracer is not None:
            self._tracer.span(
                "dispatch", enqueued_at, self._now(), self._trace_tid,
                request.request_id,
                lane="low" if request.deprioritized else "fifo")
        self._submit(request)

    # ------------------------------------------------------------------ #
    # Tenant-fairness dispatch (tenancy= policy attached)
    # ------------------------------------------------------------------ #
    def _book(self, request) -> TenantBook:
        """The request's tenant ledger, creating its lane on first sight.

        A lane's DRR quantum is fixed when the lane is created, from the SLO
        class of the first request seen for the tenant (classes are
        per-tenant in the population model).  Quanta below 1 are rounded up
        so every backlogged lane is entitled to at least one serve per DRR
        round — the no-starvation bound.
        """
        key = getattr(request, "tenant_id", None)
        book = self.stats.tenants.get(key)
        if book is None:
            weight = self.tenancy.weight_for(
                getattr(request, "slo_class", None))
            book = TenantBook(weight=max(1.0, weight))
            self.stats.tenants[key] = book
            self._lanes[key] = deque()
            self._lane_ring.append(key)
            self._deficit[key] = 0.0
            self._lane_quantum[key] = book.weight
            rate = self.tenancy.rate_for(key)
            if rate is not None:
                self._buckets[key] = _TokenBucket(
                    rate, self.tenancy.quota_burst, self._now())
        return book

    def _dispatch_fair(self, request) -> Optional[int]:
        """Fairness twin of :meth:`dispatch`: lanes instead of the FIFO.

        Immediate admission (:meth:`can_admit` true) still charges the
        tenant's token bucket; when the bucket is empty the admission only
        proceeds — counted ``borrowed`` — while the fleet has genuine slack
        (:meth:`_fleet_has_idle`), because a serve past quota is free
        exactly when it cannot delay in-quota tenants behind a deepening
        engine backlog.  Out of quota with the fleet busy, the arrival
        waits in its lane for a token like any other.  Arrivals that must
        wait go through a lane-aware SLO gate, then park in their tenant's
        lane.
        """
        self.stats.arrivals += 1
        book = self._book(request)
        book.submitted += 1
        key = getattr(request, "tenant_id", None)
        if self.can_admit():
            bucket = self._buckets.get(key)
            if bucket is None or bucket.try_take(self._now()):
                return self._submit_fair(request, book)
            if self._fleet_has_idle():
                book.borrowed += 1
                return self._submit_fair(request, book)
        if self.slo_policy is not None:
            deadline = self.slo_policy.deadline_for(request)
            if self._estimated_lane_wait(key) > deadline:
                if self.slo_policy.mode == "shed":
                    request.shed = True
                    self.stats.shed += 1
                    book.shed += 1
                    self._shed.append(request)
                    if self._tracer is not None:
                        self._tracer.instant(
                            "slo_shed", self._now(), self._trace_tid,
                            request_id=request.request_id, lane="drr",
                            **self.slo_policy.trace_args(request, deadline))
                    return None
                request.deprioritized = True
                self.stats.deprioritized += 1
                self.stats.queued += 1
                book.deprioritized += 1
                book.queued += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "slo_deprioritize", self._now(), self._trace_tid,
                        request_id=request.request_id, lane="drr",
                        **self.slo_policy.trace_args(request, deadline))
                self._low_queue.append((request, self._now()))
                self._drain_fair()
                return None
        self._lanes[key].append((request, self._now()))
        self._fair_backlog += 1
        self.stats.queued += 1
        book.queued += 1
        self._drain_fair()
        return None

    def _estimated_lane_wait(self, key) -> float:
        """Predicted queue wait of an arrival joining tenant ``key``'s lane.

        Under deficit round-robin the wait is governed by the arrival's
        position in its *own* lane and the round cadence — not by the
        global backlog, which one hot tenant can inflate arbitrarily.
        Joining at lane position ``p`` takes about ``p / quantum`` DRR
        rounds, each serving about the summed quanta of the currently
        backlogged lanes; the estimate is capped at the whole-backlog FIFO
        bound (DRR never serves more than everything ahead of the arrival).
        A rate-capped lane additionally drains no faster than its token
        bucket refills, so the wait is at least the time for the bucket to
        cover the lane — that term is what sheds a storm at admission once
        its lane holds a deadline's worth of quota.  This is what keeps the
        SLO gate per-tenant: a victim with an empty lane admits on its own
        merits while a storm's arrivals see their own mile-long lane and
        shed.
        """
        if self._finish_interval_ewma is None:
            return 0.0
        lane = self._lanes.get(key)
        position = (len(lane) if lane is not None else 0) + 1
        quantum = self._lane_quantum.get(key, 1.0)
        per_round = sum(self._lane_quantum[k]
                        for k in self._lane_ring if self._lanes[k])
        per_round = max(per_round, quantum)
        serves = min((position / quantum) * per_round,
                     self._fair_backlog + position)
        wait = serves * self._finish_interval_ewma
        bucket = self._buckets.get(key)
        if bucket is not None:
            short = position - bucket.available(self._now())
            if short > 0:
                wait = max(wait, short / bucket.rate)
        return wait

    def _submit_fair(self, request, book: TenantBook) -> int:
        """Submit plus the tenant's service accounting (virtual time grows
        by the inverse quantum, so equal virtual times mean weight-
        proportional service)."""
        book.admitted += 1
        book.virtual_time += 1.0 / book.weight
        return self._submit(request)

    def _release_fair(self, entry) -> None:
        """Fairness twin of :meth:`_release` (same delay accounting)."""
        request, enqueued_at = entry
        delay = self._now() - enqueued_at
        request.dispatch_queue_delay += delay
        self.stats.queue_delays.append(delay)
        if self._tracer is not None:
            # The DRR lane wait, annotated with the lane's carried deficit
            # at release time — the "why did this tenant wait" answer.
            key = getattr(request, "tenant_id", None)
            args = dict(lane="low" if request.deprioritized else "drr")
            if key is not None:
                args["tenant"] = key
                args["deficit"] = round(self._deficit.get(key, 0.0), 6)
            self._tracer.span(
                "dispatch", enqueued_at, self._now(), self._trace_tid,
                request.request_id, **args)
        self._submit_fair(request, self._book(request))

    def _drain_fair(self) -> None:
        while self._fair_backlog and not self._all_saturated():
            if not self._fair_step():
                break  # every backlogged lane throttled, fleet busy
        # The shared deprioritized lane drains only while every tenant lane
        # is empty — identical precedence to the anonymous path.  It bypasses
        # the token buckets: by construction it only ever consumes capacity
        # no in-quota lane wanted.
        while (not self._fair_backlog and self._low_queue
               and not self._all_saturated()):
            self._release_fair(self._low_queue.popleft())

    def _fair_step(self) -> bool:
        """Serve at most one lane entry by deficit round-robin.

        The cursor walks ``_lane_ring``; arriving at a lane opens a *visit*
        that tops up its deficit by the lane quantum (capped at twice the
        quantum, so a throttled lane's entitlement stays bounded), and the
        visit lasts — across saturation pauses — until the lane is out of
        backlog, deficit, or quota tokens.  One full sweep serves every
        backlogged lane at least once unless its bucket is empty; if a sweep
        serves nothing while backlog remains, every backlogged lane is out
        of quota, and — only while the fleet has genuine slack
        (:meth:`_fleet_has_idle`) — the next backlogged lane in ring order
        is served past its cap (``borrowed``: quotas are relative shares,
        not hard partitions, but borrowing against a *busy* fleet would
        just park the overflow in engine queues ahead of in-quota work).
        Returns whether an entry was served; ``False`` means every
        backlogged lane is throttled and the fleet is too busy to borrow —
        the backlog waits for tokens to refill (a later capacity event
        re-drains).  Callers guarantee backlog and headroom.
        """
        ring = self._lane_ring
        now = self._now()
        for _ in range(len(ring)):
            key = ring[self._lane_cursor]
            lane = self._lanes[key]
            if not self._visit_open:
                self._deficit[key] = min(
                    self._deficit[key] + self._lane_quantum[key],
                    2.0 * self._lane_quantum[key]) if lane else 0.0
                self._visit_open = True
            if lane and self._deficit[key] >= 1.0:
                bucket = self._buckets.get(key)
                book = self.stats.tenants[key]
                if bucket is None or bucket.try_take(now):
                    self._deficit[key] -= 1.0
                    entry = lane.popleft()
                    self._fair_backlog -= 1
                    if not lane:
                        self._deficit[key] = 0.0
                        self._advance_lane()
                    self._release_fair(entry)
                    return True
                book.throttled += 1  # once per visit, not per entry
            self._advance_lane()
        # Full sweep, nothing in quota: borrow-from-idle on the next
        # backlogged lane in ring order — idle fleet only.
        if not self._fleet_has_idle():
            return False
        for _ in range(len(ring)):
            key = ring[self._lane_cursor]
            lane = self._lanes[key]
            if lane:
                book = self.stats.tenants[key]
                book.borrowed += 1
                entry = lane.popleft()
                self._fair_backlog -= 1
                self._advance_lane()
                self._release_fair(entry)
                return True
            self._advance_lane()
        return False

    def _fleet_has_idle(self) -> bool:
        """True when the dispatch-eligible fleet has genuine slack: total
        in-flight work below half the aggregate batch capacity.  This is
        the borrow-from-idle predicate — past-quota admissions are free
        while it holds (in-quota arrivals still see shallow engines) and
        harmful once engines are deep.  Engines without a finite batch cap
        (test fakes) are left out of both sums; an empty sum is slack.
        """
        used = 0.0
        cap = 0.0
        for idx in self._eligible:
            engine_cap = self._batch_cap[idx]
            if engine_cap == float("inf"):
                continue
            used += self._count(idx)
            cap += engine_cap
        return used * 2.0 < cap if cap else True

    def _advance_lane(self) -> None:
        self._lane_cursor = (self._lane_cursor + 1) % len(self._lane_ring)
        self._visit_open = False

    def _simulator(self):
        sim = self._sim_memo
        if sim is None:
            sim = self._sim if self._sim is not None else getattr(
                self.engines[0], "sim", None)
            self._sim_memo = sim
        return sim

    def _now(self) -> float:
        sim = self._simulator()
        return sim.now if sim is not None else 0.0

    def _has_available(self) -> bool:
        return bool(self._eligible)

    def _all_saturated(self) -> bool:
        """True when no dispatch-eligible replica can take a request right
        now (every eligible engine saturated, or none at all — everything
        still provisioning, draining out, stalled or failed).  O(1) on a
        stock fleet: the incremental headroom count answers directly; only
        engines with overridden probes (test fakes) are probed live."""
        if not self._eligible:
            return True
        if self._n_fast_unsat:
            return False
        for idx in self._slow_eligible:
            if not self._saturated(self.engines[idx]):
                return False
        return True

    @staticmethod
    def _saturated(engine) -> bool:
        checker = getattr(engine, "is_saturated", None)
        return checker() if callable(checker) else False

    # ------------------------------------------------------------------ #
    # Replica lifecycle (elastic fleets)
    # ------------------------------------------------------------------ #
    def add_replica(self, engine, *, provision_delay: float = 0.0,
                    warmup_delay: float = 0.0):
        """Grow the fleet mid-run.

        The replica starts PROVISIONING, pays ``provision_delay`` (cold
        start: container pull, weight load) then ``warmup_delay`` (WARMING),
        and only then joins the dispatch set — at which point any queued
        work drains into it immediately.  Returns the new
        :class:`~repro.serving.replica.ReplicaHandle`.
        """
        if provision_delay < 0 or warmup_delay < 0:
            raise ValueError("cold-start delays must be >= 0")
        from repro.serving.replica import ReplicaHandle, ReplicaState
        if (provision_delay > 0 or warmup_delay > 0) and self._simulator() is None:
            raise ValueError(
                "cold-start delays need a simulated clock: pass sim= to the "
                "cluster or use engines exposing .sim")
        index = len(self.engines)
        now = self._now()
        self.engines.append(engine)
        self._track_engine(engine)
        handle = ReplicaHandle(engine=engine, index=index,
                               state=ReplicaState.PROVISIONING,
                               provisioned_at=now)
        self.handles.append(handle)
        self._caps_raw.append(self._engine_capability(engine))
        self._capability.append(1.0)
        if self.capability_estimator is not None:
            self.capability_estimator.register(index, self._caps_raw[index])
        self._register_finish(handle)
        if self._tracer is not None:
            self._attach_engine_tracer(engine, index)
        if self._metrics is not None:
            self._register_replica_gauge(index)
        self._log_transition(handle)
        if provision_delay > 0:
            handle.pending_event = self._simulator().schedule(
                provision_delay, self._begin_warmup, handle, warmup_delay)
        else:
            self._begin_warmup(handle, warmup_delay)
        return handle

    def drain_replica(self, index: int, *, migrate: bool = False):
        """Shrink the fleet: stop offering new work to replica ``index``.

        An ACTIVE replica transitions to DRAINING, finishes its in-flight
        work and retires on its last finish — no request is lost.  With
        ``migrate=False`` (the default, bit-for-bit the historic behaviour)
        that includes waiting out its local queue; with ``migrate=True`` the
        replica's queued and admitted-but-unstarted requests are evacuated
        and re-dispatched through the normal admission path instead, so the
        drain completes as soon as the *started* work finishes.  A replica
        still cold (PROVISIONING/WARMING) has its pending timer cancelled
        and retires immediately: it never served.  Idempotent on
        draining/retired/failed replicas.  Returns the handle.
        """
        handle = self.handles[index]
        if handle.is_retired or handle.is_draining or handle.is_failed:
            return handle
        now = self._now()
        if not handle.is_active:
            if handle.pending_event is not None:
                sim = self._simulator()
                if sim is not None:
                    sim.cancel(handle.pending_event)
                handle.pending_event = None
            handle.retire(now)
            self._log_transition(handle)
            self._recompute_weights()
            return handle
        handle.begin_drain(now)
        self._log_transition(handle)
        self._recompute_weights()
        if migrate:
            evacuate = getattr(handle.engine, "evacuate_unstarted", None)
            if callable(evacuate):
                evacuated = evacuate()
                self._resync_load(index)  # evacuation bypassed submit/finish
                self._migrate(evacuated, index)
        if self._count(index) == 0:
            self._retire(handle)
        return handle

    # ------------------------------------------------------------------ #
    # Faults: crashes, transient stalls, work migration
    # ------------------------------------------------------------------ #
    def fail_replica(self, index: int, *, migrate: bool = True,
                     retry_started: bool = True):
        """Kill replica ``index`` instantly (crash fault).

        The replica transitions to the terminal FAILED state from wherever
        it was (cold starts are cancelled, draining is cut short) and every
        event its engine had pending in the simulator — iteration
        completions above all — is bulk-cancelled: a dead replica finishes
        nothing.  Its recoverable work (local queue, admitted requests
        waiting on adapters or not yet started; with ``retry_started`` also
        started requests, replayed from scratch) is re-dispatched through
        the normal admission/SLO path with ``migrations``/``retry_count``
        accounting; the rest is stranded as ``lost``.  ``migrate=False``
        strands everything — the no-recovery baseline.  Idempotent on
        failed/retired replicas.  Returns the handle.
        """
        handle = self.handles[index]
        if handle.is_retired or handle.is_failed:
            return handle
        now = self._now()
        sim = self._simulator()
        if handle.pending_event is not None:
            if sim is not None:
                sim.cancel(handle.pending_event)
            handle.pending_event = None
        handle.fail(now)
        self.stats.failures += 1
        self._log_transition(handle)
        engine = self.engines[index]
        if sim is not None:
            sim.cancel_if(
                lambda event: getattr(event.callback, "__self__", None)
                is engine)
        failer = getattr(engine, "fail", None)
        recoverable, lost = failer(
            migrate=migrate, retry_started=retry_started) \
            if callable(failer) else ([], [])
        self._resync_load(index)  # crash evacuation bypassed submit/finish
        for request in lost:
            request.lost = True
            if self.tenancy is not None:
                self._book(request).lost += 1
        self._lost.extend(lost)
        self.stats.lost += len(lost)
        self._recompute_weights()
        self._migrate(recoverable, index)
        return handle

    def stall_replica(self, index: int, duration: float):
        """Transient stall: replica ``index`` accepts nothing for
        ``duration`` seconds.

        Models an admission-path outage (dispatcher link flap, control-plane
        hiccup), not a crash: in-flight work keeps serving and nothing is
        lost — the replica just leaves the dispatch set, and when the window
        closes it rejoins and absorbs queued work immediately.  Overlapping
        stalls extend the window to the latest deadline.  No-op on replicas
        that are not currently serving.  Returns the handle.
        """
        if duration <= 0:
            raise ValueError(f"stall duration must be > 0, got {duration}")
        handle = self.handles[index]
        if not handle.is_active:
            return handle
        sim = self._simulator()
        if sim is None:
            raise ValueError(
                "transient stalls need a simulated clock: pass sim= to the "
                "cluster or use engines exposing .sim")
        now = self._now()
        if not handle.stalled:
            handle.stalled = True
            self.stats.stalls += 1
            self.lifecycle_log.append((now, handle.index, "stalled"))
            if self._tracer is not None:
                self._tracer.instant(
                    "lifecycle", now,
                    self._replica_tid_base + handle.index,
                    replica=handle.index, state="stalled")
            self._refresh_eligible()
        self._stall_until[index] = max(
            self._stall_until.get(index, 0.0), now + duration)
        sim.schedule(duration, self._end_stall, handle)
        return handle

    def _end_stall(self, handle) -> None:
        if not handle.stalled:
            return  # already cleared (e.g. the replica failed mid-stall)
        if self._now() < self._stall_until.get(handle.index, 0.0):
            return  # a longer overlapping stall still holds the replica
        handle.stalled = False
        self.lifecycle_log.append(
            (self._now(), handle.index, handle.state.value))
        if self._tracer is not None:
            self._tracer.instant(
                "lifecycle", self._now(),
                self._replica_tid_base + handle.index,
                replica=handle.index, state=handle.state.value)
        self._refresh_eligible()
        self._drain()  # the survivor can absorb queued work immediately
        self._notify_capacity()

    def _migrate(self, requests, from_index: int) -> None:
        """Re-offer evacuated requests to the dispatcher, in evacuation
        order, through the normal admission path — a migrated request can
        route anywhere, wait in the global queue, or be shed by the SLO
        policy like any fresh arrival (its clock never resets: TTFT still
        counts from the original ``arrival_time``)."""
        now = self._now()
        for request in requests:
            request.retry_count += 1
            request.migrated_at.append(now)
            self.stats.migrations += 1
            self.migration_log.append(dict(
                time=now, request_id=request.request_id,
                from_replica=from_index, retry=request.retry_count))
            if self._tracer is not None:
                self._tracer.instant(
                    "migrate", now, self._trace_tid,
                    request_id=request.request_id,
                    from_replica=from_index, retry=request.retry_count)
            self.dispatch(request)

    def lost_requests(self) -> list:
        """Requests stranded forever by replica failures (they stay in
        their dead engine's ``all_requests`` with timelines frozen at the
        crash; this is the cluster-level view for accounting)."""
        return list(self._lost)

    def _begin_warmup(self, handle, warmup_delay: float) -> None:
        if handle.is_retired:
            return  # provisioning cancelled by a scale-in
        handle.pending_event = None
        handle.begin_warmup(self._now())
        self._log_transition(handle)
        if warmup_delay > 0:
            handle.pending_event = self._simulator().schedule(
                warmup_delay, self._activate, handle)
        else:
            self._activate(handle)

    def _activate(self, handle) -> None:
        if handle.is_retired:
            return  # warmup cancelled by a scale-in
        handle.pending_event = None
        handle.activate(self._now())
        self._log_transition(handle)
        self._recompute_weights()
        self._drain()  # the newcomer can absorb queued work immediately
        self._notify_capacity()

    def _retire(self, handle) -> None:
        handle.retire(self._now())
        self._log_transition(handle)
        self._recompute_weights()

    def _log_transition(self, handle) -> None:
        self.lifecycle_log.append(
            (self._now(), handle.index, handle.state.value))
        if self._tracer is not None:
            self._tracer.instant(
                "lifecycle", self._now(),
                self._replica_tid_base + handle.index,
                replica=handle.index, state=handle.state.value)
        self._refresh_eligible()

    def active_indices(self) -> list:
        """Engine indices currently in the dispatch set."""
        return list(self._active_cache)

    def serving_indices(self) -> list:
        """Engine indices currently serving work (ACTIVE or DRAINING,
        ascending) — the autoscaler's throughput denominator, cached at
        each lifecycle transition like :meth:`active_indices`."""
        return list(self._serving_cache)

    def active_count(self) -> int:
        return self._n_active

    def fleet_size(self) -> int:
        """Replicas counted against the autoscaler's *floor*: provisioning,
        warming and active (draining replicas are already on their way out
        and must not satisfy ``min_replicas``)."""
        return self._n_in_fleet

    def holding_count(self) -> int:
        """Replicas currently holding a GPU: everything not yet retired or
        failed, draining included — the count the autoscaler's
        ``max_replicas`` ceiling and peak-fleet accounting must bound, since
        a draining replica is still being billed until its last finish (a
        failed replica's GPU is gone the moment it dies)."""
        return self._n_holding

    def failed_count(self) -> int:
        """Replicas in the terminal FAILED state (crash faults), counted at
        each lifecycle transition — the self-healing autoscaler reads this
        every tick, so it must not cost a fleet sweep."""
        return self._n_failed

    def has_pending_work(self) -> bool:
        """True while any request is in flight on a live replica or waiting
        in a cluster queue — the autoscaler's scale-in guard.  O(1) on a
        stock fleet via the cluster-wide in-flight counter (retired replicas
        drained to zero and failed ones were evacuated, so the fleet total
        *is* the live total); only engines with overridden probes (test
        fakes) are probed live."""
        if self._total_inflight > 0 or self._queue or self._low_queue:
            return True
        for idx in self._slow_all:
            handle = self.handles[idx]
            if not (handle.is_retired or handle.is_failed) \
                    and self._count(idx) > 0:
                return True
        return False

    def total_in_flight(self) -> int:
        """Requests currently in flight across every live replica — the
        region router's spill-target load probe.  O(1) on a stock fleet via
        the cluster-wide counter; only engines with overridden probes (test
        fakes) are probed live."""
        total = self._total_inflight
        for idx in self._slow_all:
            handle = self.handles[idx]
            if not (handle.is_retired or handle.is_failed):
                total += self._count(idx)
        return total

    # ------------------------------------------------------------------ #
    # Observability hooks (see repro.obs)
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer, shard: int = 0) -> None:
        """Attach a :class:`repro.obs.Tracer` to this dispatcher and its
        engines (current fleet and any replica provisioned later).

        ``shard`` places the cluster's tracks in a region's layout:
        dispatcher shard ``s`` gets tid ``s + 1`` and its replicas tids
        ``1000 * (s + 1) + index``.  Attaching records nothing by itself
        and schedules no simulator events, so an attached run's
        ``summary()`` is identical to a detached one.
        """
        from repro.obs.tracer import REPLICA_TID_STRIDE, dispatcher_tid
        self._tracer = tracer
        self._trace_shard = shard
        self._trace_tid = dispatcher_tid(shard)
        self._replica_tid_base = REPLICA_TID_STRIDE * (shard + 1)
        tracer.register_track(self._trace_tid, f"s{shard}/dispatcher")
        for handle in self.handles:
            self._attach_engine_tracer(handle.engine, handle.index)

    def _attach_engine_tracer(self, engine, index: int) -> None:
        tid = self._replica_tid_base + index
        self._tracer.register_track(
            tid, f"s{self._trace_shard}/replica{index}")
        engine._tracer = self._tracer
        engine._trace_tid = tid

    def attach_metrics(self, registry, prefix: str = "") -> None:
        """Register this cluster's standard gauges on ``registry``.

        All gauges are read-only probes over state the cluster already
        maintains (O(1) caches where the hot path has them); sampling
        them cannot perturb the run.  ``prefix`` namespaces the metric
        names (a region prefixes per shard: ``s0_``, ``s1_``, ...).
        """
        self._metrics = registry
        self._metrics_prefix = prefix
        self._metrics_ttft = registry.histogram(prefix + "ttft")
        registry.gauge(prefix + "queue_depth", self.queue_len)
        registry.gauge(prefix + "in_flight", self.total_in_flight)
        registry.gauge(prefix + "active_replicas", self.active_count)
        registry.gauge(prefix + "finished_total",
                       lambda: self.stats.finishes)
        registry.gauge(prefix + "shed_total", lambda: self.stats.shed)
        registry.gauge(prefix + "cache_hit_rate", self._hit_rate_metric)
        registry.gauge(prefix + "gpu_used_bytes", self._gpu_bytes_metric)
        if self.tenancy is not None:
            registry.gauge(prefix + "lane_backlog",
                           lambda: self._fair_backlog)
            registry.gauge(prefix + "lane_deficit_total",
                           lambda: float(sum(self._deficit.values())))
        for handle in self.handles:
            self._register_replica_gauge(handle.index)

    def _register_replica_gauge(self, index: int) -> None:
        self._metrics.gauge(
            f"{self._metrics_prefix}replica{index}_in_flight",
            lambda idx=index: float(self._count(idx)))

    def _hit_rate_metric(self) -> float:
        """Lookup-weighted aggregate adapter-cache hit rate (0.0 cold)."""
        hits = lookups = 0
        for engine in self.engines:
            stats = getattr(getattr(engine, "adapter_manager", None),
                            "stats", None)
            if stats is None:
                continue
            hits += stats.hits
            lookups += stats.hits + stats.misses + stats.overlapped
        return hits / lookups if lookups else 0.0

    def _gpu_bytes_metric(self) -> float:
        total = 0
        for engine in self.engines:
            gpu = getattr(engine, "gpu", None)
            if gpu is not None:
                total += gpu.used_bytes
        return float(total)

    # ------------------------------------------------------------------ #
    # Region hooks (cross-shard work stealing; see serving.region)
    # ------------------------------------------------------------------ #
    def on_capacity(self, callback) -> None:
        """Register a zero-argument hook fired whenever a capacity-freeing
        event (finish, replica activation, stall end) leaves this cluster
        able to admit immediately (:meth:`can_admit`).  The region router
        uses it to steal queued work from backlogged sibling shards the
        moment this shard has room; a standalone cluster registers nothing
        and pays nothing."""
        self._capacity_callbacks.append(callback)

    def _notify_capacity(self) -> None:
        if self._capacity_callbacks and self.can_admit():
            for callback in self._capacity_callbacks:
                callback()

    def donate_queued(self):
        """Pop the oldest queued request for a sibling shard to serve
        (FIFO lane first; the deprioritized lane only when the FIFO lane is
        empty, mirroring local drain order).  Returns the ``(request,
        enqueue_time)`` entry, or ``None`` when nothing is waiting.  The
        enqueue timestamp travels with the request so the receiving shard
        stamps the *full* cross-shard queue delay.

        Under tenant fairness the donor lane is the most backlogged one
        (ties to earliest activation) — relieving the longest lane is the
        donation that helps local fairness most — and the tenant's book
        records the hand-off so region-wide ledgers stay conserved."""
        if self._fair_backlog:
            # `_fair_backlog > 0` guarantees some lane is non-empty, so the
            # scan always lands on a donor (possibly the anonymous None lane).
            donor, best = None, 0
            for key in self._lane_ring:
                backlog = len(self._lanes[key])
                if backlog > best:
                    donor, best = key, backlog
            entry = self._lanes[donor].popleft()
            self._fair_backlog -= 1
            self.stats.tenants[donor].donated += 1
        elif self._queue:
            entry = self._queue.popleft()
        elif self._low_queue:
            entry = self._low_queue.popleft()
        else:
            return None
        self.stats.donated += 1
        return entry

    def accept_stolen(self, entry) -> int:
        """Admit a queue entry donated by a sibling shard (see
        :meth:`donate_queued`): stamp its accumulated queue delay exactly
        as a local release would, then submit it here.  The caller must
        have checked :meth:`can_admit` first.  Returns the engine index.

        Under tenant fairness the thief charges its own token bucket for the
        tenant (or books a borrow) — region-wide, a tenant's quota is the sum
        of its per-shard caps, and stolen work must not launder past it."""
        request, enqueued_at = entry
        self.stats.stolen += 1
        delay = self._now() - enqueued_at
        request.dispatch_queue_delay += delay
        self.stats.queue_delays.append(delay)
        if self._tracer is not None:
            # The span lands on the *thief's* dispatcher track: that is
            # where the wait ended and the work ran.
            self._tracer.span("dispatch", enqueued_at, self._now(),
                              self._trace_tid, request.request_id,
                              lane="stolen")
        if self.tenancy is not None:
            book = self._book(request)
            book.stolen += 1
            bucket = self._buckets.get(getattr(request, "tenant_id", None))
            if bucket is not None and not bucket.try_take(self._now()):
                book.borrowed += 1
            return self._submit_fair(request, book)
        return self._submit(request)

    def raw_capability(self, index: int) -> float:
        """One engine's unnormalized capability probe (see
        :meth:`raw_capabilities`; avoids copying the whole list per read)."""
        return self._caps_raw[index]

    def replica_seconds(self, now: Optional[float] = None) -> float:
        """Total resource-time consumed by the fleet so far, in
        replica-seconds (each replica counts from provisioning start to
        retirement; see ``ReplicaHandle.replica_seconds``)."""
        if now is None:
            now = self._now()
        return sum(handle.replica_seconds(now) for handle in self.handles)

    # ------------------------------------------------------------------ #
    # Routing policies
    # ------------------------------------------------------------------ #
    def _load(self, idx: int) -> float:
        """One engine's load, normalized by its relative capability.

        Dividing by capability turns raw backlog into utilization: a replica
        twice as fast at the same queue length is half as loaded, so every
        load-following policy (JSQ, p2c, token-weighted, the bounded-affinity
        spill bound) routes correctly across a mixed-spec fleet.
        """
        if self.policy == "token_weighted":
            # Token loads drift every iteration (tokens generate without any
            # dispatcher-visible event), so they stay live probes.
            probe = getattr(self.engines[idx], "in_flight_token_load", None)
            if callable(probe):
                return probe() / self._capability[idx]
        if self._fast[idx]:
            return self._inflight[idx] / self._capability[idx]
        return self.engines[idx].in_flight_count() / self._capability[idx]

    # ------------------------------------------------------------------ #
    # O(log n) dispatch indices
    # ------------------------------------------------------------------ #
    def _index_active(self) -> bool:
        """True when the per-policy dispatch index provably reproduces the
        linear scan bit-for-bit, so `_submit` may use it.

        The common requirement is an all-stock fleet (``_all_fast``): the
        indices are built over the cached counters, which only mirror
        unmodified ``ServingEngine`` probes.  Load-comparing policies
        additionally need uniform capability weights and a shared batch cap
        — dividing a counter by exactly 1.0 is the identity, so cached
        integer loads, their sums and the heap tie-break ``(load, index)``
        reproduce the scan's floats and first-minimum ties exactly; any
        heterogeneity (mixed specs, estimator-driven weights, mixed batch
        caps) falls back to the scan.  Token-weighted and the affinity
        policies also need backpressure, which bounds every count at its
        batch cap — the invariant behind the saturated-sum shortcut and
        the discard-and-repush heap maintenance.
        """
        if not (self._use_index and self._all_fast):
            return False
        policy = self.policy
        if policy == "round_robin" or policy == "p2c":
            return True
        if not (self._uniform_caps and self._uniform_batch_cap):
            return False
        if policy == "least_loaded":
            return True
        if policy == "token_weighted":
            return self.backpressure and self._all_token_fast
        return self.backpressure  # adapter_affinity / bounded_affinity

    def _pick_indexed(self, request) -> Optional[int]:
        """Index-backed replica pick, bit-for-bit equal to
        ``_pick(request, <filtered candidates>)`` under the `_index_active`
        preconditions.  Returns ``None`` to fall back to the scan (only
        reachable defensively — e.g. an empty index).

        ``filtered`` mirrors `_submit`'s saturation filter without
        materializing the candidate list: the filter fires iff backpressure
        is on and *some but not all* eligible replicas have headroom, and
        the early single-candidate return uses the matching count.
        """
        eligible = self._eligible
        n_eligible = len(eligible)
        if not n_eligible:
            return None
        policy = self.policy
        n_unsat = self._n_fast_unsat
        filtered = self.backpressure and 0 < n_unsat < n_eligible
        inflight = self._inflight
        if policy == "least_loaded":
            # The scan never filters here (the minimum count is below the
            # shared cap whenever any replica has headroom).
            assert self._count_heap is not None
            return self._count_heap.peek(inflight, self._is_eligible)
        if policy == "round_robin":
            assert self._unsat_bits is not None
            if filtered:
                if n_unsat == 1:  # scan's len==1 return skips the rr walk
                    return self._unsat_bits.kth(0)
            elif n_eligible == 1:
                return eligible[0]
            n = len(self.engines)
            cap = self._batch_cap
            is_eligible = self._is_eligible
            for _ in range(n):
                idx = self._rr_next
                self._rr_next = (self._rr_next + 1) % n
                if is_eligible[idx] and (
                        not filtered or inflight[idx] < cap[idx]):
                    return idx
            return None  # unreachable: some replica is eligible
        if policy == "p2c":
            assert self._unsat_bits is not None
            if filtered:
                if n_unsat == 1:  # scan's len==1 return consumes no RNG
                    return self._unsat_bits.kth(0)
                a, b = self._rng.choice(n_unsat, size=2, replace=False)
                i = self._unsat_bits.kth(int(a))
                j = self._unsat_bits.kth(int(b))
            else:
                if n_eligible == 1:
                    return eligible[0]
                a, b = self._rng.choice(n_eligible, size=2, replace=False)
                i, j = eligible[int(a)], eligible[int(b)]
            load_i, load_j = self._load(i), self._load(j)
            if load_i == load_j:
                return min(i, j)
            return i if load_i < load_j else j
        if policy == "token_weighted":
            assert self._token_heap is not None
            if filtered:
                return self._token_heap.peek_unsaturated(
                    self._token_load, self._is_eligible,
                    inflight, self._batch_cap)
            return self._token_heap.peek(self._token_load, self._is_eligible)
        # adapter_affinity / bounded_affinity
        count_heap = self._count_heap
        assert count_heap is not None
        if filtered:
            if n_unsat == 1:  # the one unsaturated replica is the count-min
                return count_heap.peek(inflight, self._is_eligible)
        elif n_eligible == 1:
            return eligible[0]
        adapter_id = request.adapter_id
        if adapter_id is not None:
            resident = self._resident.get(adapter_id)
            if resident:
                cap = self._batch_cap
                is_eligible = self._is_eligible
                best = -1
                best_load = 0
                evicted: list[int] = []
                for i in resident:  # ascending: first minimum wins ties
                    if not is_eligible[i]:
                        continue  # may rejoin later; keep the entry
                    if not self.engines[i].adapter_manager.is_resident(
                            adapter_id):
                        evicted.append(i)  # stale superset entry
                        continue
                    if filtered and inflight[i] >= cap[i]:
                        continue
                    if best < 0 or inflight[i] < best_load:
                        best, best_load = i, inflight[i]
                for i in evicted:
                    resident.remove(i)
                if not resident:
                    del self._resident[adapter_id]
                if best >= 0:
                    if self.policy == "adapter_affinity":
                        return best
                    # Bounded affinity: the scan's mean load over the
                    # candidates, from the integer sums — with backpressure
                    # every saturated count equals the shared cap, so the
                    # unsaturated sum is the eligible sum minus the
                    # saturated mass.
                    if filtered:
                        shared_cap = cap[eligible[0]]
                        total = self._sum_eligible_inflight - \
                            (n_eligible - n_unsat) * shared_cap
                        denom = n_unsat
                    else:
                        total = self._sum_eligible_inflight
                        denom = n_eligible
                    bound = self.spill_factor * max(1.0, total / denom)
                    if best_load <= bound:
                        return best
                    spill_to = count_heap.peek(inflight, self._is_eligible)
                    if spill_to is None:
                        return None  # fall back before mutating stats
                    self.stats.spills += 1  # affine replica too hot
                    return spill_to
        return count_heap.peek(inflight, self._is_eligible)

    def _push_count(self, idx: int) -> None:
        """Record engine ``idx``'s new request count in the count heap,
        compacting (rebuild over the eligible set) once lazy deletions have
        let the heap grow past ~4x the fleet — O(1) amortized."""
        heap = self._count_heap
        assert heap is not None
        if len(heap) >= self._heap_limit:
            inflight, fast = self._inflight, self._fast
            heap.rebuild(
                (inflight[i], i) for i in self._eligible if fast[i])
        else:
            heap.push(self._inflight[idx], idx)

    def _on_token_load_change(self, idx: int) -> None:
        """Engine load-change hook: mirror the token-load probe and index
        the new value (token-weighted policy only)."""
        load = self.engines[idx].in_flight_token_load()
        token = self._token_load
        if load == token[idx]:
            return
        token[idx] = load
        if not self._is_eligible[idx]:
            return  # `_refresh_eligible` re-indexes it if it rejoins
        heap = self._token_heap
        assert heap is not None
        if len(heap) >= self._heap_limit:
            token_fast = self._token_fast
            heap.rebuild(
                (token[i], i) for i in self._eligible if token_fast[i])
        else:
            heap.push(load, idx)

    def _note_resident(self, idx: int, adapter_id: int) -> None:
        """Adapter-manager ready hook: adapter ``adapter_id`` just became
        resident on engine ``idx`` (affinity policies only)."""
        entries = self._resident.get(adapter_id)
        if entries is None:
            self._resident[adapter_id] = [idx]
            return
        pos = bisect_left(entries, idx)
        if pos == len(entries) or entries[pos] != idx:
            entries.insert(pos, idx)

    def _pick(self, request, candidates: Optional[list] = None) -> int:
        """Pick an engine index among ``candidates`` (default: active set)."""
        n = len(self.engines)
        if candidates is None:
            candidates = self._eligible
        if not candidates:
            raise RuntimeError("no dispatch-eligible replica")
        if len(candidates) == 1:
            return candidates[0]
        if self.policy == "least_loaded" and self._all_fast:
            # JSQ over cached counters, no dict churn.  ``min`` keeps the
            # first minimum in candidate order — the same tie-break as the
            # loads-dict path below.
            if self._uniform_caps:
                return min(candidates, key=self._inflight.__getitem__)
            inflight, capability = self._inflight, self._capability
            return min(candidates, key=lambda i: inflight[i] / capability[i])
        if self.policy == "round_robin":
            eligible = set(candidates)
            for _ in range(n):
                idx = self._rr_next
                self._rr_next = (self._rr_next + 1) % n
                if idx in eligible:
                    return idx
            return candidates[0]  # unreachable: candidates is non-empty
        if self.policy == "p2c":
            i, j = (
                candidates[int(k)]
                for k in self._rng.choice(len(candidates), size=2, replace=False)
            )
            # One probe per candidate: load probes walk the engine's running
            # and queued sets, so re-probing per comparison is wasted work.
            load_i, load_j = self._load(i), self._load(j)
            if load_i == load_j:
                return min(i, j)
            return i if load_i < load_j else j
        loads = {i: self._load(i) for i in candidates}
        if (
            self.policy in ("adapter_affinity", "bounded_affinity")
            and request.adapter_id is not None
        ):
            resident = [
                i for i in candidates
                if self.engines[i].adapter_manager.is_resident(request.adapter_id)
            ]
            if resident:
                best = min(resident, key=lambda i: loads[i])
                if self.policy == "adapter_affinity":
                    return best
                bound = self.spill_factor * max(
                    1.0, sum(loads.values()) / len(loads))
                if loads[best] <= bound:
                    return best
                self.stats.spills += 1  # affine replica too hot: spill to JSQ
        return min(candidates, key=lambda i: loads[i])
