"""Byte-accurate GPU memory accountant.

The device tracks memory in named categories (``weights``, ``activations``,
``kv``, ``adapter``, ``adapter_cache``) so the Chameleon cache can grow into
whatever is idle and shrink the instant serving state needs the bytes back —
the Figure 6 behaviour.  A small telemetry hook records a time series of
per-category usage for the memory-timeline experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

MB = 1024 * 1024
GB = 1024 * MB

#: Canonical memory categories, in the order they are reported.
MEMORY_CATEGORIES = ("weights", "activations", "kv", "adapter", "adapter_cache")


class MemoryExhausted(RuntimeError):
    """Raised when a reservation exceeds the remaining device memory."""


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU.

    Attributes:
        name: Marketing name.
        memory_bytes: HBM capacity.
        peak_tflops: Peak fp16 dense throughput in TFLOP/s.
        mem_bandwidth_bytes: HBM bandwidth in bytes/s.
    """

    name: str
    memory_bytes: int
    peak_tflops: float
    mem_bandwidth_bytes: float


A40_48GB = GpuSpec("a40-48gb", 48 * GB, 149.7, 696 * GB)
A100_80GB = GpuSpec("a100-80gb", 80 * GB, 312.0, 2039 * GB)
# The paper's §5.5 A100 configured down to 48/24 GB (compute unchanged).
A100_48GB = GpuSpec("a100-48gb", 48 * GB, 312.0, 2039 * GB)
A100_24GB = GpuSpec("a100-24gb", 24 * GB, 312.0, 2039 * GB)

GPU_ZOO: dict[str, GpuSpec] = {
    g.name: g for g in (A40_48GB, A100_80GB, A100_48GB, A100_24GB)
}


@dataclass
class MemorySample:
    """One telemetry sample of per-category memory usage."""

    time: float
    usage: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.usage.values())


class GpuDevice:
    """Memory accountant for one GPU (or one aggregated TP group).

    All reservations are explicit; the device never implicitly evicts
    anything — reclaiming cache space is the Cache Manager's job, which is
    exactly the division of labour §4.2 describes.
    """

    def __init__(self, spec: GpuSpec, memory_bytes: Optional[int] = None) -> None:
        self.spec = spec
        self.capacity = int(memory_bytes if memory_bytes is not None else spec.memory_bytes)
        self._used: dict[str, int] = {c: 0 for c in MEMORY_CATEGORIES}
        self._used_total: int = 0  # running sum of _used (hot-path probe)
        self.samples: list[MemorySample] = []
        self._telemetry_interval: Optional[float] = None
        self._last_sample_time: float = float("-inf")

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        return self._used_total

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def used(self, category: str) -> int:
        return self._used.get(category, 0)

    def reserve(self, category: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``category``; raises if it does not fit."""
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes ({nbytes})")
        if nbytes > self.free_bytes:
            raise MemoryExhausted(
                f"reserve {nbytes / MB:.1f} MB of '{category}' exceeds free "
                f"{self.free_bytes / MB:.1f} MB on {self.spec.name}"
            )
        self._used.setdefault(category, 0)
        self._used[category] += nbytes
        self._used_total += nbytes

    def release(self, category: str, nbytes: int) -> None:
        """Return ``nbytes`` previously reserved under ``category``."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes ({nbytes})")
        held = self._used.get(category, 0)
        if nbytes > held:
            raise ValueError(
                f"release {nbytes} from '{category}' exceeds held {held}"
            )
        self._used[category] = held - nbytes
        self._used_total -= nbytes

    def move(self, src: str, dst: str, nbytes: int) -> None:
        """Reclassify bytes between categories without changing the total.

        Used when an idle cached adapter is re-acquired by a request
        (``adapter_cache`` -> ``adapter``) and vice versa; the weights do not
        move in memory, only their accounting state changes.
        """
        self.release(src, nbytes)
        # A move can never fail: the bytes were already resident.
        self._used.setdefault(dst, 0)
        self._used[dst] += nbytes
        self._used_total += nbytes

    def can_fit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def enable_telemetry(self, interval: float) -> None:
        """Record at most one memory sample per ``interval`` simulated seconds."""
        self._telemetry_interval = float(interval)

    def maybe_sample(self, now: float) -> None:
        """Record a sample if telemetry is enabled and the interval elapsed."""
        if self._telemetry_interval is None:
            return
        if now - self._last_sample_time < self._telemetry_interval:
            return
        self._last_sample_time = now
        self.samples.append(MemorySample(time=now, usage=dict(self._used)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cats = ", ".join(f"{k}={v / MB:.0f}MB" for k, v in self._used.items() if v)
        return f"GpuDevice({self.spec.name}, free={self.free_bytes / MB:.0f}MB, {cats})"
