"""Host-to-GPU transfer channel.

The link is modelled as a FIFO-serialized channel with a fixed effective
bandwidth plus a small per-transfer setup latency.  Serialization is the
behaviour that produces the paper's §3.2 contention effect: under load,
adapter transfers queue behind each other and adapter-load latency inflates
well beyond ``size / bandwidth``.

Calibration: Figure 2 shows a 256 MB rank-128 adapter loading in ~25 ms on an
unloaded system, i.e. ~10 GB/s effective host-to-device bandwidth (a PCIe
4.0 x16 link with realistic pinned-memory efficiency).  Figure 14 shows
S-LoRA critical-path loads of up to 30 ms, consistent with this plus queueing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.simulator import Simulator

GB = 1024 ** 3


@dataclass(frozen=True)
class PcieSpec:
    """Static link description.

    Attributes:
        bandwidth_bytes: Effective host-to-device bandwidth (bytes/s).
        setup_latency: Fixed per-transfer latency (driver + DMA setup).
        sharing: ``"fifo"`` — transfers serialize in submission order (the
            default; DMA engines drain one copy at a time), or ``"fair"`` —
            concurrent transfers share the bandwidth equally (processor
            sharing, an idealized multi-engine copy model).  Queueing
            behaviour differs but byte conservation and completion
            notifications are identical.
    """

    bandwidth_bytes: float = 10.0 * GB
    setup_latency: float = 0.2e-3
    sharing: str = "fifo"

    def __post_init__(self) -> None:
        if self.sharing not in ("fifo", "fair"):
            raise ValueError(f"unknown sharing mode {self.sharing!r}")


@dataclass(eq=False)  # identity semantics: transfers are tracked in dicts
class Transfer:
    """One queued host-to-GPU copy."""

    nbytes: int
    submitted_at: float
    callback: Optional[Callable[["Transfer"], None]] = None
    tag: str = ""
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancelled: bool = False

    @property
    def queueing_delay(self) -> float:
        """Seconds the transfer waited behind other traffic."""
        if self.started_at is None:
            raise RuntimeError("transfer has not started")
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        """Total submit-to-finish latency."""
        if self.finished_at is None:
            raise RuntimeError("transfer has not finished")
        return self.finished_at - self.submitted_at


@dataclass
class LinkWindowStats:
    """Aggregated link telemetry over a time window (for Figure 4)."""

    start: float
    end: float
    bytes_moved: int = 0
    transfers: int = 0

    @property
    def bandwidth(self) -> float:
        span = self.end - self.start
        return self.bytes_moved / span if span > 0 else 0.0


class PcieLink:
    """FIFO-serialized host-to-GPU transfer channel with telemetry.

    Transfers are served one at a time in submission order; each takes
    ``setup_latency + nbytes / bandwidth`` seconds of link time.  Completion
    invokes the transfer's callback (the adapter manager's "load finished"
    hook).
    """

    def __init__(self, sim: Simulator, spec: PcieSpec = PcieSpec()) -> None:
        self.sim = sim
        self.spec = spec
        self._queue: deque[Transfer] = deque()
        self._active: Optional[Transfer] = None
        self.total_bytes_moved: int = 0
        self.total_transfers: int = 0
        self.busy_time: float = 0.0
        self._completed_log: list[Transfer] = []
        self.keep_log: bool = False
        # Fair (processor-sharing) mode state: remaining virtual bytes per
        # in-flight transfer (setup latency folded in as equivalent bytes).
        self._fair_active: dict[Transfer, float] = {}
        self._fair_event = None
        self._fair_last_update: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Transfers waiting (not counting the one in flight)."""
        return len(self._queue)

    @property
    def in_flight(self) -> Optional[Transfer]:
        return self._active

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of wall-clock time the link spent moving bytes."""
        span = elapsed if elapsed is not None else self.sim.now
        return self.busy_time / span if span > 0 else 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded service time of a transfer of ``nbytes``."""
        return self.spec.setup_latency + nbytes / self.spec.bandwidth_bytes

    # ------------------------------------------------------------------ #
    def submit(
        self,
        nbytes: int,
        callback: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Queue a host-to-GPU copy; ``callback(transfer)`` fires on completion."""
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        xfer = Transfer(nbytes=nbytes, submitted_at=self.sim.now, callback=callback, tag=tag)
        if self.spec.sharing == "fair":
            self._fair_submit(xfer)
            return xfer
        self._queue.append(xfer)
        self._pump()
        return xfer

    def submit_sharded(
        self,
        nbytes: int,
        shards: int,
        per_shard_overhead: float,
        callback: Optional[Callable[[Transfer], None]] = None,
        tag: str = "",
    ) -> Transfer:
        """Queue a tensor-parallel sharded copy.

        The adapter is partitioned across ``shards`` GPUs; the shards move
        serially over the shared host link and each pays an extra
        synchronization overhead (§3.2: "transferred separately to each GPU's
        memory, and synchronized").  Modelled as one logical transfer whose
        service time is ``shards * (setup + shard_bytes/bw + overhead)``.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        overhead_bytes = int(
            (per_shard_overhead + self.spec.setup_latency) * shards
            * self.spec.bandwidth_bytes
        )
        # Encode the sync overhead as equivalent bytes so the FIFO treats the
        # sharded load as one unit of link occupancy.
        return self.submit(nbytes + overhead_bytes, callback=callback, tag=tag)

    def cancel(self, xfer: Transfer) -> bool:
        """Cancel a queued transfer; returns False if already started.

        Fair-sharing transfers start immediately and cannot be cancelled.
        """
        if xfer.started_at is not None or xfer.cancelled:
            return False
        xfer.cancelled = True
        try:
            self._queue.remove(xfer)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Fair (processor-sharing) mode
    # ------------------------------------------------------------------ #
    def _fair_submit(self, xfer: Transfer) -> None:
        self._fair_progress()
        xfer.started_at = self.sim.now
        virtual = xfer.nbytes + self.spec.setup_latency * self.spec.bandwidth_bytes
        self._fair_active[xfer] = virtual
        self._fair_reschedule()

    def _fair_progress(self) -> None:
        """Drain every active transfer at its fair share since last update."""
        now = self.sim.now
        dt = now - self._fair_last_update
        self._fair_last_update = now
        n = len(self._fair_active)
        if n == 0 or dt <= 0:
            return
        drained = dt * self.spec.bandwidth_bytes / n
        for xfer in self._fair_active:
            self._fair_active[xfer] -= drained
        self.busy_time += dt

    def _fair_reschedule(self) -> None:
        if self._fair_event is not None:
            self.sim.cancel(self._fair_event)
            self._fair_event = None
        if not self._fair_active:
            return
        n = len(self._fair_active)
        min_remaining = min(self._fair_active.values())
        delay = max(0.0, min_remaining * n / self.spec.bandwidth_bytes)
        self._fair_event = self.sim.schedule(delay, self._fair_complete)

    def _fair_complete(self) -> None:
        self._fair_event = None
        self._fair_progress()
        finished = [x for x, rem in self._fair_active.items() if rem <= 0.5]
        for xfer in finished:
            del self._fair_active[xfer]
            xfer.finished_at = self.sim.now
            self.total_bytes_moved += xfer.nbytes
            self.total_transfers += 1
            if self.keep_log:
                self._completed_log.append(xfer)
        self._fair_reschedule()
        for xfer in finished:
            if xfer.callback is not None:
                xfer.callback(xfer)

    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        if self._active is not None or not self._queue:
            return
        xfer = self._queue.popleft()
        xfer.started_at = self.sim.now
        self._active = xfer
        duration = self.transfer_time(xfer.nbytes)
        self.sim.schedule(duration, self._complete, xfer, duration)

    def _complete(self, xfer: Transfer, duration: float) -> None:
        xfer.finished_at = self.sim.now
        self._active = None
        self.total_bytes_moved += xfer.nbytes
        self.total_transfers += 1
        self.busy_time += duration
        if self.keep_log:
            self._completed_log.append(xfer)
        if xfer.callback is not None:
            xfer.callback(xfer)
        self._pump()

    # ------------------------------------------------------------------ #
    def completed_transfers(self) -> list[Transfer]:
        """Completed transfer log (only populated when ``keep_log`` is True)."""
        return list(self._completed_log)

    def window_stats(self, window: float, horizon: float) -> list[LinkWindowStats]:
        """Bin the completed-transfer log into fixed windows (Figure 4 telemetry)."""
        if not self.keep_log:
            raise RuntimeError("enable keep_log before the run to use window_stats")
        n_bins = max(1, int(horizon / window))
        bins = [LinkWindowStats(start=i * window, end=(i + 1) * window) for i in range(n_bins)]
        for xfer in self._completed_log:
            if xfer.finished_at is None:
                continue
            idx = min(int(xfer.finished_at / window), n_bins - 1)
            bins[idx].bytes_moved += xfer.nbytes
            bins[idx].transfers += 1
        return bins
