"""Hardware substrates: GPU memory accountant, PCIe link, multi-GPU groups."""

from repro.hardware.gpu import (
    GpuSpec,
    GpuDevice,
    MemoryExhausted,
    A40_48GB,
    A100_80GB,
    A100_48GB,
    A100_24GB,
    GPU_ZOO,
)
from repro.hardware.pcie import PcieLink, PcieSpec, Transfer
from repro.hardware.cluster import TensorParallelGroup, DataParallelCluster

__all__ = [
    "GpuSpec",
    "GpuDevice",
    "MemoryExhausted",
    "A40_48GB",
    "A100_80GB",
    "A100_48GB",
    "A100_24GB",
    "GPU_ZOO",
    "PcieLink",
    "PcieSpec",
    "Transfer",
    "TensorParallelGroup",
    "DataParallelCluster",
]
