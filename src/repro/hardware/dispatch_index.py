"""Sub-linear dispatch indices for the data-parallel cluster.

Every load-following dispatch policy used to answer "which replica next?"
by scanning the whole fleet per arrival — O(n) probes that dominate the
hot path once fleets reach the 100s–1000s of replicas a serving *region*
needs.  The structures here answer the same queries in O(log n) against
the cluster's incremental load counters:

* :class:`MinLoadHeap` — a lazy min-heap of ``(load, index)`` entries for
  JSQ-style argmin queries.  Entries are never updated in place: every
  load change pushes a fresh entry, and stale entries (whose stored load
  no longer matches the live counter, or whose replica left the dispatch
  set) are discarded at ``peek`` time.  The ``(load, index)`` tuple order
  reproduces exactly the ``min()``-over-ascending-candidates tie-break of
  the linear scan: smallest load first, lowest replica index on ties.

* :class:`SelectableBitset` — a Fenwick-indexed 0/1 array over replica
  slots supporting O(log n) *k-th set bit* selection.  Power-of-two-
  choices sampling draws positions into the list of unsaturated eligible
  replicas; selecting the k-th set bit maps a position to a replica index
  without materializing that list, consuming the dispatch RNG identically
  to the scan it replaces.

The cluster owns all index maintenance (what to push, when to rebuild);
these classes are deliberately dumb containers so the bit-for-bit
equivalence argument lives in one place (``hardware/cluster.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterable, Optional, Sequence


class MinLoadHeap:
    """Lazy min-heap of ``(load, replica index)`` entries.

    The owner pushes a fresh entry on every load change and supplies the
    live ``loads`` / ``eligible`` arrays at query time; ``peek`` discards
    entries that no longer reflect them.  An entry that *matches* the live
    load is current by construction — if two pushes stored the same value,
    discarding either is harmless because an equal entry remains.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, load, index: int) -> None:
        heappush(self._heap, (load, index))

    def rebuild(self, entries: Iterable) -> None:
        """Replace the heap contents with ``(load, index)`` pairs (compaction
        after lazy deletions, or a fleet-membership change)."""
        self._heap = list(entries)
        heapify(self._heap)

    def peek(self, loads: Sequence, eligible: Sequence) -> Optional[int]:
        """Index with the smallest current load among eligible replicas
        (ties: lowest index), or ``None`` if no entry survives."""
        heap = self._heap
        while heap:
            load, index = heap[0]
            if eligible[index] and loads[index] == load:
                return index
            heappop(heap)
        return None

    def peek_unsaturated(self, loads: Sequence, eligible: Sequence,
                         counts: Sequence, caps: Sequence) -> Optional[int]:
        """Like :meth:`peek`, but skip replicas whose request count is at
        their batch cap.  A *valid* entry for a saturated replica is
        discarded rather than kept: the replica can only regain headroom
        through a finish event, which changes its load and pushes a fresh
        entry, so nothing is lost."""
        heap = self._heap
        while heap:
            load, index = heap[0]
            if eligible[index] and loads[index] == load:
                if counts[index] < caps[index]:
                    return index
            heappop(heap)
        return None


class SelectableBitset:
    """Fenwick-indexed 0/1 array with O(log n) k-th set bit selection.

    Built in O(n) from an initial bit sequence; :meth:`set` flips one bit
    in O(log n); :meth:`kth` returns the index of the k-th set bit
    (0-based, ascending index order) in O(log n).
    """

    __slots__ = ("_n", "_bits", "_tree", "_count", "_log")

    def __init__(self, bits: Iterable) -> None:
        self._bits = [1 if b else 0 for b in bits]
        n = len(self._bits)
        self._n = n
        tree = [0] * (n + 1)
        for i, bit in enumerate(self._bits):
            if bit:
                tree[i + 1] += 1
        for i in range(1, n + 1):  # sibling pass turns counts into a Fenwick tree
            parent = i + (i & -i)
            if parent <= n:
                tree[parent] += tree[i]
        self._tree = tree
        self._count = sum(self._bits)
        self._log = n.bit_length()

    def __len__(self) -> int:
        return self._count

    def get(self, index: int) -> bool:
        return bool(self._bits[index])

    def set(self, index: int, value) -> None:
        bit = 1 if value else 0
        delta = bit - self._bits[index]
        if not delta:
            return
        self._bits[index] = bit
        self._count += delta
        tree, n = self._tree, self._n
        i = index + 1
        while i <= n:
            tree[i] += delta
            i += i & -i

    def kth(self, k: int) -> int:
        """Index of the k-th set bit (0-based), ascending."""
        if not 0 <= k < self._count:
            raise IndexError(f"k={k} out of range (count={self._count})")
        tree, n = self._tree, self._n
        pos = 0
        remaining = k + 1
        step = 1 << self._log
        while step:
            nxt = pos + step
            if nxt <= n and tree[nxt] < remaining:
                pos = nxt
                remaining -= tree[nxt]
            step >>= 1
        return pos  # pos = count of slots before the answer = its 0-based index
