"""System presets: every configuration the paper evaluates, by name.

``build_system`` assembles a full serving stack — simulator, GPU (or TP
group), PCIe link, cost model, adapter registry, predictor, scheduler,
adapter manager, engine — for one of the named presets:

=====================  ==========================  ==============================
preset                 scheduler                   adapter management
=====================  ==========================  ==============================
slora                  FIFO                        fetch-on-demand, no cache
slora_sjf              SJF (µServe)                fetch-on-demand, no cache
slora_chunked          FIFO + chunked prefill      fetch-on-demand, no cache
chameleon              Chameleon MLQ               Chameleon cache (compound score)
chameleon_nocache      Chameleon MLQ               fetch-on-demand, no cache
chameleon_nosched      FIFO                        Chameleon cache
chameleon_lru          Chameleon MLQ               Chameleon cache, LRU eviction
chameleon_fairshare    Chameleon MLQ               Chameleon cache, equal weights
chameleon_gdsf         Chameleon MLQ               Chameleon cache, GDSF eviction
chameleon_prefetch     Chameleon MLQ               cache + histogram prefetcher
chameleon_static       static 4-queue MLQ          Chameleon cache
chameleon_outputonly   MLQ, WRS = output only      Chameleon cache
=====================  ==========================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.adapters.registry import AdapterRegistry
from repro.core.cache import CachePrefetcher, ChameleonCacheManager
from repro.core.eviction import make_policy
from repro.core.mlq import MlqConfig, MlqScheduler
from repro.core.wrs import WorkloadBounds, WrsParams
from repro.hardware.cluster import TensorParallelGroup
from repro.hardware.gpu import A40_48GB, GPU_ZOO, GpuDevice, GpuSpec
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel, CostModelParams
from repro.llm.model import LLAMA_7B, ModelSpec
from repro.predictor.output_length import OutputLengthPredictor
from repro.serving.adapter_manager import AdapterManagerBase, SloraAdapterManager
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.schedulers import FifoScheduler, Scheduler, SjfScheduler
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.workload.trace import SPLITWISE_PROFILE, TraceProfile

PRESETS = (
    "slora",
    "slora_sjf",
    "slora_chunked",
    "chameleon",
    "chameleon_nocache",
    "chameleon_nosched",
    "chameleon_lru",
    "chameleon_fairshare",
    "chameleon_gdsf",
    "chameleon_prefetch",
    "chameleon_static",
    "chameleon_outputonly",
)

#: Sarathi-style prefill token budget for the chunked-prefill baseline.
DEFAULT_CHUNK_SIZE = 512


@dataclass
class System:
    """A fully-wired serving stack, ready to run a trace."""

    preset: str
    sim: Simulator
    gpu: GpuDevice
    link: PcieLink
    model: ModelSpec
    cost_model: CostModel
    registry: AdapterRegistry
    scheduler: Scheduler
    adapter_manager: AdapterManagerBase
    predictor: Optional[OutputLengthPredictor]
    engine: ServingEngine
    rng: RngStreams
    prefetcher: Optional[CachePrefetcher] = None

    def run_trace(self, requests, horizon: Optional[float] = None) -> None:
        self.engine.run_trace(requests, horizon=horizon)

    def summary(self, **kwargs):
        return self.engine.summary(**kwargs)


def resolve_gpu(name: "GpuSpec | str") -> GpuSpec:
    """Resolve a GPU-zoo name to its spec (specs pass through unchanged)."""
    if isinstance(name, GpuSpec):
        return name
    try:
        return GPU_ZOO[name]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name!r}; choose from {sorted(GPU_ZOO)}"
        ) from None


def default_bounds(
    registry: AdapterRegistry,
    profile: TraceProfile = SPLITWISE_PROFILE,
) -> WorkloadBounds:
    """WRS normalization bounds from a trace profile and an adapter pool."""
    return WorkloadBounds(
        max_input_tokens=profile.max_input_tokens,
        max_output_tokens=profile.max_output_tokens,
        max_adapter_bytes=registry.max_size_bytes,
    )


def build_system(
    preset: str,
    *,
    model: ModelSpec = LLAMA_7B,
    gpu: "GpuSpec | str" = A40_48GB,
    gpu_memory_bytes: Optional[int] = None,
    tp_degree: int = 1,
    registry: Optional[AdapterRegistry] = None,
    n_adapters: int = 100,
    profile: TraceProfile = SPLITWISE_PROFILE,
    predictor_accuracy: Optional[float] = 0.8,
    slo: float = 5.0,
    seed: int = 0,
    pcie: PcieSpec = PcieSpec(),
    cost_params: CostModelParams = CostModelParams(),
    engine_config: Optional[EngineConfig] = None,
    mlq_config: Optional[MlqConfig] = None,
    link_keep_log: bool = False,
    sim: Optional[Simulator] = None,
) -> System:
    """Build a named system preset (see module docstring).

    ``slo`` feeds the MLQ quota solver; experiments pass the trace-derived
    SLO (5x mean isolated latency).  ``predictor_accuracy=None`` disables the
    predictor (only valid for presets that do not need predictions).
    Pass a shared ``sim`` to co-schedule several systems on one clock
    (data-parallel replicas).  ``gpu`` also accepts a GPU-zoo name (e.g.
    ``"a100-80gb"``), which is how heterogeneous replica specs and the CLI
    name mixed fleets.
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {PRESETS}")
    if isinstance(gpu, str):
        gpu = resolve_gpu(gpu)

    sim = sim if sim is not None else Simulator()
    rng = RngStreams(seed)
    if tp_degree > 1:
        device: GpuDevice = TensorParallelGroup(gpu, tp_degree)
        if gpu_memory_bytes is not None:
            raise ValueError("use the GpuSpec to size memory for TP groups")
    else:
        device = GpuDevice(gpu, memory_bytes=gpu_memory_bytes)
    link = PcieLink(sim, pcie)
    link.keep_log = link_keep_log
    if registry is None:
        registry = AdapterRegistry.build(model, n_adapters)
    speedup = device.compute_speedup if isinstance(device, TensorParallelGroup) else 1.0
    cost_model = CostModel(model, gpu, cost_params, compute_speedup=speedup)

    predictor = None
    if predictor_accuracy is not None:
        predictor = OutputLengthPredictor(rng.get("predictor"), accuracy=predictor_accuracy)

    engine_config = engine_config or EngineConfig()
    if preset == "slora_chunked" and engine_config.chunk_size is None:
        # replace() keeps every other caller-set field (prefill_token_budget,
        # record_batch_occupancy, load_stall_bandwidth, ...) intact.
        engine_config = replace(engine_config, chunk_size=DEFAULT_CHUNK_SIZE)

    bounds = default_bounds(registry, profile)
    scheduler = _build_scheduler(preset, model, registry, cost_model, bounds, slo, mlq_config)
    manager, prefetcher = _build_manager(preset, sim, device, link, registry)

    if scheduler.needs_predictions and predictor is None:
        raise ValueError(f"preset {preset!r} needs an output-length predictor")

    engine = ServingEngine(
        sim=sim, gpu=device, link=link, model=model, cost_model=cost_model,
        registry=registry, scheduler=scheduler, adapter_manager=manager,
        predictor=predictor, config=engine_config,
    )
    return System(
        preset=preset, sim=sim, gpu=device, link=link, model=model,
        cost_model=cost_model, registry=registry, scheduler=scheduler,
        adapter_manager=manager, predictor=predictor, engine=engine, rng=rng,
        prefetcher=prefetcher,
    )


def _build_scheduler(
    preset: str,
    model: ModelSpec,
    registry: AdapterRegistry,
    cost_model: CostModel,
    bounds: WorkloadBounds,
    slo: float,
    mlq_config: Optional[MlqConfig],
) -> Scheduler:
    if preset in ("slora", "slora_chunked", "chameleon_nosched"):
        return FifoScheduler()
    if preset == "slora_sjf":
        return SjfScheduler()
    config = mlq_config
    if config is None:
        if preset == "chameleon_static":
            config = MlqConfig(slo=slo, static_k=4)
        elif preset == "chameleon_outputonly":
            config = MlqConfig(slo=slo, wrs_params=WrsParams(mode="output_only"))
        else:
            config = MlqConfig(slo=slo)
    return MlqScheduler(model, registry, cost_model, bounds, config)


def _build_manager(
    preset: str,
    sim: Simulator,
    device: GpuDevice,
    link: PcieLink,
    registry: AdapterRegistry,
) -> tuple[AdapterManagerBase, Optional[CachePrefetcher]]:
    if preset in ("slora", "slora_sjf", "slora_chunked", "chameleon_nocache"):
        return SloraAdapterManager(sim, device, link, registry), None
    policy_name = {
        "chameleon_lru": "lru",
        "chameleon_fairshare": "fairshare",
        "chameleon_gdsf": "gdsf",
    }.get(preset, "chameleon")
    policy = make_policy(policy_name, link_bandwidth=link.spec.bandwidth_bytes)
    prefetcher = None
    if preset == "chameleon_prefetch":
        prefetcher = CachePrefetcher(sim)
    manager = ChameleonCacheManager(
        sim, device, link, registry, policy=policy, prefetcher=prefetcher
    )
    return manager, prefetcher
