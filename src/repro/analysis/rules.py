"""The simlint determinism & simulation-discipline rule catalogue.

Each rule is a small AST pass over one parsed :class:`Module` (or, for
cross-module properties, an accumulate-then-:meth:`finalize` pass over the
whole tree).  Rules report *statically decidable* violations only; runtime
behavior is never consulted, so the analyzer is itself deterministic.

The catalogue (rationales live on each class and in the README):

========  ==========================================================
D001      ambient RNG outside the stream factory
D002      wall-clock reads outside the sanctioned reporting layer
D003      unordered iteration on the simulation path
D004      mutable default arguments
D005      ``id()``-based ordering / hash-order tiebreaks
D006      unregistered or non-literal ``RngStreams`` stream names
D007      ``summary().extra`` key drift between writers and readers
D008      blanket ``type: ignore`` without an error code
D009      file writes from runtime modules (telemetry exports only)
========  ==========================================================

(D000, malformed/unjustified suppression comments, is emitted by the
engine's suppression scanner, not by an AST rule.)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.analysis.registry import register
from repro.analysis.types import Module, Rule, Violation
from repro.sim.rng import STREAM_REGISTRY

if TYPE_CHECKING:
    from repro.analysis.config import SimlintConfig

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map locally bound names to the canonical dotted path they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import time`` -> ``{"time": "time.time"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def canonical_call_target(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The called name with its leading import alias expanded."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head)
    if expanded is None:
        return dotted
    return f"{expanded}.{rest}" if rest else expanded


def _is_name_call(node: ast.expr, names: frozenset[str]) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in names)


# --------------------------------------------------------------------- #
# D001 — ambient RNG
# --------------------------------------------------------------------- #


@register
class AmbientRngRule(Rule):
    """All randomness must flow through a named ``RngStreams`` substream.

    One stray ``random.random()`` or ``np.random.default_rng()`` on the
    simulation path un-pairs every A/B comparison: the ambient draw
    consumes entropy whose position depends on incidental execution
    order, so two system variants stop replaying the same workload.
    """

    code = "D001"
    name = "ambient-rng"
    rationale = ("ambient random.* / np.random.* draws un-pair A/B runs; "
                 "all stochasticity must come from a named RngStreams "
                 "substream")
    hint = ("draw from RngStreams(seed).get(\"<registered stream>\") "
            "instead (see repro.sim.rng.STREAM_REGISTRY)")

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_target(node, aliases)
            if target is None:
                continue
            if target.startswith("random.") or target == "random":
                yield self.violation(
                    module, node,
                    f"ambient stdlib RNG call '{target}'")
            elif target.startswith("numpy.random."):
                yield self.violation(
                    module, node,
                    f"ambient numpy RNG call '{target}'")


# --------------------------------------------------------------------- #
# D002 — wall clock
# --------------------------------------------------------------------- #

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register
class WallClockRule(Rule):
    """Nothing outside the sanctioned reporting layer reads real time.

    A simulation whose numbers depend on how fast the host happens to run
    is not reproducible; the simulated clock (``Simulator.now``) is the
    only "now" the simulation path may see.
    """

    code = "D002"
    name = "wall-clock"
    rationale = ("host-clock reads make runs machine-dependent; only the "
                 "allowlisted reporting layer (util/wallclock.py) may "
                 "touch real time")
    hint = ("use repro.util.wallclock (Stopwatch / wall_now) for elapsed-"
            "time reporting, or Simulator.now for simulated time")

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_target(node, aliases)
            if target in _WALL_CLOCK_CALLS:
                yield self.violation(
                    module, node, f"wall-clock read '{target}'")


# --------------------------------------------------------------------- #
# D003 — unordered iteration on the simulation path
# --------------------------------------------------------------------- #

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_ANNOTATION_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    if name is None:
        return False
    return name.split(".")[-1] in _SET_ANNOTATION_NAMES


def scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function/class scopes.

    Keeps name-based type guesses honest: ``evacuated`` may be a set in
    one method and a list in its neighbor, so evidence must never cross a
    scope boundary.  Deterministic breadth-first order.
    """
    queue: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while queue:
        node = queue.pop(0)
        yield node
        if not isinstance(node, _SCOPE_NODES):
            queue.extend(ast.iter_child_nodes(node))


def all_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every nested function/class scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_NODES):
            yield node


def _is_set_valued(value: ast.expr | None) -> bool:
    return value is not None and (
        isinstance(value, (ast.Set, ast.SetComp))
        or _is_name_call(value, _SET_CONSTRUCTORS))


def _set_typed_attrs(tree: ast.Module) -> frozenset[str]:
    """Attribute names (``self.x`` / class attrs) statically known as sets.

    Attributes are object state shared across methods, so — unlike plain
    names — evidence for them is collected module-wide.
    """
    attrs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if not (_is_set_annotation(node.annotation)
                    or _is_set_valued(node.value)):
                continue
            if isinstance(node.target, ast.Attribute):
                attrs.add(node.target.attr)
        elif isinstance(node, ast.Assign) and _is_set_valued(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for node in scope_walk(class_node):
            if isinstance(node, ast.Assign) and _is_set_valued(node.value):
                attrs.update(t.id for t in node.targets
                             if isinstance(t, ast.Name))
            elif (isinstance(node, ast.AnnAssign)
                  and isinstance(node.target, ast.Name)
                  and (_is_set_annotation(node.annotation)
                       or _is_set_valued(node.value))):
                attrs.add(node.target.id)
    return frozenset(attrs)


def _set_typed_names(scope: ast.AST) -> frozenset[str]:
    """Plain names assigned a set value/annotation within one scope."""
    names: set[str] = set()
    for node in scope_walk(scope):
        if isinstance(node, ast.AnnAssign):
            if (_is_set_annotation(node.annotation)
                    or _is_set_valued(node.value)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        elif isinstance(node, ast.Assign) and _is_set_valued(node.value):
            names.update(t.id for t in node.targets
                         if isinstance(t, ast.Name))
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in (*scope.args.posonlyargs, *scope.args.args,
                    *scope.args.kwonlyargs):
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                names.add(arg.arg)
    return frozenset(names)


@register
class UnorderedIterationRule(Rule):
    """No hash-order iteration where it can reach scheduling or summaries.

    ``set`` iteration order is salted per interpreter run in principle and
    insertion-history-dependent in practice; any event ordering or summary
    derived from it silently varies between otherwise identical runs.
    """

    code = "D003"
    name = "unordered-iteration"
    rationale = ("set iteration order / dict popitem / next(iter(...)) "
                 "leak hash order into event scheduling and summaries")
    hint = "wrap the iterable in sorted(...) with an explicit key"

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        set_attrs = _set_typed_attrs(module.tree)
        for scope in all_scopes(module.tree):
            yield from self._check_scope(module, scope, set_attrs)

    def _check_scope(self, module: Module, scope: ast.AST,
                     set_attrs: frozenset[str]) -> Iterator[Violation]:
        set_names = _set_typed_names(scope)

        def is_set_expr(expr: ast.expr) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if _is_name_call(expr, _SET_CONSTRUCTORS):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in set_names
            if isinstance(expr, ast.Attribute):
                return expr.attr in set_attrs
            return False

        for node in scope_walk(scope):
            if isinstance(node, ast.For) and is_set_expr(node.iter):
                yield self.violation(
                    module, node.iter, "iteration over a bare set")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        yield self.violation(
                            module, comp.iter,
                            "comprehension over a bare set")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "popitem":
                    yield self.violation(
                        module, node,
                        "popitem() removes in container order",
                        hint="pop an explicitly chosen key instead")
                elif (isinstance(func, ast.Attribute) and func.attr == "pop"
                      and not node.args and not node.keywords
                      and is_set_expr(func.value)):
                    yield self.violation(
                        module, node,
                        "set.pop() removes an arbitrary element",
                        hint="pop min(...)/max(...) of the set instead")
                elif (isinstance(func, ast.Name) and func.id == "next"
                      and node.args
                      and _is_name_call(node.args[0], frozenset({"iter"}))):
                    yield self.violation(
                        module, node,
                        "next(iter(...)) depends on container order",
                        hint="index a sorted(...) view or name the key "
                             "explicitly")
                elif (isinstance(func, ast.Name)
                      and func.id in ("list", "tuple")
                      and len(node.args) == 1
                      and is_set_expr(node.args[0])):
                    yield self.violation(
                        module, node,
                        f"{func.id}() materializes a set in hash order")


# --------------------------------------------------------------------- #
# D004 — mutable default arguments
# --------------------------------------------------------------------- #

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments (the PR 1 ``EngineConfig`` bug class).

    A mutable default is one object shared by every call — state leaks
    between supposedly independent replicas/runs, exactly the shared-
    ``EngineConfig`` bug PR 1 had to fix.
    """

    code = "D004"
    name = "mutable-default"
    rationale = ("a mutable default is shared across calls; replica/run "
                 "state bleeds through it (the PR 1 EngineConfig bug)")
    hint = "default to None and construct the container inside the body"

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if (isinstance(default, (ast.List, ast.Dict, ast.Set,
                                         ast.ListComp, ast.DictComp,
                                         ast.SetComp))
                        or _is_name_call(default, _MUTABLE_CONSTRUCTORS)):
                    yield self.violation(
                        module, default,
                        f"mutable default argument in {node.name}()")


# --------------------------------------------------------------------- #
# D005 — id()-based ordering
# --------------------------------------------------------------------- #

_ORDERING_FUNCS = frozenset({"sorted", "min", "max"})


def _contains_id_call(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if _is_name_call(node, frozenset({"id"})):
            return True
        # A bare ``key=id`` passes the builtin itself.
        if isinstance(node, ast.Name) and node.id == "id":
            return True
    return False


@register
class IdOrderingRule(Rule):
    """No ``id()``-based sort keys or ordering tiebreaks.

    ``id()`` is a memory address: allocator-dependent, varying run to run.
    Membership tests on ``id()`` are fine; *ordering* by it is not.
    """

    code = "D005"
    name = "id-ordering"
    rationale = ("id() is a memory address; ordering by it varies across "
                 "runs and machines")
    hint = "order by a stable field (request_id, arrival_time, index)"

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_ordering = (
                    (isinstance(func, ast.Name) and func.id in _ORDERING_FUNCS)
                    or (isinstance(func, ast.Attribute) and func.attr == "sort"))
                if not is_ordering:
                    continue
                for keyword in node.keywords:
                    if keyword.arg == "key" and _contains_id_call(keyword.value):
                        yield self.violation(
                            module, node, "id()-based ordering key")
            elif isinstance(node, ast.Compare):
                ordered = any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                              for op in node.ops)
                if not ordered:
                    continue
                operands = [node.left, *node.comparators]
                if any(_is_name_call(operand, frozenset({"id"}))
                       for operand in operands):
                    yield self.violation(
                        module, node, "ordering comparison on id() values")


# --------------------------------------------------------------------- #
# D006 — stream-registry discipline
# --------------------------------------------------------------------- #


def _rng_streams_receivers(tree: ast.Module) -> tuple[frozenset[str], frozenset[str]]:
    """(plain names, attribute names) statically known as ``RngStreams``."""
    names: set[str] = set()
    attrs: set[str] = set()

    def is_rng_streams_call(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = dotted_name(expr.func)
        return dotted is not None and dotted.split(".")[-1] == "RngStreams"

    def is_rng_streams_annotation(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            return annotation.value.strip("\"'") == "RngStreams"
        dotted = dotted_name(annotation)
        return dotted is not None and dotted.split(".")[-1] == "RngStreams"

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_rng_streams_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign):
            typed = is_rng_streams_annotation(node.annotation) or (
                node.value is not None and is_rng_streams_call(node.value))
            if typed:
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = [*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs]
            for arg in args:
                if is_rng_streams_annotation(arg.annotation):
                    names.add(arg.arg)
    return frozenset(names), frozenset(attrs)


@register
class StreamRegistryRule(Rule):
    """Stream names are string literals registered in ``STREAM_REGISTRY``.

    The set of stochastic inputs must be statically enumerable: a stream
    name computed at runtime (or minted ad hoc) cannot be audited, and an
    unregistered literal is a stream the documentation does not know
    exists.
    """

    code = "D006"
    name = "stream-registry"
    rationale = ("stream names must be literals registered in "
                 "repro.sim.rng.STREAM_REGISTRY so the full set of "
                 "stochastic inputs is enumerable")
    hint = ("register the stream in repro.sim.rng.STREAM_REGISTRY and "
            "pass it as a string literal")

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        names, attrs = _rng_streams_receivers(module.tree)

        def is_streams_receiver(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Call):
                dotted = dotted_name(expr.func)
                return (dotted is not None
                        and dotted.split(".")[-1] == "RngStreams")
            if isinstance(expr, ast.Name):
                return expr.id in names
            if isinstance(expr, ast.Attribute):
                return expr.attr in attrs
            return False

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("get", "spawn")
                    and is_streams_receiver(func.value)):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                yield self.violation(
                    module, node,
                    f"RngStreams.{func.attr}() stream name is not a "
                    "string literal")
            elif arg.value not in STREAM_REGISTRY:
                yield self.violation(
                    module, node,
                    f"stream {arg.value!r} is not registered in "
                    "STREAM_REGISTRY")


# --------------------------------------------------------------------- #
# D007 — summary().extra key drift
# --------------------------------------------------------------------- #


def _is_extra_receiver(expr: ast.expr) -> bool:
    return ((isinstance(expr, ast.Name) and expr.id == "extra")
            or (isinstance(expr, ast.Attribute) and expr.attr == "extra"))


def _dict_literal_keys(expr: ast.expr) -> Iterator[str]:
    if isinstance(expr, ast.Dict):
        for key in expr.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield key.value


@register
class ExtraKeyDriftRule(Rule):
    """Every ``summary().extra`` key read somewhere is written somewhere.

    The ``extra`` mapping is a stringly-typed contract between the cluster
    layer (writer) and experiments/CLI (readers); a renamed write key
    turns every reader into a silent ``KeyError``-at-runtime (or a
    silently wrong ``.get`` default).  This is a whole-project rule:
    reads are collected per module and judged against the union of writes.
    """

    code = "D007"
    name = "extra-key-drift"
    rationale = ("summary().extra keys are a cross-module contract; a "
                 "read of a never-written key is drift that fails (or "
                 "defaults) only at runtime")
    hint = ("match the literal to a key written via extra.update()/"
            "extra[...] (grep summary() in serving/replica.py)")

    def __init__(self, config: "SimlintConfig") -> None:
        super().__init__(config)
        self._written: set[str] = set()
        self._reads: list[tuple[Module, ast.expr, str]] = []

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return iter(())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute) and func.attr == "update"
                        and _is_extra_receiver(func.value)):
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            self._written.add(keyword.arg)
                        else:  # extra.update(**mapping) — opaque, skip
                            self._written.update(
                                _dict_literal_keys(keyword.value))
                    for arg in node.args:
                        self._written.update(_dict_literal_keys(arg))
                elif (isinstance(func, ast.Attribute) and func.attr == "get"
                        and _is_extra_receiver(func.value) and node.args):
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and \
                            isinstance(first.value, str):
                        self._reads.append((module, node, first.value))
                else:
                    for keyword in node.keywords:
                        if keyword.arg == "extra":
                            self._written.update(
                                _dict_literal_keys(keyword.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and _is_extra_receiver(target.value)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)):
                        self._written.add(target.slice.value)
                    elif _is_extra_receiver(target):
                        self._written.update(_dict_literal_keys(node.value))
            elif (isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and _is_extra_receiver(node.value)
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                self._reads.append((module, node, node.slice.value))
        return iter(())

    def finalize(self, modules: Sequence[Module]) -> Iterator[Violation]:
        for module, node, key in self._reads:
            if key not in self._written:
                yield self.violation(
                    module, node,
                    f"extra key {key!r} is read but never written "
                    "anywhere in the scanned tree")


# --------------------------------------------------------------------- #
# D008 — blanket mypy suppressions
# --------------------------------------------------------------------- #


@register
class BareTypeIgnoreRule(Rule):
    """Mypy suppressions must carry an error code.

    A blanket suppression hides every future error on that line, not just
    the one it was written for; ``[code]`` scoping keeps the debt visible
    and lets ``mypy --strict`` stay meaningful.
    """

    code = "D008"
    name = "bare-type-ignore"
    rationale = ("a code-less mypy suppression hides all future errors "
                 "on the line, not just the one it was written for")
    hint = "scope it: add the mypy error code in brackets"

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        pattern = re.compile(r"\btype:\s*ignore\b(?!\s*\[)")
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(module.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                if pattern.search(token.string):
                    yield Violation(
                        path=str(module.path),
                        line=token.start[0],
                        col=token.start[1],
                        code=self.code,
                        message="blanket mypy suppression without an "
                                "error code",
                        hint=self.hint,
                    )
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            return


# --------------------------------------------------------------------- #
# D009 — file writes on the simulation path
# --------------------------------------------------------------------- #


@register
class FileWriteRule(Rule):
    """Runtime modules must not open files for writing.

    A mid-run file write is a hidden side channel: it can block on the
    OS, its failure modes are invisible to the simulator, and its output
    interleaving depends on host state rather than the event order.  All
    run telemetry flows through in-memory sinks (``repro.obs``) and is
    exported *after* the run by the sanctioned exporter module.
    """

    code = "D009"
    name = "runtime-file-write"
    rationale = ("a file write inside a runtime module is a hidden side "
                 "channel with host-dependent interleaving; telemetry "
                 "must buffer in memory and export after the run")
    hint = ("collect into a repro.obs sink during the run and write via "
            "repro.obs.export afterwards")

    #: ``open()`` mode characters that make the handle writable.
    _WRITE_CHARS = frozenset("wax+")

    def check(self, module: Module) -> Iterator[Violation]:
        if not self.in_scope(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("write_text", "write_bytes")):
                yield self.violation(
                    module, node,
                    f".{func.attr}() writes a file from a runtime module")
                continue
            target = canonical_call_target(node, aliases)
            if target not in ("open", "builtins.open", "io.open",
                              "os.fdopen"):
                continue
            mode = self._literal_mode(node)
            if mode is not None and self._WRITE_CHARS & set(mode):
                yield self.violation(
                    module, node,
                    f"open(..., {mode!r}) writes a file from a runtime "
                    "module")

    @staticmethod
    def _literal_mode(node: ast.Call) -> str | None:
        """The literal mode string of an ``open`` call, else ``None``.

        Only statically decidable modes are reported: a computed mode is
        skipped rather than guessed at.
        """
        for keyword in node.keywords:
            if keyword.arg == "mode":
                value = keyword.value
                return (value.value
                        if isinstance(value, ast.Constant)
                        and isinstance(value.value, str) else None)
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            return node.args[1].value
        return None


def rule_catalogue() -> Iterable[type[Rule]]:
    """The registered rule classes (import side effect already done)."""
    from repro.analysis.registry import all_rule_classes

    return all_rule_classes()
