"""Command-line front end for simlint.

Invoked as ``python -m repro.analysis`` or ``python -m repro.cli lint``::

    python -m repro.analysis src/repro
    python -m repro.analysis --list-rules
    python -m repro.analysis --select D001,D006 src/repro/sim

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.engine import render_report, run_simlint
from repro.analysis.registry import all_rule_classes


def _default_paths() -> list[Path]:
    # The package's own source tree: <...>/repro, whatever it is named on
    # this checkout (src layout, installed site-packages, ...).
    return [Path(__file__).resolve().parent.parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: determinism & simulation-discipline analyzer",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--config", type=Path, metavar="PYPROJECT",
        help="explicit pyproject.toml carrying [tool.simlint] "
             "(default: nearest one above the first path)")
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml; use built-in defaults only")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print("simlint rule catalogue:")
        for cls in all_rule_classes():
            print(f"  {cls.code}  {cls.name:<22} {cls.rationale}")
        print("  D000  malformed-suppression   suppression comments need a "
              "rule code and a '-- why' justification")
        return 0

    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    if args.no_config:
        config = SimlintConfig()
    else:
        try:
            config = load_config(paths[0], explicit=args.config)
        except (FileNotFoundError, TypeError) as exc:
            parser.error(str(exc))
    if args.select:
        codes = tuple(
            code.strip() for code in args.select.split(",") if code.strip())
        config = SimlintConfig(
            allow=config.allow, scope=config.scope, select=codes)

    try:
        violations, files = run_simlint(paths, config)
    except (KeyError, FileNotFoundError, SyntaxError) as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    print(render_report(violations, files))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
