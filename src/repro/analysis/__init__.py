"""simlint — AST static analysis for determinism & simulation discipline.

Every headline number in this reproduction rests on paired randomness and
byte-identical reruns: all stochasticity flows through named
:class:`~repro.sim.rng.RngStreams` substreams, nothing on the simulation
path reads the wall clock, and iteration order never leaks into event
scheduling or summaries.  ``simlint`` turns that discipline from a
convention into a machine-checked property.

The package is a small, fully typed analysis framework:

* :mod:`repro.analysis.types` — the typed core: :class:`Violation`,
  :class:`Module`, the :class:`Rule` base class.
* :mod:`repro.analysis.registry` — the rule registry (``@register``).
* :mod:`repro.analysis.rules` — the determinism rule catalogue
  (D001..D008; D000 is emitted by the engine itself).
* :mod:`repro.analysis.config` — path-scoped allowlists and rule scopes,
  loaded from ``[tool.simlint]`` in ``pyproject.toml``.
* :mod:`repro.analysis.engine` — file walking, suppression comments
  (``# simlint: ignore[D002] -- reason``), filtering, reporting.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` /
  ``python -m repro.cli lint``.

Run it::

    PYTHONPATH=src python -m repro.analysis src/repro

Exit status is 0 when clean, 1 when violations remain, 2 on usage errors.
"""

from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.engine import run_simlint
from repro.analysis.registry import all_rule_classes, get_rule_class
from repro.analysis.types import Module, Rule, Violation

__all__ = [
    "Module",
    "Rule",
    "SimlintConfig",
    "Violation",
    "all_rule_classes",
    "get_rule_class",
    "load_config",
    "run_simlint",
]
