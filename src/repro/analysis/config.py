"""simlint configuration: path-scoped allowlists and rule scopes.

Two path-keyed mechanisms, both matching against a module's
package-relative path (``"sim/rng.py"``):

* **allow** — paths where a rule is switched *off* (the sanctioned homes
  of otherwise-forbidden constructs: ``sim/rng.py`` may touch
  ``np.random``, ``util/wallclock.py`` may read the wall clock).
* **scope** — paths a rule is restricted *to* (D003's unordered-iteration
  ban only bites on simulation-path modules; experiment table formatting
  is free to iterate however it likes).

Patterns are exact paths (``"cli.py"``), directory prefixes ending in
``/`` (``"serving/"``), or ``fnmatch`` globs (``"experiments/fig*.py"``).

Defaults below encode the repo's discipline; a ``[tool.simlint]`` table in
``pyproject.toml`` overrides per rule code::

    [tool.simlint.allow]
    D002 = ["util/wallclock.py"]

    [tool.simlint.scope]
    D003 = ["sim/", "serving/", "faults/", "hardware/"]
"""

from __future__ import annotations

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None  # type: ignore[assignment]

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Mapping

#: Where otherwise-forbidden constructs are sanctioned.
DEFAULT_ALLOW: Mapping[str, tuple[str, ...]] = {
    # The stream factory is the one place ambient numpy RNG may appear:
    # it is what turns ambient entropy into named streams.
    "D001": ("sim/rng.py",),
    # The single sanctioned wall-clock door (elapsed-time reporting).
    "D002": ("util/wallclock.py",),
    # The single sanctioned file-write door: post-run telemetry export.
    "D009": ("obs/export.py",),
}

#: Where a rule applies at all (unset = everywhere).
DEFAULT_SCOPE: Mapping[str, tuple[str, ...]] = {
    # Unordered iteration only corrupts determinism where it can reach
    # event scheduling or summaries: the simulation path.
    "D003": ("sim/", "serving/", "faults/", "hardware/"),
    # File writes are banned *during* a run: the modules that execute on
    # the simulated clock.  Offline tooling (workload generation, the
    # CLI, experiment tables) writes artifacts freely.
    "D009": ("sim/", "serving/", "faults/", "hardware/", "adapters/",
             "obs/"),
}


@dataclass(frozen=True)
class SimlintConfig:
    """Resolved configuration for one simlint run."""

    allow: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW))
    scope: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPE))
    #: Rule codes to run; ``None`` means the full catalogue.
    select: tuple[str, ...] | None = None

    def rule_in_scope(self, code: str, relpath: str) -> bool:
        """True when ``code`` applies to the module at ``relpath``."""
        patterns = self.scope.get(code)
        if patterns is None:
            return True
        return any(path_matches(relpath, p) for p in patterns)

    def allowed(self, code: str, relpath: str) -> bool:
        """True when ``relpath`` is an allowlisted home for ``code``."""
        return any(path_matches(relpath, p)
                   for p in self.allow.get(code, ()))


def path_matches(relpath: str, pattern: str) -> bool:
    """Match a package-relative path against one allowlist pattern."""
    if pattern.endswith("/"):
        return relpath.startswith(pattern)
    return relpath == pattern or fnmatch(relpath, pattern)


def load_config(start: Path, explicit: Path | None = None) -> SimlintConfig:
    """Load ``[tool.simlint]`` from ``pyproject.toml``.

    ``explicit`` names a config file directly; otherwise the nearest
    ``pyproject.toml`` at or above ``start`` is used.  Missing file or
    missing table mean the built-in defaults.  File entries override the
    default entry for that rule code only.
    """
    pyproject = explicit if explicit is not None else _find_pyproject(start)
    if pyproject is None or not pyproject.is_file():
        if explicit is not None:
            raise FileNotFoundError(f"config file not found: {explicit}")
        return SimlintConfig()
    if tomllib is None:  # Python 3.10: no stdlib TOML parser.  The file
        # entries mirror the built-in defaults, so falling back to them
        # keeps behavior identical on every supported interpreter.
        return SimlintConfig()
    with pyproject.open("rb") as fh:
        payload = tomllib.load(fh)
    table = payload.get("tool", {}).get("simlint", {})
    return SimlintConfig(
        allow=_merged(DEFAULT_ALLOW, table.get("allow", {})),
        scope=_merged(DEFAULT_SCOPE, table.get("scope", {})),
    )


def _merged(defaults: Mapping[str, tuple[str, ...]],
            overrides: Mapping[str, object]) -> dict[str, tuple[str, ...]]:
    merged = {code: tuple(paths) for code, paths in defaults.items()}
    for code, paths in overrides.items():
        if not isinstance(paths, list) or not all(
                isinstance(p, str) for p in paths):
            raise TypeError(
                f"[tool.simlint] entry {code} must be a list of path "
                f"strings, got {paths!r}")
        merged[str(code)] = tuple(paths)
    return merged


def _find_pyproject(start: Path) -> Path | None:
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for directory in (probe, *probe.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
