"""``python -m repro.analysis`` — run simlint."""

import sys

from repro.analysis.cli import main

sys.exit(main())
