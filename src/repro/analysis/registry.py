"""Rule registry: the static catalogue of simlint rules.

Rules self-register at import time via the :func:`register` decorator;
:func:`all_rule_classes` returns them sorted by code so every run visits
rules in one deterministic order.
"""

from __future__ import annotations

from repro.analysis.types import Rule

_RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the catalogue.

    Codes are unique; re-registering one is a programming error caught
    eagerly rather than a silent last-writer-wins.
    """
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _RULES:
        raise ValueError(f"duplicate rule code {cls.code}: "
                         f"{_RULES[cls.code].__name__} vs {cls.__name__}")
    _RULES[cls.code] = cls
    return cls


def all_rule_classes() -> list[type[Rule]]:
    """Every registered rule class, sorted by code."""
    _ensure_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule_class(code: str) -> type[Rule]:
    """Look up one rule by code (raises ``KeyError`` for unknown codes)."""
    _ensure_loaded()
    return _RULES[code]


def _ensure_loaded() -> None:
    # The catalogue lives in repro.analysis.rules; importing it populates
    # the registry.  Deferred so registry/types stay import-cycle-free.
    import repro.analysis.rules  # noqa: F401  (imported for side effect)
