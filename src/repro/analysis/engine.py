"""The simlint engine: walk files, run rules, apply suppressions.

Pipeline: discover ``.py`` files (sorted, so reports are deterministic),
parse each into a :class:`Module`, run every selected rule per module plus
one project-wide :meth:`~repro.analysis.types.Rule.finalize` pass, then
filter the raw violations through

1. **per-line suppressions** — a ``simlint: ignore[D001] -- reason``
   comment on the flagged line.  The rule code is mandatory and so is the
   ``--`` justification: a suppression lacking either is reported (D000),
   because an unexplained exemption is exactly the kind of silent
   discipline leak this tool exists to catch; and
2. **path-scoped allowlists** — config-driven sanctioned homes
   (``sim/rng.py`` for ambient RNG, ``util/wallclock.py`` for the wall
   clock).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import SimlintConfig
from repro.analysis.registry import all_rule_classes
from repro.analysis.types import Module, Rule, Violation

#: Matches ``simlint: ignore[D001,D003] -- why`` comment markers.
_SUPPRESSION = re.compile(
    r"#\s*simlint:\s*ignore\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<why>\S.*))?")
#: A suppression attempt with no bracketed code at all.
_BARE_SUPPRESSION = re.compile(r"#\s*simlint:\s*ignore(?!\[)")


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(found)


def package_relpath(path: Path) -> str:
    """Path relative to the nearest enclosing ``repro`` package dir.

    ``src/repro/sim/rng.py`` -> ``"sim/rng.py"``.  Sources outside any
    ``repro`` directory keep their file name, so allowlists written for
    the package cannot accidentally match scratch files.
    """
    resolved = path.resolve()
    for ancestor in resolved.parents:
        if ancestor.name == "repro":
            return resolved.relative_to(ancestor).as_posix()
    return path.name


def parse_module(path: Path) -> Module:
    """Read and parse one source file."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return Module(
        path=path,
        relpath=package_relpath(path),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def scan_suppressions(
    module: Module,
) -> tuple[dict[int, frozenset[str]], list[Violation]]:
    """Per-line suppressed rule codes, plus D000 for malformed ones."""
    suppressed: dict[int, frozenset[str]] = {}
    meta: list[Violation] = []
    for lineno, line in enumerate(module.lines, start=1):
        match = _SUPPRESSION.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",")
                if code.strip())
            suppressed[lineno] = codes
            if not match.group("why"):
                meta.append(Violation(
                    path=str(module.path), line=lineno,
                    col=match.start(), code="D000",
                    message="suppression without a justification",
                    hint="append ' -- <why this exemption is sound>'"))
            continue
        bare = _BARE_SUPPRESSION.search(line)
        if bare:
            meta.append(Violation(
                path=str(module.path), line=lineno,
                col=bare.start(), code="D000",
                message="suppression without a rule code (suppresses "
                        "nothing)",
                hint="name the rule: '# simlint: ignore[D00X] -- why'"))
    return suppressed, meta


def select_rules(config: SimlintConfig) -> list[Rule]:
    """Instantiate the configured subset of the catalogue."""
    classes = all_rule_classes()
    if config.select is not None:
        wanted = set(config.select)
        unknown = wanted - {cls.code for cls in classes}
        if unknown:
            raise KeyError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        classes = [cls for cls in classes if cls.code in wanted]
    return [cls(config) for cls in classes]


def run_simlint(
    paths: Sequence[Path],
    config: SimlintConfig | None = None,
) -> tuple[list[Violation], int]:
    """Analyze ``paths``; return (sorted violations, files scanned)."""
    if config is None:
        config = SimlintConfig()
    files = iter_python_files(paths)
    modules = [parse_module(path) for path in files]
    rules = select_rules(config)

    raw: list[Violation] = []
    for module in modules:
        for rule in rules:
            raw.extend(rule.check(module))
    for rule in rules:
        raw.extend(rule.finalize(modules))

    relpath_of = {str(m.path): m.relpath for m in modules}
    suppressions: dict[str, dict[int, frozenset[str]]] = {}
    kept: list[Violation] = []
    for module in modules:
        lines, meta = scan_suppressions(module)
        suppressions[str(module.path)] = lines
        kept.extend(meta)  # D000 is neither suppressible nor allowlistable

    for violation in raw:
        relpath = relpath_of.get(violation.path, violation.path)
        if config.allowed(violation.code, relpath):
            continue
        line_codes = suppressions.get(violation.path, {}).get(
            violation.line, frozenset())
        if violation.code in line_codes:
            continue
        kept.append(violation)

    return sorted(kept), len(modules)


def render_report(violations: Iterable[Violation], files: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.render() for v in violations]
    count = len(lines)
    if count:
        lines.append(f"simlint: {count} violation(s) in {files} file(s)")
    else:
        lines.append(f"simlint: clean ({files} file(s) scanned)")
    return "\n".join(lines)
