"""Typed core of simlint: violations, parsed modules, the rule interface."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterable, Sequence

if TYPE_CHECKING:  # circular at runtime: config imports nothing from here
    from repro.analysis.config import SimlintConfig


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, anchored to a source location.

    Ordering is (path, line, col, code) so reports are stable regardless
    of rule-execution order — the analyzer holds itself to the same
    determinism bar it enforces.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)
    hint: str = field(compare=False, default="")

    def render(self) -> str:
        """``path:line:col: CODE message  [fix: hint]`` — one line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text


@dataclass(frozen=True)
class Module:
    """A parsed source file, as handed to every rule.

    Attributes:
        path: Filesystem path as discovered (used in reports).
        relpath: Path relative to the nearest enclosing ``repro`` package
            directory, POSIX-separated (``"sim/rng.py"``); falls back to
            the file name for sources outside any ``repro`` package.
            Allowlists and rule scopes match against this.
        source: Raw text.
        tree: The parsed AST.
        lines: ``source`` split into physical lines (1-indexed via
            ``lines[lineno - 1]``).
    """

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]


class Rule:
    """Base class for simlint rules.

    Subclasses set the class-level metadata, register themselves with
    :func:`repro.analysis.registry.register`, and override :meth:`check`
    (per-module) and/or :meth:`finalize` (whole-project, e.g. cross-module
    key-drift).  One instance lives for the whole run, so project-wide
    rules may accumulate state in ``check`` and report in ``finalize``.
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    #: One-line rationale, shown by ``--list-rules`` and in the README.
    rationale: ClassVar[str] = ""
    #: Default fix hint attached to violations.
    hint: ClassVar[str] = ""

    def __init__(self, config: "SimlintConfig") -> None:
        self.config = config

    def check(self, module: Module) -> Iterable[Violation]:
        """Yield violations found in one module."""
        return ()

    def finalize(self, modules: Sequence[Module]) -> Iterable[Violation]:
        """Yield project-wide violations after every module was checked."""
        return ()

    def violation(self, module: Module, node: ast.AST, message: str,
                  hint: str | None = None) -> Violation:
        """Build a violation for ``node``, defaulting to the class hint."""
        return Violation(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=self.hint if hint is None else hint,
        )

    def in_scope(self, module: Module) -> bool:
        """Whether this rule applies to ``module`` (path-scope config)."""
        return self.config.rule_in_scope(self.code, module.relpath)
