"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro.cli fig02
    python -m repro.cli fig11 --param duration=120 --param "loads=[6,9,12]"
    python -m repro.cli all --quick

``--quick`` shrinks the simulated durations so the whole suite runs in
minutes (the same scaling the benchmarks use); numbers are noisier but the
shapes hold.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time

from repro.experiments.registry import get_experiment, list_experiments

#: Downscaled parameters applied by --quick (only where accepted).
QUICK_OVERRIDES = {
    "fig04": {"duration": 60.0},
    "fig06": {"duration": 120.0},
    "fig07": {"n_requests": 500},
    "fig08": {"duration": 90.0},
    "fig11": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig12": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig13": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig14": {"duration": 90.0},
    "fig15": {"duration": 150.0, "window": 30.0},
    "fig16": {"duration": 90.0},
    "fig17": {"duration": 120.0},
    "fig18": {"duration": 120.0},
    "fig19": {"duration": 120.0},
    "fig20": {"duration": 90.0, "pool_sizes": (10, 100, 200)},
    "fig21": {"duration": 90.0},
    "fig22": {"duration": 90.0},
    "fig23": {"duration": 90.0},
    "fig24": {"duration": 90.0, "loads": (4.0, 8.0, 12.0)},
    "fig25": {"duration": 90.0},
    "abl_wrs_degree": {"duration": 90.0, "loads": (9.0, 11.0)},
    "abl_eviction_weights": {"duration": 60.0, "grid_step": 0.5},
    "abl_gdsf": {"duration": 90.0},
    "abl_load_stall": {"duration": 90.0, "bandwidths": (None, 3.0, 1.5)},
    "abl_dp_dispatch": {"duration": 90.0},
}


def _parse_param(raw: str) -> tuple[str, object]:
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"--param expects key=value, got {raw!r}")
    key, value = raw.split("=", 1)
    try:
        parsed = ast.literal_eval(value)
    except (ValueError, SyntaxError):
        parsed = value
    return key, parsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the Chameleon paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig11), 'all', or 'list'")
    parser.add_argument("--quick", action="store_true",
                        help="shrink durations for a fast, noisier pass")
    parser.add_argument("--param", action="append", default=[],
                        type=_parse_param, metavar="KEY=VALUE",
                        help="override an experiment parameter (repeatable)")
    parser.add_argument("--plot", action="store_true",
                        help="render an ASCII chart alongside the table")
    parser.add_argument("--json", metavar="PATH",
                        help="also write results as JSON to PATH")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    targets = list_experiments() if args.experiment == "all" else [args.experiment]
    collected = []
    for experiment_id in targets:
        run = get_experiment(experiment_id)
        params = dict(QUICK_OVERRIDES.get(experiment_id, {})) if args.quick else {}
        params.update(dict(args.param))
        start = time.time()
        result = run(**params)
        elapsed = time.time() - start
        print(result.to_table())
        if args.plot:
            from repro.viz import result_chart

            chart = result_chart(result)
            if chart:
                print()
                print(chart)
        print(f"(elapsed: {elapsed:.1f}s)")
        print()
        collected.append(result)
    if args.json:
        import json

        payload = [
            {"experiment": r.experiment, "description": r.description,
             "params": r.params, "rows": r.rows, "notes": r.notes}
            for r in collected
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
