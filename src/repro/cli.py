"""Command-line entry point: run any paper experiment or a DP cluster.

Usage::

    python -m repro.cli fig02
    python -m repro.cli fig11 --param duration=120 --param "loads=[6,9,12]"
    python -m repro.cli all --quick
    python -m repro.cli cluster --replicas 4 --policy p2c

``--quick`` shrinks the simulated durations so the whole suite runs in
minutes (the same scaling the benchmarks use); numbers are noisier but the
shapes hold.

The ``cluster`` subcommand runs one data-parallel configuration end to end
(§4.4 two-level scheduling: global admission queue + dispatch policy) and
reports per-replica completion counts, dispatch-queue delay percentiles and
the lookup-weighted aggregate cache hit rate.
"""

from __future__ import annotations

import argparse
import ast
import sys

from repro.experiments.registry import get_experiment, list_experiments
from repro.util.wallclock import Stopwatch

#: Downscaled parameters applied by --quick (only where accepted).
QUICK_OVERRIDES = {
    "fig04": {"duration": 60.0},
    "fig06": {"duration": 120.0},
    "fig07": {"n_requests": 500},
    "fig08": {"duration": 90.0},
    "fig11": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig12": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig13": {"duration": 90.0, "loads": (6.0, 9.0, 12.0)},
    "fig14": {"duration": 90.0},
    "fig15": {"duration": 150.0, "window": 30.0},
    "fig16": {"duration": 90.0},
    "fig17": {"duration": 120.0},
    "fig18": {"duration": 120.0},
    "fig19": {"duration": 120.0},
    "fig20": {"duration": 90.0, "pool_sizes": (10, 100, 200)},
    "fig21": {"duration": 90.0},
    "fig22": {"duration": 90.0},
    "fig23": {"duration": 90.0},
    "fig24": {"duration": 90.0, "loads": (4.0, 8.0, 12.0)},
    "fig25": {"duration": 90.0},
    "fig26": {"duration": 60.0, "replica_counts": (1, 2, 4)},
    "fig27": {"duration": 50.0, "warmup": 10.0},
    "fig28_autoscale": {"duration": 200.0},
    "fig29_predictive_autoscale": {"duration": 200.0},
    "fig30_fault_recovery": {"duration": 200.0},
    "fig31_region_scaling": {"duration": 60.0, "warmup": 10.0},
    "fig32_tenant_fairness": {"duration": 90.0, "storm_start": 35.0,
                              "storm_duration": 30.0},
    "abl_fault_chaos": {"duration": 150.0, "mttfs": (None, 60.0, 30.0)},
    "abl_wrs_degree": {"duration": 90.0, "loads": (9.0, 11.0)},
    "abl_eviction_weights": {"duration": 60.0, "grid_step": 0.5},
    "abl_gdsf": {"duration": 90.0},
    "abl_load_stall": {"duration": 90.0, "bandwidths": (None, 3.0, 1.5)},
    "abl_dp_dispatch": {"duration": 90.0},
    "abl_slo_admission": {"duration": 60.0},
    # abl_capability_estimator: no downscale — the degraded replica's tail
    # divergence needs the full 150s trace to compound (it is cheap anyway).
}


def _parse_param(raw: str) -> tuple[str, object]:
    if "=" not in raw:
        raise argparse.ArgumentTypeError(f"--param expects key=value, got {raw!r}")
    key, value = raw.split("=", 1)
    try:
        parsed = ast.literal_eval(value)
    except (ValueError, SyntaxError):
        parsed = value
    return key, parsed


def _cluster_main(argv) -> int:
    """Run one data-parallel cluster configuration and print a report."""
    from repro.experiments.common import standard_registry, standard_trace, trace_slo
    from repro.hardware.cluster import DataParallelCluster
    from repro.hardware.gpu import A40_48GB, GPU_ZOO
    from repro.serving.admission import SloPolicy
    from repro.serving.replica import MultiReplicaSystem
    from repro.systems import PRESETS, resolve_gpu

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli cluster",
        description="Serve one trace on a data-parallel cluster (§4.4).",
    )
    parser.add_argument("--replicas", type=int, default=None,
                        help="replica count (default 4, or the length of "
                             "--replica-specs)")
    parser.add_argument("--policy", default="least_loaded",
                        choices=DataParallelCluster.POLICIES)
    parser.add_argument("--preset", default="chameleon", choices=PRESETS)
    parser.add_argument("--rps", type=float, default=30.0,
                        help="total arrival rate across the cluster")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--warmup", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--spill-factor", type=float, default=1.5,
                        help="bounded_affinity load bound (x cluster mean)")
    parser.add_argument("--no-backpressure", action="store_true",
                        help="force-submit arrivals instead of queueing "
                             "when every replica is saturated")
    parser.add_argument("--replica-specs", metavar="GPU[,GPU...]",
                        help="comma-separated GPU names for a heterogeneous "
                             f"fleet, from {sorted(GPU_ZOO)}")
    parser.add_argument("--no-capability-norm", action="store_true",
                        help="compare raw backlog instead of capability-"
                             "normalized load on mixed-spec fleets")
    parser.add_argument("--slo-ttft", type=float, default=None, metavar="SECONDS",
                        help="TTFT deadline enabling SLO admission control; "
                             "pass 0 to derive the paper's 5x-mean-isolated SLO "
                             "from the trace")
    parser.add_argument("--slo-mode", default="shed", choices=SloPolicy.MODES,
                        help="what to do with arrivals past the SLO knee")
    parser.add_argument("--tenants", type=int, default=None, metavar="N",
                        help="serve a Zipf-skewed N-tenant population "
                             "(SLO classes dealt gold/standard/batch) "
                             "instead of the anonymous trace")
    parser.add_argument("--tenant-skew", type=float, default=1.2,
                        help="Zipf exponent of the tenant shares "
                             "(0 = uniform; needs --tenants)")
    parser.add_argument("--fair", action="store_true",
                        help="weighted-fair admission: per-tenant quota "
                             "lanes (token buckets from the declared "
                             "shares) drained by deficit round-robin "
                             "(needs --tenants and --slo-ttft)")
    parser.add_argument("--autoscale", action="store_true",
                        help="make the fleet elastic: scale out on sustained "
                             "shed-rate/queue-wait pressure, in on sustained "
                             "idleness (--replicas sets the initial fleet, "
                             "default --min-replicas)")
    parser.add_argument("--min-replicas", type=int, default=1,
                        help="autoscale floor (default 1)")
    parser.add_argument("--max-replicas", type=int, default=8,
                        help="autoscale ceiling (default 8)")
    parser.add_argument("--provision-delay", type=float, default=10.0,
                        metavar="SECONDS",
                        help="cold-start delay a scale-out replica pays "
                             "before joining the dispatch set (default 10)")
    parser.add_argument("--autoscale-mode", default="reactive",
                        choices=("reactive", "predictive"),
                        help="reactive scales out on observed pressure only; "
                             "predictive additionally provisions ahead of "
                             "forecast demand (needs --autoscale)")
    parser.add_argument("--forecast-window", type=float, default=30.0,
                        metavar="SECONDS",
                        help="trailing arrival-rate history the predictive "
                             "forecaster keeps (default 30)")
    parser.add_argument("--forecast-horizon", type=float, default=None,
                        metavar="SECONDS",
                        help="forecast lead time (default: provision delay + "
                             "warmup + one tick — the full cold start)")
    parser.add_argument("--forecast-cycle", type=float, default=None,
                        metavar="SECONDS",
                        help="workload period enabling the forecaster's "
                             "seasonal phase histogram (predict periodic "
                             "bursts before they re-arrive)")
    parser.add_argument("--fault-schedule", metavar="SPEC",
                        help="scripted faults, comma-separated "
                             "TIME:KIND:REPLICA[:VALUE] entries (KIND in "
                             "crash|degrade|recover|stall; VALUE is the "
                             "degrade rate multiplier or the stall window), "
                             "e.g. '110:crash:1,60:degrade:0:0.5'")
    parser.add_argument("--mttf", type=float, default=None, metavar="SECONDS",
                        help="mean time to failure enabling seeded random "
                             "replica faults (exponential gaps, uniform "
                             "serving-replica targets)")
    parser.add_argument("--mttr", type=float, default=None, metavar="SECONDS",
                        help="mean time to repair: random faults become "
                             "transient outages of this mean window instead "
                             "of crashes (needs --mttf)")
    parser.add_argument("--no-fault-migration", action="store_true",
                        help="strand a crashed replica's work as lost "
                             "instead of re-dispatching it (the no-recovery "
                             "baseline)")
    parser.add_argument("--no-self-heal", action="store_true",
                        help="disable autoscaler failure replacement "
                             "(crashed replicas are not provisioned back)")
    args = parser.parse_args(argv)
    specs = None
    fleet_gpus = [A40_48GB]  # build_system's default when no specs are given
    if args.replica_specs:
        specs = [name.strip() for name in args.replica_specs.split(",")]
        try:
            fleet_gpus = [resolve_gpu(name) for name in specs]
        except ValueError as exc:
            parser.error(str(exc))
        if args.replicas is not None and args.replicas != len(specs):
            parser.error(f"--replicas {args.replicas} conflicts with "
                         f"{len(specs)} --replica-specs entries")
    if args.autoscale:
        if args.no_backpressure:
            parser.error("--autoscale needs backpressure (its pressure "
                         "signals live in the global queue); drop "
                         "--no-backpressure")
        if args.min_replicas < 1 or args.max_replicas < args.min_replicas:
            parser.error(f"need 1 <= --min-replicas <= --max-replicas, got "
                         f"[{args.min_replicas}, {args.max_replicas}]")
        if args.provision_delay < 0:
            parser.error(f"--provision-delay must be >= 0, "
                         f"got {args.provision_delay}")
        if args.forecast_window <= 0:
            parser.error(f"--forecast-window must be > 0, "
                         f"got {args.forecast_window}")
        if args.forecast_horizon is not None and args.forecast_horizon <= 0:
            parser.error(f"--forecast-horizon must be > 0, "
                         f"got {args.forecast_horizon}")
        if args.forecast_cycle is not None and args.forecast_cycle <= 0:
            parser.error(f"--forecast-cycle must be > 0, "
                         f"got {args.forecast_cycle}")
    elif args.autoscale_mode != "reactive":
        parser.error("--autoscale-mode predictive needs --autoscale")
    elif args.no_self_heal:
        parser.error("--no-self-heal needs --autoscale (static fleets "
                     "never replace replicas)")
    if args.mttf is not None and args.mttf <= 0:
        parser.error(f"--mttf must be > 0, got {args.mttf}")
    if args.mttr is not None:
        if args.mttr <= 0:
            parser.error(f"--mttr must be > 0, got {args.mttr}")
        if args.mttf is None:
            parser.error("--mttr needs --mttf (no failures to repair)")
    fault_schedule = None
    if args.fault_schedule:
        from repro.faults import FaultSchedule
        try:
            fault_schedule = FaultSchedule.parse(args.fault_schedule)
        except ValueError as exc:
            parser.error(str(exc))
    replicas = args.replicas if args.replicas is not None else \
        (len(specs) if specs else
         (args.min_replicas if args.autoscale else 4))
    if replicas < 1:
        parser.error(f"--replicas must be >= 1, got {replicas}")
    if args.autoscale and not \
            args.min_replicas <= replicas <= args.max_replicas:
        parser.error(f"initial fleet of {replicas} is outside "
                     f"[--min-replicas, --max-replicas] = "
                     f"[{args.min_replicas}, {args.max_replicas}]")
    if args.spill_factor < 1.0:
        parser.error(f"--spill-factor must be >= 1.0, got {args.spill_factor}")
    if args.slo_ttft is not None and args.slo_ttft < 0:
        parser.error(f"--slo-ttft must be >= 0, got {args.slo_ttft}")
    if args.slo_ttft is not None and args.no_backpressure:
        parser.error("--slo-ttft needs backpressure (the SLO knee is the "
                     "global queue); drop --no-backpressure")
    if args.tenants is not None and args.tenants < 1:
        parser.error(f"--tenants must be >= 1, got {args.tenants}")
    if args.tenant_skew < 0:
        parser.error(f"--tenant-skew must be >= 0, got {args.tenant_skew}")
    if args.fair and args.tenants is None:
        parser.error("--fair needs --tenants (quotas are per tenant)")
    if args.fair and args.no_backpressure:
        parser.error("--fair needs backpressure (the quota lanes are the "
                     "global queue); drop --no-backpressure")

    registry = standard_registry()
    population = None
    slo_classes = None
    if args.tenants is not None:
        from repro.sim.rng import RngStreams
        from repro.workload.tenants import (
            DEFAULT_SLO_CLASSES, TenantPopulation)

        population = TenantPopulation.build(args.tenants,
                                            skew=args.tenant_skew)
        slo_classes = DEFAULT_SLO_CLASSES
        trace = population.synthesize(
            rps=args.rps, duration=args.duration,
            rng=RngStreams(args.seed).get("trace"), registry=registry)
    else:
        trace = standard_trace(args.rps, args.duration, registry,
                               seed=args.seed)
    slo_policy = None
    if args.slo_ttft is not None:
        if args.slo_ttft > 0:
            deadline = args.slo_ttft
        else:
            # The derived 5x-mean-isolated deadline must reflect the GPUs
            # actually serving the trace, averaged over a mixed fleet.
            deadline = sum(
                trace_slo(trace, registry, gpu=gpu) for gpu in fleet_gpus
            ) / len(fleet_gpus)
        slo_policy = SloPolicy(ttft_deadline=deadline, mode=args.slo_mode,
                               classes=slo_classes)
    tenancy = None
    if args.fair:
        from repro.serving.admission import TenantFairnessPolicy

        tenancy = TenantFairnessPolicy.from_shares(
            population.shares(), capacity_rps=args.rps,
            classes=slo_classes)
    autoscale = None
    if args.autoscale:
        from repro.serving.autoscaler import AutoscaleConfig

        autoscale = AutoscaleConfig(
            min_replicas=args.min_replicas, max_replicas=args.max_replicas,
            provision_delay=args.provision_delay,
            queue_wait_threshold=(slo_policy.ttft_deadline / 2
                                  if slo_policy is not None else 2.0),
            mode=args.autoscale_mode,
            forecast_window=args.forecast_window,
            forecast_horizon=args.forecast_horizon,
            forecast_cycle=args.forecast_cycle,
            self_heal=not args.no_self_heal,
        )
    cluster = MultiReplicaSystem.build(
        args.preset, n_replicas=replicas, dispatch_policy=args.policy,
        backpressure=not args.no_backpressure, spill_factor=args.spill_factor,
        slo_policy=slo_policy, replica_specs=specs,
        normalize_capability=not args.no_capability_norm,
        autoscale=autoscale,
        fault_schedule=fault_schedule, mttf=args.mttf, mttr=args.mttr,
        fault_migrate=not args.no_fault_migration,
        registry=registry, seed=args.seed, tenancy=tenancy,
    )
    watch = Stopwatch()
    cluster.run_trace(trace.fresh())
    summary = cluster.summary(warmup=args.warmup)
    extra = summary.extra

    print(f"[cluster] {args.preset} x{replicas} policy={args.policy} "
          f"@ {args.rps} RPS for {args.duration}s (seed {args.seed})")
    if specs:
        weights = ", ".join(f"{w:.2f}" for w in cluster.capabilities())
        print(f"  replica specs             {specs} (capability weights "
              f"{weights})")
    print(f"  completed requests        {summary.n_requests}")
    print(f"  per-replica counts        {extra['per_replica_counts']}")
    print(f"  load imbalance (max/mean) {extra['load_imbalance']:.3f}")
    print(f"  aggregate hit rate        {extra['aggregate_hit_rate']:.3f} "
          f"(lookup-weighted)")
    print(f"  p50/p99 TTFT              {summary.p50_ttft:.3f}s / "
          f"{summary.p99_ttft:.3f}s")
    print(f"  dispatch-queue delay      p50={extra['p50_dispatch_queue_delay']:.4f}s "
          f"p99={extra['p99_dispatch_queue_delay']:.4f}s "
          f"({extra['cluster_queued']} arrivals queued)")
    if slo_policy is not None:
        print(f"  SLO admission ({slo_policy.mode})      "
              f"deadline={slo_policy.ttft_deadline:.2f}s "
              f"shed={extra['cluster_shed']} "
              f"deprioritized={extra['cluster_deprioritized']}")
        print(f"  goodput                   {extra['goodput_rps']:.2f} RPS "
              f"(SLO attainment {extra['cluster_slo_attainment']:.3f}, "
              f"shed rate {extra['shed_rate']:.3f})")
    if tenancy is not None:
        attain = ", ".join(
            f"{t}:{a:.3f}" for t, a in zip(extra["tenant_ids"],
                                           extra["tenant_attainment"]))
        print(f"  tenant fairness           Jain "
              f"{extra['tenant_fairness_jain']:.3f}, attainment spread "
              f"{extra['tenant_attainment_spread']:.3f}")
        print(f"  tenant attainment         {attain}")
        print(f"  quota work                "
              f"{sum(extra['tenant_quota_throttles'])} throttles / "
              f"{sum(extra['tenant_quota_borrows'])} borrows")
    if args.policy == "bounded_affinity":
        print(f"  affinity spills           {extra['affinity_spills']}")
    if args.autoscale:
        mode_note = ""
        if args.autoscale_mode == "predictive":
            mode_note = (f" ({extra['predictive_scale_out_events']} "
                         f"forecast-driven)")
        print(f"  autoscale ({args.autoscale_mode})      "
              f"[{args.min_replicas}, "
              f"{args.max_replicas}] peak fleet {extra['peak_fleet_size']}, "
              f"{extra['scale_out_events']} out{mode_note} / "
              f"{extra['scale_in_events']} in")
        print(f"  replica-seconds           {extra['replica_seconds']:.1f} "
              f"(goodput {extra['goodput_per_replica_second']:.3f} "
              f"req/replica-s)")
        for event in extra["scale_events"]:
            tag = ""
            if event.get("reason") == "predictive":
                tag = " [forecast]"
            elif event.get("reason") == "failure_replacement":
                tag = " [self-heal]"
            print(f"    t={event['time']:7.1f}s {event['action']:<9} "
                  f"replicas {event['replicas']} -> fleet "
                  f"{event['fleet_size']} (shed_rate {event['shed_rate']:.3f} "
                  f"queue_wait {event['queue_wait']:.2f}s util "
                  f"{event['utilization']:.2f}){tag}")
    if cluster.fault_injector is not None:
        print(f"  faults                    "
              f"{extra['cluster_failures']} crashes / "
              f"{extra['cluster_stalls']} stalls / "
              f"{cluster.fault_injector.degrades} degrades")
        print(f"  recovery                  "
              f"{extra['cluster_migrations']} migrations "
              f"(max retry {extra['max_retry_count']}), "
              f"{extra['cluster_lost']} lost, availability "
              f"{extra['availability']:.4f}")
        for fault in extra["fault_log"]:
            detail = ", ".join(f"{k}={v}" for k, v in fault.items()
                               if k not in ("time", "kind", "replica"))
            print(f"    t={fault['time']:7.1f}s {fault['kind']:<8} "
                  f"replica {fault['replica']}"
                  f"{' (' + detail + ')' if detail else ''}")
    print(f"(elapsed: {watch.elapsed():.1f}s)")
    return 0


def _trace_main(argv) -> int:
    """Record one run with the tracer + metrics registry attached and
    export it: a Chrome/Perfetto trace-event JSON (open the file at
    ui.perfetto.dev — one track per dispatcher shard, one per replica),
    an optional metrics CSV/JSON timeseries, and a span-waterfall report
    for the slowest requests."""
    from repro.experiments.common import standard_registry, standard_trace
    from repro.hardware.cluster import DataParallelCluster
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs.export import slow_trace_report, write_metrics, write_perfetto
    from repro.serving.admission import SloPolicy
    from repro.serving.replica import MultiReplicaSystem
    from repro.systems import PRESETS

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli trace",
        description="Record a run's request-lifecycle telemetry and export "
                    "a Perfetto-openable trace (see repro.obs).",
    )
    parser.add_argument("--out", default="trace.json", metavar="PATH",
                        help="Chrome/Perfetto trace-event JSON output "
                             "(default trace.json; load it at "
                             "ui.perfetto.dev)")
    parser.add_argument("--preset", default="chameleon", choices=PRESETS)
    parser.add_argument("--replicas", type=int, default=2,
                        help="replica count (per shard with --shards > 1)")
    parser.add_argument("--shards", type=int, default=1,
                        help="dispatcher shards; > 1 records a region run "
                             "with spill/steal annotations")
    parser.add_argument("--policy", default="least_loaded",
                        choices=DataParallelCluster.POLICIES)
    parser.add_argument("--rps", type=float, default=20.0)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--slo-ttft", type=float, default=None,
                        metavar="SECONDS",
                        help="TTFT deadline enabling SLO admission control "
                             "(shed/deprioritize instants land on the "
                             "dispatcher track)")
    parser.add_argument("--slowest", type=int, default=0, metavar="K",
                        help="print span waterfalls for the K worst-TTFT "
                             "requests")
    parser.add_argument("--metrics", metavar="PATH",
                        help="also dump the sampled metrics timeseries "
                             "(.csv or .json; render the .json with "
                             "repro.experiments.report.metrics_markdown)")
    parser.add_argument("--metrics-interval", type=float, default=5.0,
                        metavar="SECONDS",
                        help="metrics sampling period (default 5)")
    args = parser.parse_args(argv)
    if args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.slowest < 0:
        parser.error(f"--slowest must be >= 0, got {args.slowest}")
    if args.metrics_interval <= 0:
        parser.error(f"--metrics-interval must be > 0, "
                     f"got {args.metrics_interval}")
    if args.slo_ttft is not None and args.slo_ttft <= 0:
        parser.error(f"--slo-ttft must be > 0, got {args.slo_ttft}")

    registry = standard_registry()
    trace = standard_trace(args.rps, args.duration, registry, seed=args.seed)
    slo_policy = (SloPolicy(ttft_deadline=args.slo_ttft)
                  if args.slo_ttft is not None else None)
    if args.shards > 1:
        from repro.serving.region import RegionConfig, ServingRegion

        system = ServingRegion.build(
            args.preset, n_replicas=args.replicas,
            dispatch_policy=args.policy, seed=args.seed, registry=registry,
            slo_policy=slo_policy, region=RegionConfig(n_shards=args.shards))
        sim = system.sim
    else:
        from repro.sim.simulator import Simulator

        sim = Simulator()
        system = MultiReplicaSystem.build(
            args.preset, n_replicas=args.replicas,
            dispatch_policy=args.policy, sim=sim, seed=args.seed,
            registry=registry, slo_policy=slo_policy)

    tracer = Tracer()
    metrics = MetricsRegistry()
    system.attach_tracer(tracer)
    system.attach_metrics(metrics)
    metrics.install(sim, args.metrics_interval, until=args.duration)

    watch = Stopwatch()
    system.run_trace(trace.fresh())
    summary = system.summary()

    write_perfetto(tracer, args.out)
    print(f"[trace] {args.preset} x{args.replicas}"
          f"{f' x{args.shards} shards' if args.shards > 1 else ''} "
          f"policy={args.policy} @ {args.rps} RPS for {args.duration}s "
          f"(seed {args.seed})")
    print(f"  completed requests        {summary.n_requests}")
    print(f"  p50/p99 TTFT              {summary.p50_ttft:.3f}s / "
          f"{summary.p99_ttft:.3f}s")
    print(f"  spans recorded            {len(tracer.spans)} "
          f"({', '.join(sorted(tracer.span_names()))})")
    if tracer.instants:
        print(f"  annotations               {len(tracer.instants)} "
              f"({', '.join(sorted(tracer.instant_names()))})")
    print(f"  tracks                    {len(tracer.tracks)} "
          f"(1 dispatcher/shard + 1/replica)")
    print(f"  wrote {args.out} (open at ui.perfetto.dev)")
    if args.metrics:
        write_metrics(metrics, args.metrics)
        print(f"  wrote {args.metrics} ({len(metrics.samples)} samples x "
              f"{len(metrics.column_names())} columns)")
    if args.slowest:
        print()
        print(slow_trace_report(tracer, args.slowest))
    print(f"(elapsed: {watch.elapsed():.1f}s)")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "lint":
        # Determinism-discipline analyzer (see repro.analysis): checks the
        # package tree by default, or any paths passed after 'lint'.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the Chameleon paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig11), 'all', 'list', "
                             "'cluster', 'trace', or 'lint' (see "
                             "'<subcommand> --help')")
    parser.add_argument("--quick", action="store_true",
                        help="shrink durations for a fast, noisier pass")
    parser.add_argument("--param", action="append", default=[],
                        type=_parse_param, metavar="KEY=VALUE",
                        help="override an experiment parameter (repeatable)")
    parser.add_argument("--plot", action="store_true",
                        help="render an ASCII chart alongside the table")
    parser.add_argument("--json", metavar="PATH",
                        help="also write results as JSON to PATH")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    targets = list_experiments() if args.experiment == "all" else [args.experiment]
    collected = []
    for experiment_id in targets:
        run = get_experiment(experiment_id)
        params = dict(QUICK_OVERRIDES.get(experiment_id, {})) if args.quick else {}
        params.update(dict(args.param))
        watch = Stopwatch()
        result = run(**params)
        elapsed = watch.elapsed()
        print(result.to_table())
        if args.plot:
            from repro.viz import result_chart

            chart = result_chart(result)
            if chart:
                print()
                print(chart)
        print(f"(elapsed: {elapsed:.1f}s)")
        print()
        collected.append(result)
    if args.json:
        import json

        payload = [
            {"experiment": r.experiment, "description": r.description,
             "params": r.params, "rows": r.rows, "notes": r.notes}
            for r in collected
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
