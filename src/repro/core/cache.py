"""The Chameleon Adapter Cache and its manager (§4.2).

The cache is *transparent* (requests never wait on it, they only benefit),
*adaptive* (it lives in whatever GPU memory is idle and is shrunk on demand
by ``make_room`` when serving state needs bytes — dynamic cache sizing), and
*interference-free* (it never takes memory from the KV cache; eviction always
precedes any reservation that would not fit).

Differences from the S-LoRA baseline manager are exactly the paper's:
idle adapters are retained instead of discarded, eviction follows the
pluggable cost-aware policy, and an optional histogram-driven prefetcher
(§4.2.3) warms adapters for *predicted* future requests.
"""

from __future__ import annotations

from typing import Optional

from repro.adapters.registry import AdapterRegistry
from repro.core.eviction import ChameleonScorePolicy, EvictionPolicy
from repro.hardware.gpu import GpuDevice
from repro.hardware.pcie import PcieLink
from repro.predictor.load_forecast import HistogramLoadPredictor
from repro.serving.adapter_manager import (
    AdapterEntry,
    AdapterManagerBase,
    AdapterState,
)
from repro.sim.simulator import Simulator
from repro.workload.request import Request


class ChameleonCacheManager(AdapterManagerBase):
    """Adapter manager with the Chameleon cache semantics."""

    def __init__(
        self,
        sim: Simulator,
        gpu: GpuDevice,
        link: PcieLink,
        registry: AdapterRegistry,
        policy: Optional[EvictionPolicy] = None,
        prefetch_on_arrival: bool = True,
        prefetcher: Optional["CachePrefetcher"] = None,
    ) -> None:
        super().__init__(sim, gpu, link, registry, prefetch_on_arrival=prefetch_on_arrival)
        self.policy = policy if policy is not None else ChameleonScorePolicy()
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(self)

    # -- base-class hooks ------------------------------------------------ #
    def _handle_idle(self, entry: AdapterEntry) -> None:
        """Keep idle adapters: reclassify their bytes as cache (§4.2.1)."""
        self.gpu.move("adapter", "adapter_cache", entry.size_bytes)

    def _eviction_order(self, candidates, now: float):
        return self.policy.order(list(candidates), now)

    def _on_evicted(self, entry: AdapterEntry) -> None:
        self.policy.on_evict(entry)

    # -- metadata hooks -------------------------------------------------- #
    def on_request_arrival(self, request: Request) -> None:
        super().on_request_arrival(request)
        if request.adapter_id is not None:
            self.policy.on_access(self.entries[request.adapter_id], self.sim.now)
            if self.prefetcher is not None:
                self.prefetcher.record_use(request.adapter_id, self.sim.now)

    @property
    def cached_bytes(self) -> int:
        """Bytes currently held by idle cached adapters."""
        return self.gpu.used("adapter_cache")

    def cached_ids(self) -> list[int]:
        return self.idle_resident_ids()


class CachePrefetcher:
    """Histogram-driven predictive prefetching (§4.2.3, Figure 18).

    Every ``interval`` simulated seconds, ask the load predictor which
    adapters are likely to be used within ``horizon`` and warm the most
    likely ones into free GPU memory (never evicting for a prediction —
    predictions are hints, resident state is ground truth).
    """

    def __init__(
        self,
        sim: Simulator,
        predictor: Optional[HistogramLoadPredictor] = None,
        interval: float = 2.0,
        horizon: float = 10.0,
        max_prefetch_per_round: int = 4,
        min_probability: float = 0.3,
    ) -> None:
        self.sim = sim
        self.predictor = predictor if predictor is not None else HistogramLoadPredictor()
        self.interval = interval
        self.horizon = horizon
        self.max_prefetch_per_round = max_prefetch_per_round
        self.min_probability = min_probability
        self._manager: Optional[ChameleonCacheManager] = None
        self.prefetches_issued = 0
        self._armed = False
        self._last_use_time = float("-inf")

    def attach(self, manager: ChameleonCacheManager) -> None:
        self._manager = manager

    def record_use(self, adapter_id: int, now: float) -> None:
        self.predictor.record_use(adapter_id, now)
        self._last_use_time = now
        self._arm()

    def _arm(self) -> None:
        """Schedule the next tick; the timer disarms itself when traffic
        stops so an idle prefetcher never keeps the simulation alive."""
        if not self._armed and self._manager is not None:
            self._armed = True
            self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self._armed = False
        manager = self._manager
        if manager is None:
            return
        now = self.sim.now
        already = {
            aid for aid, entry in manager.entries.items()
            if entry.state is not AdapterState.MISSING
        }
        candidates = self.predictor.rank_candidates(
            now, self.horizon, exclude=already, min_probability=self.min_probability
        )
        issued = 0
        for adapter_id, _probability in candidates:
            if issued >= self.max_prefetch_per_round:
                break
            if manager.prefetch(adapter_id):
                issued += 1
                self.prefetches_issued += 1
        # Keep ticking only while traffic is flowing.
        if now - self._last_use_time <= 2 * self.interval:
            self._arm()
