"""Chameleon's contribution: the adapter cache and the MLQ scheduler."""

from repro.core.wrs import WrsParams, WorkloadBounds, compute_wrs
from repro.core.clustering import kmeans_1d, wcss, choose_k_elbow, cluster_cutoffs
from repro.core.quotas import QueueStats, solve_quotas
from repro.core.eviction import (
    EvictionPolicy,
    ChameleonScorePolicy,
    LruPolicy,
    FairSharePolicy,
    GdsfPolicy,
    make_policy,
)
from repro.core.cache import ChameleonCacheManager, CachePrefetcher
from repro.core.mlq import MlqConfig, MlqScheduler
from repro.core.tuning import ProfilingResult, profile_eviction_weights, simplex_grid

__all__ = [
    "WrsParams",
    "WorkloadBounds",
    "compute_wrs",
    "kmeans_1d",
    "wcss",
    "choose_k_elbow",
    "cluster_cutoffs",
    "QueueStats",
    "solve_quotas",
    "EvictionPolicy",
    "ChameleonScorePolicy",
    "LruPolicy",
    "FairSharePolicy",
    "GdsfPolicy",
    "make_policy",
    "ChameleonCacheManager",
    "CachePrefetcher",
    "MlqConfig",
    "MlqScheduler",
    "ProfilingResult",
    "profile_eviction_weights",
    "simplex_grid",
]
