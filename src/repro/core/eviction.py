"""Adapter-cache eviction policies (§4.2.2 and the §5.3.3 comparison).

All policies produce an eviction *order* over the refcount-zero candidates;
the cache manager evicts from the front until enough bytes are free.

* **Chameleon** — compound score ``F*Frequency + R*Recency + S*Size`` with the
  paper's profiled weights F=0.45, R=0.10, S=0.45; the lowest score is evicted
  first.  Size enters positively: large adapters are costlier to reload, so
  they score higher and smaller adapters are evicted first (cost-awareness).
* **FairShare** — the same compound score with equal weights (§5.3.3).
* **LRU** — least-recently-used first.
* **GDSF** — Greedy-Dual-Size-Frequency [5]: ``H = L + Frequency * Cost/Size``
  with the global inflation value L updated to each evicted H.  With adapter
  load cost roughly proportional to size, H degenerates toward pure
  (aged) frequency — the behaviour the paper criticizes in §5.3.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Paper §4.2.2: profiled weighting coefficients.
CHAMELEON_WEIGHTS = (0.45, 0.10, 0.45)

#: Time constant of the recency feature (seconds): an adapter untouched for
#: one constant decays to 1/e recency.
RECENCY_TAU = 60.0


class EvictionPolicy:
    """Interface: order candidates, first-to-evict first."""

    name = "base"

    def order(self, candidates: list, now: float) -> list:
        raise NotImplementedError

    def on_evict(self, entry) -> None:
        """Hook fired after an entry is evicted (GDSF aging)."""

    def on_access(self, entry, now: float) -> None:
        """Hook fired when an adapter is used (GDSF score refresh)."""


@dataclass
class ChameleonScorePolicy(EvictionPolicy):
    """The paper's compound score; see module docstring.

    Features are normalized per eviction round: frequency by the max decayed
    frequency among candidates, recency as ``exp(-(now - last_used)/tau)``,
    size by the largest candidate size.
    """

    f_weight: float = CHAMELEON_WEIGHTS[0]
    r_weight: float = CHAMELEON_WEIGHTS[1]
    s_weight: float = CHAMELEON_WEIGHTS[2]
    recency_tau: float = RECENCY_TAU
    name: str = "chameleon"

    def score(self, entry, now: float, max_freq: float, max_size: float) -> float:
        freq = entry.decayed_frequency(now) / max_freq if max_freq > 0 else 0.0
        age = max(0.0, now - entry.last_used)
        recency = math.exp(-age / self.recency_tau)
        size = entry.size_bytes / max_size if max_size > 0 else 0.0
        return self.f_weight * freq + self.r_weight * recency + self.s_weight * size

    def order(self, candidates: list, now: float) -> list:
        if not candidates:
            return []
        max_freq = max(e.decayed_frequency(now) for e in candidates)
        max_size = max(e.size_bytes for e in candidates)
        return sorted(
            candidates,
            key=lambda e: (self.score(e, now, max_freq, max_size), e.adapter_id),
        )


class FairSharePolicy(ChameleonScorePolicy):
    """Equal-weight variant of the compound score (§5.3.3's Ch-FairShare)."""

    def __init__(self) -> None:
        third = 1.0 / 3.0
        super().__init__(f_weight=third, r_weight=third, s_weight=third, name="fairshare")


class LruPolicy(EvictionPolicy):
    """Evict the least-recently-used adapter first."""

    name = "lru"

    def order(self, candidates: list, now: float) -> list:
        return sorted(candidates, key=lambda e: (e.last_used, e.adapter_id))


class GdsfPolicy(EvictionPolicy):
    """Greedy-Dual-Size-Frequency with load-time cost.

    ``H(entry) = L + frequency * cost / size`` where cost is the adapter's
    (unloaded) link transfer time.  L inflates to the evicted entry's H, so
    long-idle entries age out.
    """

    name = "gdsf"

    def __init__(self, link_bandwidth: float, setup_latency: float = 0.2e-3) -> None:
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        self.link_bandwidth = link_bandwidth
        self.setup_latency = setup_latency
        self.inflation = 0.0

    def _cost(self, entry) -> float:
        return self.setup_latency + entry.size_bytes / self.link_bandwidth

    def on_access(self, entry, now: float) -> None:
        entry.gdsf_h = self.inflation + entry.decayed_frequency(now) * (
            self._cost(entry) / entry.size_bytes
        )

    def on_evict(self, entry) -> None:
        self.inflation = max(self.inflation, entry.gdsf_h)

    def order(self, candidates: list, now: float) -> list:
        for entry in candidates:
            if entry.gdsf_h == 0.0:
                self.on_access(entry, now)
        return sorted(candidates, key=lambda e: (e.gdsf_h, e.adapter_id))


def make_policy(name: str, link_bandwidth: Optional[float] = None) -> EvictionPolicy:
    """Factory by policy name: chameleon | fairshare | lru | gdsf."""
    if name == "chameleon":
        return ChameleonScorePolicy()
    if name == "fairshare":
        return FairSharePolicy()
    if name == "lru":
        return LruPolicy()
    if name == "gdsf":
        if link_bandwidth is None:
            raise ValueError("gdsf needs the link bandwidth for its cost term")
        return GdsfPolicy(link_bandwidth)
    raise ValueError(f"unknown eviction policy {name!r}")
