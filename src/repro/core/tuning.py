"""Offline profiling of the eviction-score coefficients (§4.2.2).

The paper sets the compound-score weights (F, R, S) = (0.45, 0.10, 0.45) "by
offline profiling of industrial traces of inference requests combined with
adapter size distributions found in the literature".  This module implements
that profiling loop: replay a calibration trace against the full system for
every candidate weighting on a simplex grid and pick the weights minimizing
P99 TTFT (ties broken by mean TTFT).

Example::

    from repro.core.tuning import profile_eviction_weights
    best = profile_eviction_weights(trace, registry, grid_step=0.25)
    print(best.weights, best.p99_ttft)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adapters.registry import AdapterRegistry
from repro.core.eviction import ChameleonScorePolicy
from repro.workload.trace import Trace


@dataclass(frozen=True)
class WeightCandidate:
    """One profiled weighting and its measured latency."""

    weights: tuple[float, float, float]   # (F, R, S)
    p99_ttft: float
    mean_ttft: float
    hit_rate: float


@dataclass
class ProfilingResult:
    """Outcome of an offline profiling sweep."""

    best: WeightCandidate
    candidates: list[WeightCandidate]

    @property
    def weights(self) -> tuple[float, float, float]:
        return self.best.weights


def simplex_grid(step: float = 0.25) -> list[tuple[float, float, float]]:
    """All (F, R, S) weightings on the unit simplex with the given step."""
    if not 0.0 < step <= 1.0:
        raise ValueError(f"step must be in (0, 1], got {step}")
    n = round(1.0 / step)
    points = []
    for i in range(n + 1):
        for j in range(n + 1 - i):
            k = n - i - j
            points.append((i * step, j * step, k * step))
    return points


def profile_eviction_weights(
    trace: Trace,
    registry: AdapterRegistry,
    grid_step: float = 0.25,
    candidates: Optional[Sequence[tuple[float, float, float]]] = None,
    warmup: float = 10.0,
    seed: int = 0,
    **build_kwargs,
) -> ProfilingResult:
    """Sweep (F, R, S) weightings over a calibration trace (see module doc).

    Extra keyword arguments go to :func:`repro.systems.build_system` (e.g. a
    different GPU or model).
    """
    from repro.systems import build_system  # local import: avoid cycle

    grid = list(candidates) if candidates is not None else simplex_grid(grid_step)
    if not grid:
        raise ValueError("no candidate weightings to profile")
    results = []
    for f_weight, r_weight, s_weight in grid:
        system = build_system("chameleon", registry=registry, seed=seed,
                              **build_kwargs)
        system.adapter_manager.policy = ChameleonScorePolicy(
            f_weight=f_weight, r_weight=r_weight, s_weight=s_weight)
        system.run_trace(trace.fresh())
        summary = system.summary(warmup=warmup)
        results.append(WeightCandidate(
            weights=(f_weight, r_weight, s_weight),
            p99_ttft=summary.p99_ttft,
            mean_ttft=summary.mean_ttft,
            hit_rate=system.adapter_manager.stats.hit_rate,
        ))
    best = min(results, key=lambda c: (c.p99_ttft, c.mean_ttft))
    return ProfilingResult(best=best, candidates=results)
