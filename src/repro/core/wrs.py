"""Weighted Request Size (§4.3.1).

The WRS estimates a request's total execution time from the three knobs the
paper identifies — known input size, predicted output size, and adapter rank:

    WRS = (A * In/MaxIn + B * Out/MaxOut) * (AdapterSize/MaxAdapterSize)

with A = 0.4 and B = 0.6.  The paper notes this degree-2 polynomial beats a
purely linear combination by up to 10%.  The ``output_only`` mode reproduces
the §5.4.1 ablation that sizes requests by predicted output alone (µServe
style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WrsParams:
    """Weighting coefficients of the WRS polynomial (§4.3.1)."""

    a_input: float = 0.4
    b_output: float = 0.6
    #: Adapter factor used for base-model requests (no adapter).  Chosen as
    #: the smallest rank's share so base requests sort with the lightest
    #: adapter class.
    base_adapter_factor: float = 8.0 / 128.0
    #: Weight of the adapter term in the ``"linear"`` (degree-1) ablation.
    c_adapter_linear: float = 0.5
    #: ``"chameleon"`` (the degree-2 polynomial), ``"linear"`` (the degree-1
    #: combination §4.3.1 compares against, up to 10% worse), or
    #: ``"output_only"`` (µServe-style, §5.4.1's ablation).
    mode: str = "chameleon"

    def __post_init__(self) -> None:
        if self.mode not in ("chameleon", "linear", "output_only"):
            raise ValueError(f"unknown WRS mode {self.mode!r}")


@dataclass(frozen=True)
class WorkloadBounds:
    """Normalization maxima for the WRS formula.

    Taken from the trace profile (max input/output tokens) and the adapter
    registry (max adapter size).
    """

    max_input_tokens: int
    max_output_tokens: int
    max_adapter_bytes: int

    def __post_init__(self) -> None:
        if min(self.max_input_tokens, self.max_output_tokens, self.max_adapter_bytes) <= 0:
            raise ValueError("workload bounds must all be positive")


def compute_wrs(
    input_tokens: int,
    predicted_output_tokens: int,
    adapter_bytes: Optional[int],
    bounds: WorkloadBounds,
    params: WrsParams = WrsParams(),
) -> float:
    """Compute the weighted request size of one request.

    Inputs above the bounds are clamped (the predictor can overshoot the
    profile's max output).
    """
    in_frac = min(1.0, input_tokens / bounds.max_input_tokens)
    out_frac = min(1.0, predicted_output_tokens / bounds.max_output_tokens)
    if params.mode == "output_only":
        return out_frac
    if adapter_bytes is None:
        adapter_frac = params.base_adapter_factor
    else:
        adapter_frac = min(1.0, adapter_bytes / bounds.max_adapter_bytes)
    length_term = params.a_input * in_frac + params.b_output * out_frac
    if params.mode == "linear":
        # Degree-1: simply add the adapter term instead of multiplying.
        return (length_term + params.c_adapter_linear * adapter_frac) / (
            1.0 + params.c_adapter_linear)
    return length_term * adapter_frac


def max_possible_wrs(params: WrsParams = WrsParams()) -> float:
    """Upper bound of the WRS range (used by the static queue config)."""
    if params.mode == "output_only":
        return 1.0
    if params.mode == "linear":
        return (params.a_input + params.b_output + params.c_adapter_linear) / (
            1.0 + params.c_adapter_linear)
    return params.a_input + params.b_output
