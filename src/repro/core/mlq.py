"""The Chameleon multi-level-queue scheduler (§4.3).

Requests are sized by their Weighted Request Size, binned into K queues whose
cutoffs come from K-means clustering of the recent WRS distribution, and
admitted by Algorithm 1: every iteration each queue admits up to its token
quota (small-request queues first — the express lane), then the spare
capacity of empty queues is redistributed to queues that still have waiting
requests.  Quotas come from the §4.3.5 M/M/1 solver and everything is
re-derived every ``T_refresh`` (5 minutes in the paper).

Also implemented: the §4.3.3 *opportunistic bypass* — when the head of a
queue cannot be admitted because its adapter does not fit even after evicting
every idle cached adapter, a younger request from the same queue whose
adapter is available may jump ahead, provided its predicted execution is
shorter than the predicted wait; if memory frees up early, the bypasser is
*squashed* (rolled back and re-queued) so the bypassed request is not starved.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adapters.registry import AdapterRegistry
from repro.core.clustering import choose_k_elbow, cluster_cutoffs, kmeans_1d
from repro.core.quotas import QueueStats, solve_quotas
from repro.core.wrs import WorkloadBounds, WrsParams, compute_wrs, max_possible_wrs
from repro.llm.costmodel import CostModel
from repro.llm.model import ModelSpec
from repro.serving.admission import AdmissionContext, AdmitResult
from repro.serving.schedulers import Scheduler
from repro.workload.request import Request, RequestState


@dataclass
class MlqConfig:
    """Knobs of the MLQ scheduler; defaults follow the paper."""

    k_max: int = 4
    t_refresh: float = 300.0
    min_samples: int = 50
    history_size: int = 4096
    wrs_params: WrsParams = field(default_factory=WrsParams)
    bypass_enabled: bool = True
    #: SLO used by the quota solver (seconds).
    slo: float = 5.0
    #: Factor applied to the memory-derived token pool when sizing quotas.
    #: Token charges use *predicted* output lengths, whose errors are biased
    #: upward (log-normal misses), so literal 1.0 provisioning under-admits
    #: relative to what memory actually allows and inflicts phantom queueing
    #: (worst for large, hard-to-predict requests).  Actual memory admission
    #: is enforced separately by the engine, so the overcommit can never
    #: cause an OOM — quotas retain their §4.3 role of *relative* shares and
    #: starvation protection.
    token_overcommit: float = 2.0
    #: When set, use a static configuration (Figure 22's "Static"): this many
    #: queues with equal WRS ranges and equal quotas, never refreshed.
    static_k: Optional[int] = None


@dataclass
class _Queue:
    """One scheduling lane."""

    upper: float                      # exclusive WRS upper bound (inf for last)
    quota: float = 0.0                # assigned tokens
    borrowed: float = 0.0             # tokens currently loaned to running requests
    items: list = field(default_factory=list)

    @property
    def available(self) -> float:
        return max(0.0, self.quota - self.borrowed)


@dataclass
class _Sample:
    """Recent-request features driving re-clustering and the quota solver."""

    time: float
    wrs: float
    token_cost: int
    est_duration: float


class MlqScheduler(Scheduler):
    """See module docstring."""

    needs_predictions = True

    def __init__(
        self,
        model: ModelSpec,
        registry: AdapterRegistry,
        cost_model: CostModel,
        bounds: WorkloadBounds,
        config: MlqConfig = MlqConfig(),
    ) -> None:
        self.model = model
        self.registry = registry
        self.cost_model = cost_model
        self.bounds = bounds
        self.config = config

        self._samples: deque[_Sample] = deque(maxlen=config.history_size)
        self._charges: dict[int, tuple[Request, list]] = {}
        #: Running requests per adapter — an adapter's tokens are charged
        #: once per *adapter*, not once per request (adapters are shared).
        self._adapter_active: dict[int, int] = {}
        self._bypass_pairs: list[tuple[Request, Request]] = []
        self._total_tokens: Optional[float] = None
        self._last_refresh: Optional[float] = None
        self._refresh_count = 0
        self.bypass_count = 0

        if config.static_k is not None:
            step = max_possible_wrs(config.wrs_params) / config.static_k
            uppers = [step * (i + 1) for i in range(config.static_k - 1)] + [float("inf")]
            self.queues = [_Queue(upper=u) for u in uppers]
        else:
            self.queues = [_Queue(upper=float("inf"))]

    # ------------------------------------------------------------------ #
    # Sizing and classification
    # ------------------------------------------------------------------ #
    def _adapter_bytes(self, request: Request) -> Optional[int]:
        if request.adapter_id is None:
            return None
        return self.registry.get(request.adapter_id).size_bytes

    def _request_rank(self, request: Request) -> Optional[int]:
        if request.adapter_id is None:
            return None
        return self.registry.get(request.adapter_id).rank

    def _token_cost(self, request: Request) -> int:
        """A request's footprint in scheduling tokens (§4.3: input + output
        tokens plus the adapter's memory translated into tokens)."""
        predicted = request.predicted_output_tokens or request.output_tokens
        adapter_tokens = 0
        adapter_bytes = self._adapter_bytes(request)
        if adapter_bytes is not None:
            adapter_tokens = -(-adapter_bytes // self.model.kv_bytes_per_token)
        return request.input_tokens + predicted + adapter_tokens

    def _effective_cost(self, request: Request) -> int:
        """Tokens actually charged at admission: the adapter's share is only
        charged when no running request already holds that adapter (adapter
        weights are shared; charging them per request would double-count)."""
        predicted = request.predicted_output_tokens or request.output_tokens
        cost = request.input_tokens + predicted
        aid = request.adapter_id
        if aid is not None and self._adapter_active.get(aid, 0) == 0:
            adapter_bytes = self.registry.get(aid).size_bytes
            cost += -(-adapter_bytes // self.model.kv_bytes_per_token)
        return cost

    def _classify(self, wrs: float) -> _Queue:
        for queue in self.queues:
            if wrs < queue.upper:
                return queue
        return self.queues[-1]

    def size_class(self, wrs: float) -> int:
        """Index of the queue a WRS value falls into (0 = smallest)."""
        return self.queues.index(self._classify(wrs))

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def enqueue(self, request: Request, now: float) -> None:
        predicted = request.predicted_output_tokens
        if predicted is None:
            raise RuntimeError("MLQ requires output-length predictions")
        request.wrs = compute_wrs(
            request.input_tokens, predicted, self._adapter_bytes(request),
            self.bounds, self.config.wrs_params,
        )
        request.token_cost = self._token_cost(request)
        est = self.cost_model.estimate_service_time(
            request.input_tokens, predicted, self._request_rank(request)
        )
        self._samples.append(
            _Sample(time=now, wrs=request.wrs, token_cost=request.token_cost, est_duration=est)
        )
        queue = self._classify(request.wrs)
        request.queue_index = self.queues.index(queue)
        queue.items.append(request)

    def requeue_front(self, request: Request, now: float) -> None:
        # A squashed request returns its borrowed tokens (it will be charged
        # again on re-admission) and releases its adapter-share charge.
        self._release_charges(request)
        queue = self._classify(request.wrs if request.wrs is not None else 0.0)
        request.queue_index = self.queues.index(queue)
        queue.items.insert(0, request)

    def queued_requests(self) -> Iterable[Request]:
        return list(itertools.chain.from_iterable(q.items for q in self.queues))

    def drain(self) -> list[Request]:
        drained = list(self.queued_requests())
        for queue in self.queues:
            queue.items.clear()
        return drained

    def queue_len(self) -> int:
        return sum(len(q.items) for q in self.queues)

    def on_finish(self, request: Request, now: float) -> None:
        self._release_charges(request)

    def _release_charges(self, request: Request) -> None:
        entry = self._charges.pop(request.request_id, None)
        if entry is None:
            return
        for queue, amount in entry[1]:
            queue.borrowed = max(0.0, queue.borrowed - amount)
        aid = request.adapter_id
        if aid is not None and self._adapter_active.get(aid, 0) > 0:
            self._adapter_active[aid] -= 1

    def on_schedule(self, now: float) -> None:
        if self.config.static_k is not None:
            return
        due_first = self._last_refresh is None and len(self._samples) >= self.config.min_samples
        due_periodic = (
            self._last_refresh is not None
            and now - self._last_refresh >= self.config.t_refresh
            and len(self._samples) >= self.config.min_samples
        )
        if due_first or due_periodic:
            self._refresh(now)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def select(self, ctx: AdmissionContext) -> None:
        if self._total_tokens is None:
            self._init_quotas(ctx.total_token_capacity, ctx.now)
        self._check_squash(ctx)

        # Phase 1: every queue admits up to its own available quota;
        # queues left empty contribute their unused budget to the spare pool.
        lenders: list[list] = []  # [queue, spare_amount]
        for queue in self.queues:
            budget = queue.available
            # Liveness guard: an idle queue must always be able to admit its
            # head, even if the head is larger than the assigned quota
            # (otherwise a quota undershoot would block the lane forever).
            if queue.items and queue.borrowed == 0:
                budget = max(budget, float(self._effective_cost(queue.items[0])))
            consumed = self._put_batch(queue, budget, ctx, lenders=None, home=queue)
            if not queue.items and budget - consumed > 0:
                lenders.append([queue, budget - consumed])

        # Phase 2: redistribute spare resources, smallest queue first.
        if not lenders:
            return
        for queue in self.queues:
            spare = sum(amount for _, amount in lenders)
            if spare <= 0:
                break
            if not queue.items:
                continue
            self._put_batch(queue, spare, ctx, lenders=lenders, home=queue)

    def _put_batch(
        self,
        queue: _Queue,
        budget: float,
        ctx: AdmissionContext,
        lenders: Optional[list],
        home: _Queue,
    ) -> float:
        """Admit requests from ``queue`` within ``budget`` tokens.

        Phase 1 (``lenders is None``) charges the queue itself; phase 2 draws
        the tokens from the lender queues' spare budgets.  Mirrors the paper's
        ``put_batch``: scan in order, stop at the first request that does not
        fit — except for the opportunistic-bypass case.
        """
        consumed = 0.0
        index = 0
        while index < len(queue.items):
            request = queue.items[index]
            cost = self._effective_cost(request)
            if cost > budget - consumed:
                break
            result = ctx.try_admit(request)
            if result is AdmitResult.ADMITTED:
                queue.items.pop(index)
                self._charge(request, cost, lenders, home)
                consumed += cost
                continue
            if result is AdmitResult.NO_ADAPTER_ROOM and self.config.bypass_enabled:
                consumed += self._attempt_bypass(
                    queue, index, budget - consumed, ctx, lenders, home
                )
            break
        return consumed

    def _charge(self, request: Request, cost: float, lenders: Optional[list], home: _Queue) -> None:
        if request.adapter_id is not None:
            self._adapter_active[request.adapter_id] = (
                self._adapter_active.get(request.adapter_id, 0) + 1)
        charges: list = []
        if lenders is None:
            home.borrowed += cost
            charges.append((home, cost))
        else:
            remaining = cost
            for lender in lenders:
                if remaining <= 0:
                    break
                take = min(lender[1], remaining)
                if take <= 0:
                    continue
                lender[0].borrowed += take
                lender[1] -= take
                charges.append((lender[0], take))
                remaining -= take
            if remaining > 0:
                # Spare pool exhausted mid-request; charge the home queue.
                home.borrowed += remaining
                charges.append((home, remaining))
        self._charges[request.request_id] = (request, charges)

    # ------------------------------------------------------------------ #
    # Opportunistic bypass + squash (§4.3.3)
    # ------------------------------------------------------------------ #
    def _attempt_bypass(
        self,
        queue: _Queue,
        blocked_index: int,
        budget_left: float,
        ctx: AdmissionContext,
        lenders: Optional[list],
        home: _Queue,
    ) -> float:
        blocked = queue.items[blocked_index]
        predicted_wait = ctx.estimate_earliest_release()
        for j in range(blocked_index + 1, len(queue.items)):
            candidate = queue.items[j]
            cost = self._effective_cost(candidate)
            if cost > budget_left:
                continue
            # Bypass is only allowed when the wait for the blocked request's
            # memory is predicted to outlast the bypasser's whole execution.
            if ctx.estimate_service_time(candidate) >= predicted_wait:
                continue
            if ctx.try_admit(candidate) is AdmitResult.ADMITTED:
                queue.items.pop(j)
                self._charge(candidate, cost, lenders, home)
                self._bypass_pairs.append((blocked, candidate))
                self.bypass_count += 1
                return float(cost)
        return 0.0

    def _check_squash(self, ctx: AdmissionContext) -> None:
        """Roll back bypassers whose bypass turned out unnecessary."""
        waiting_states = (RequestState.QUEUED, RequestState.CREATED)
        still_active: list[tuple[Request, Request]] = []
        for blocked, bypasser in self._bypass_pairs:
            if blocked.state not in waiting_states or bypasser.finished:
                continue
            if bypasser.state is RequestState.QUEUED:
                continue  # already squashed or re-queued some other way
            predicted = blocked.predicted_output_tokens or blocked.output_tokens
            need = (blocked.input_tokens + predicted) * self.model.kv_bytes_per_token
            adapter_bytes = self._adapter_bytes(blocked)
            if adapter_bytes is not None and not ctx.is_adapter_available(blocked):
                need += adapter_bytes
            freed = bypasser.kv_reserved_bytes
            if (
                bypasser.adapter_id is not None
                and ctx.adapter_refcount(bypasser.adapter_id) == 1
            ):
                freed += self.registry.get(bypasser.adapter_id).size_bytes
            if ctx.free_bytes + freed >= need:
                ctx.squash(bypasser)
            else:
                still_active.append((blocked, bypasser))
        self._bypass_pairs = still_active

    # ------------------------------------------------------------------ #
    # Dynamic reconfiguration (§4.3.4 / §4.3.5)
    # ------------------------------------------------------------------ #
    def _init_quotas(self, total_tokens: float, now: float) -> None:
        self._total_tokens = float(total_tokens) * self.config.token_overcommit
        if self._last_refresh is not None and self._samples:
            # A refresh already ran before capacity was known: solve properly.
            self._assign_quotas(now)
            return
        share = self._total_tokens / len(self.queues)
        for queue in self.queues:
            queue.quota = share

    def _refresh(self, now: float) -> None:
        """Re-derive K, the cutoffs and the quotas from recent samples."""
        self._last_refresh = now
        self._refresh_count += 1
        values = [s.wrs for s in self._samples]
        k = choose_k_elbow(values, self.config.k_max)
        centroids, _labels = kmeans_1d(values, k)
        cutoffs = cluster_cutoffs(centroids)
        uppers = cutoffs + [float("inf")]

        waiting = list(self.queued_requests())
        old_charges = list(self._charges.values())
        self.queues = [_Queue(upper=u) for u in uppers]
        for request in waiting:
            queue = self._classify(request.wrs if request.wrs is not None else 0.0)
            request.queue_index = self.queues.index(queue)
            queue.items.append(request)

        # Carry running requests' borrowed tokens over to the new queues.
        self._charges = {}
        for request, charges in old_charges:
            amount = sum(a for _, a in charges)
            queue = self._classify(request.wrs if request.wrs is not None else 0.0)
            queue.borrowed += amount
            self._charges[request.request_id] = (request, [(queue, amount)])

        if self._total_tokens is not None:
            self._assign_quotas(now)

    def _assign_quotas(self, now: float) -> None:
        assert self._total_tokens is not None
        window = max(1.0, now - self._samples[0].time) if self._samples else 1.0
        stats = []
        for queue in self.queues:
            members = [
                s for s in self._samples
                if self._classify(s.wrs) is queue
            ]
            if members:
                stats.append(
                    QueueStats(
                        max_request_tokens=max(s.token_cost for s in members),
                        expected_duration=sum(s.est_duration for s in members) / len(members),
                        arrival_rate=len(members) / window,
                    )
                )
            else:
                stats.append(QueueStats(1.0, 0.01, 0.0))
        quotas = solve_quotas(stats, self._total_tokens, self.config.slo)
        for queue, quota in zip(self.queues, quotas):
            queue.quota = quota

    # ------------------------------------------------------------------ #
    @property
    def n_queues(self) -> int:
        return len(self.queues)

    @property
    def refresh_count(self) -> int:
        return self._refresh_count
