"""Per-queue resource quotas from M/M/1 queueing theory (§4.3.5).

Each queue q is modelled as an M/M/1 server whose service rate is determined
by the tokens assigned to it:  mu = Tok / (S * D), where S is the maximum
request size in the queue (tokens), D the expected processing duration of one
request, and lambda the queue's arrival rate.  Meeting the SLO
(T_total = 1/(mu - lambda) <= SLO) requires

    Tok_min >= S * D * (1/SLO + lambda).

Each queue receives its minimum, and the surplus is split proportionally to
the minima ("their initial weights").  If the minima oversubscribe the total,
everything is scaled down proportionally — the system is under-provisioned
and the SLO cannot be guaranteed, but fairness between queues is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class QueueStats:
    """Inputs of the quota formula for one queue."""

    #: Maximum request size observed/allowed in the queue, in tokens (S).
    max_request_tokens: float
    #: Expected processing duration of one request from the queue, seconds (D).
    expected_duration: float
    #: Arrival rate into the queue, requests/second (lambda).
    arrival_rate: float

    def min_tokens(self, slo: float) -> float:
        """Tok_min for this queue: S * D * (1/SLO + lambda).

        Floored at S: a quota smaller than one maximum-size request could
        never admit the queue's head and would deadlock the lane (the paper's
        formula implicitly assumes Tok >= S since mu = Tok/(S*D) must admit
        whole requests).
        """
        if slo <= 0:
            raise ValueError(f"SLO must be positive, got {slo}")
        s = max(1.0, self.max_request_tokens)
        d = max(1e-6, self.expected_duration)
        lam = max(0.0, self.arrival_rate)
        return max(s, s * d * (1.0 / slo + lam))


def solve_quotas(
    stats: Sequence[QueueStats],
    total_tokens: float,
    slo: float,
) -> list[float]:
    """Assign token quotas to queues per §4.3.5 (see module docstring)."""
    if not stats:
        raise ValueError("need at least one queue")
    if total_tokens <= 0:
        raise ValueError(f"total_tokens must be positive, got {total_tokens}")
    minima = [q.min_tokens(slo) for q in stats]
    need = sum(minima)
    if need < total_tokens:
        surplus = total_tokens - need
        weight_total = sum(minima)
        return [m + surplus * (m / weight_total) for m in minima]
    # Under-provisioned: the SLO cannot be guaranteed for every queue.  Keep
    # each lane live (one max-size request each) if that is feasible, then
    # split the shortfall proportionally to the excess demand.
    floors = [max(1.0, q.max_request_tokens) for q in stats]
    floor_total = sum(floors)
    if floor_total >= total_tokens:
        scale = total_tokens / floor_total
        return [f * scale for f in floors]
    remaining = total_tokens - floor_total
    excess = [max(0.0, m - f) for m, f in zip(minima, floors)]
    excess_total = sum(excess) or 1.0
    return [f + remaining * (e / excess_total) for f, e in zip(floors, excess)]
