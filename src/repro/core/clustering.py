"""1-D K-means over request sizes, with WCSS-based K selection (§4.3.4).

The scheduler clusters the recent WRS distribution for K = 1..Kmax, computes
the Within-Cluster Sum of Squares for each K, and derives queue cutoffs as
the midpoints between consecutive centroids.

Note on K selection: the paper says it "picks the K that yields minimal
WCSS", but WCSS is monotonically non-increasing in K, so taken literally that
always returns Kmax.  We implement the standard elbow criterion — the K with
the largest drop-off in marginal WCSS improvement — which is the only reading
that can pick fewer queues when the size distribution is unimodal
(DESIGN.md §4.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def kmeans_1d(
    values: Sequence[float],
    k: int,
    max_iter: int = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic 1-D K-means.

    Initialization uses evenly-spaced quantiles (deterministic, which is both
    reproducible and near-optimal in one dimension).  Returns
    ``(sorted_centroids, labels)``; labels index the sorted centroids.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot cluster an empty sample")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, np.unique(data).size)
    centroids = np.quantile(data, np.linspace(0, 1, 2 * k + 1)[1::2])
    centroids = np.unique(centroids)
    k = centroids.size
    for _ in range(max_iter):
        labels = np.argmin(np.abs(data[:, None] - centroids[None, :]), axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = data[labels == j]
            if members.size:
                new_centroids[j] = members.mean()
        new_centroids = np.sort(new_centroids)
        if np.allclose(new_centroids, centroids):
            centroids = new_centroids
            break
        centroids = new_centroids
    labels = np.argmin(np.abs(data[:, None] - centroids[None, :]), axis=1)
    return centroids, labels


def wcss(values: Sequence[float], centroids: np.ndarray, labels: np.ndarray) -> float:
    """Within-cluster sum of squares for a clustering result."""
    data = np.asarray(values, dtype=float)
    return float(np.sum((data - centroids[labels]) ** 2))


#: A step K-1 -> K must shrink WCSS below this ratio to justify another
#: queue.  Splitting a single Gaussian mode only reaches ~0.36, so genuine
#: modes pass and noise does not.
ELBOW_IMPROVEMENT_RATIO = 0.3


def choose_k_elbow(values: Sequence[float], k_max: int = 4) -> int:
    """Pick K in 1..k_max by the elbow of the WCSS curve.

    K grows while each additional cluster still shrinks WCSS by a large
    factor (< ``ELBOW_IMPROVEMENT_RATIO``); the first step that stops paying
    ends the search.  Splitting a well-separated mode shrinks WCSS by orders
    of magnitude, while splitting a single Gaussian mode only reaches ~0.36x,
    so the threshold separates real structure from noise.  Degenerate cases
    (constant samples, k_max = 1) return 1.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot choose K for an empty sample")
    k_max = max(1, min(k_max, np.unique(data).size))
    if k_max == 1:
        return 1
    scores = []
    for k in range(1, k_max + 1):
        centroids, labels = kmeans_1d(data, k)
        scores.append(wcss(data, centroids, labels))
    if scores[0] <= 1e-12:
        return 1
    best_k = 1
    for k in range(2, k_max + 1):
        prev, curr = scores[k - 2], scores[k - 1]
        if prev <= 1e-12 or curr / prev >= ELBOW_IMPROVEMENT_RATIO:
            break
        best_k = k
    return best_k


def cluster_cutoffs(centroids: np.ndarray) -> list[float]:
    """Queue boundaries: midpoints between consecutive sorted centroids.

    K centroids yield K-1 cutoffs; queue i handles sizes in
    ``[cutoff[i-1], cutoff[i])``.
    """
    sorted_c = np.sort(np.asarray(centroids, dtype=float))
    return [float((sorted_c[i] + sorted_c[i + 1]) / 2.0) for i in range(sorted_c.size - 1)]
