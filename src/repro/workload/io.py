"""Trace persistence and summary statistics.

Traces synthesized once can be saved to JSON and replayed across machines or
against later versions of the system (the reproduction equivalent of
shipping the Azure trace file).  ``trace_statistics`` computes the summary
table a paper's workload section reports.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.workload.request import Request
from repro.workload.trace import Trace, TraceProfile

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Serialize a trace (requests + generation parameters) to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "profile": asdict(trace.profile),
        "rps": trace.rps,
        "duration": trace.duration,
        "requests": [
            {
                "id": r.request_id,
                "arrival": r.arrival_time,
                "input": r.input_tokens,
                "output": r.output_tokens,
                "adapter": r.adapter_id,
            }
            for r in trace.requests
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    profile = TraceProfile(**payload["profile"])
    requests = [
        Request(
            request_id=entry["id"],
            arrival_time=entry["arrival"],
            input_tokens=entry["input"],
            output_tokens=entry["output"],
            adapter_id=entry["adapter"],
        )
        for entry in payload["requests"]
    ]
    return Trace(requests=requests, profile=profile,
                 rps=payload["rps"], duration=payload["duration"])


@dataclass(frozen=True)
class TraceStatistics:
    """The workload-characterization numbers a paper reports."""

    n_requests: int
    duration: float
    mean_rps: float
    mean_input_tokens: float
    p50_input_tokens: float
    p99_input_tokens: float
    mean_output_tokens: float
    p50_output_tokens: float
    p99_output_tokens: float
    distinct_adapters: int
    top_adapter_share: float  # fraction of requests using the hottest adapter


def trace_statistics(trace: Trace) -> TraceStatistics:
    """Summary statistics of a trace (lengths, skew, effective rate)."""
    if not trace.requests:
        raise ValueError("cannot summarize an empty trace")
    inputs = np.array([r.input_tokens for r in trace.requests])
    outputs = np.array([r.output_tokens for r in trace.requests])
    adapters = [r.adapter_id for r in trace.requests if r.adapter_id is not None]
    if adapters:
        counts = np.bincount(adapters)
        distinct = int(np.count_nonzero(counts))
        top_share = float(counts.max()) / len(trace.requests)
    else:
        distinct, top_share = 0, 0.0
    span = max(r.arrival_time for r in trace.requests) or 1.0
    return TraceStatistics(
        n_requests=len(trace.requests),
        duration=trace.duration,
        mean_rps=len(trace.requests) / span,
        mean_input_tokens=float(inputs.mean()),
        p50_input_tokens=float(np.percentile(inputs, 50)),
        p99_input_tokens=float(np.percentile(inputs, 99)),
        mean_output_tokens=float(outputs.mean()),
        p50_output_tokens=float(np.percentile(outputs, 50)),
        p99_output_tokens=float(np.percentile(outputs, 99)),
        distinct_adapters=distinct,
        top_adapter_share=top_share,
    )
