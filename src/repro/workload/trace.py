"""Trace synthesis: Splitwise/WildChat/LMSYS-like request streams.

The paper drives its evaluation with the Azure/Splitwise conversation trace
(heavy-tailed input/output lengths), memory-scaled to the testbed (§3.2), with
Poisson inter-arrival times to set the load (§5.1), plus the WildChat-1M and
LMSYS-Chat-1M datasets ("generally smaller input and output lengths",
§5.4.4).  We synthesize statistically-matched streams; the profiles below are
the published shape parameters scaled with the same procedure the paper uses
(lengths scaled by a constant so peak memory fits the testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.adapters.registry import AdapterRegistry
from repro.workload.distributions import (
    bursty_arrival_times,
    poisson_arrival_times,
    sample_lognormal_lengths,
    zipf_weights,
)
from repro.workload.request import Request


@dataclass(frozen=True)
class TraceProfile:
    """Statistical shape of a request stream.

    Lengths are drawn from truncated log-normals; ``sigma`` controls how heavy
    the tail is (the Splitwise conversation trace is strongly heavy-tailed).
    """

    name: str
    mean_input_tokens: float
    mean_output_tokens: float
    input_sigma: float
    output_sigma: float
    max_input_tokens: int
    max_output_tokens: int
    bursty: bool = True


# Shapes follow the published statistics of each dataset, jointly scaled down
# by the §3.2 constant-factor procedure so the peak footprint fits a 48 GB
# testbed at the paper's load range.
# The conversation traces are decode-heavy: outputs dominate the footprint,
# which is what makes the serving system *memory-bound* at high load (the
# paper: "by 12.5 RPS ... GPU memory is fully used").  The absolute lengths
# are the §3.2 constant-factor scaling of the published statistics down to
# the 48 GB testbed at the paper's load range.
SPLITWISE_PROFILE = TraceProfile(
    name="splitwise",
    mean_input_tokens=200.0, mean_output_tokens=60.0,
    input_sigma=1.1, output_sigma=1.1,
    max_input_tokens=4096, max_output_tokens=2048,
)
WILDCHAT_PROFILE = TraceProfile(
    name="wildchat",
    mean_input_tokens=120.0, mean_output_tokens=40.0,
    input_sigma=0.9, output_sigma=0.9,
    max_input_tokens=2048, max_output_tokens=1024,
)
LMSYS_PROFILE = TraceProfile(
    name="lmsys",
    mean_input_tokens=100.0, mean_output_tokens=36.0,
    input_sigma=1.0, output_sigma=0.9,
    max_input_tokens=2048, max_output_tokens=1024,
)

TRACE_PROFILES: dict[str, TraceProfile] = {
    p.name: p for p in (SPLITWISE_PROFILE, WILDCHAT_PROFILE, LMSYS_PROFILE)
}


@dataclass
class Trace:
    """A synthesized request stream plus its generation parameters."""

    requests: list[Request]
    profile: TraceProfile
    rps: float
    duration: float

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def fresh(self) -> list[Request]:
        """Pristine copies of the requests for one system run.

        Engines mutate request state in place, so replaying one trace against
        several systems (the paper's paired-comparison methodology) must hand
        each run its own copies.
        """
        return [
            Request(
                request_id=r.request_id,
                arrival_time=r.arrival_time,
                input_tokens=r.input_tokens,
                output_tokens=r.output_tokens,
                adapter_id=r.adapter_id,
                tenant_id=r.tenant_id,
                slo_class=r.slo_class,
            )
            for r in self.requests
        ]

    def label_tenants(self, n_tenants: int, rng,
                      skew: float = 1.2) -> "Trace":
        """Assign a Zipf-skewed ``tenant_id`` to every request, in place.

        Tenant ``t`` gets probability proportional to ``1 / (t+1)**skew``
        (``skew=0`` is uniform), drawn i.i.d. per request from ``rng`` —
        use the dedicated ``"tenants"`` stream so the labelling never
        perturbs the arrival process.  ``fresh()`` copies carry the label,
        so one labelled trace replays identically against every system.
        Returns ``self`` for chaining.
        """
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if not self.requests:
            return self
        # Deliberately NOT distributions.zipf_weights: pow(x, -a) and
        # 1/pow(x, a) differ by an ulp, and any weight change can flip
        # rng.choice draws — the historical labelling must stay byte-stable.
        # test_tenant_edge_cases pins the two formulas allclose so the
        # normalization can't silently drift apart.
        weights = np.array(
            [1.0 / (t + 1) ** skew for t in range(n_tenants)])
        draws = rng.choice(n_tenants, size=len(self.requests),
                           p=weights / weights.sum())
        for request, tenant in zip(self.requests, draws):
            request.tenant_id = int(tenant)
        return self

    @property
    def mean_input_tokens(self) -> float:
        return float(np.mean([r.input_tokens for r in self.requests]))

    @property
    def mean_output_tokens(self) -> float:
        return float(np.mean([r.output_tokens for r in self.requests]))


def synthesize_trace(
    profile: TraceProfile,
    rps: float,
    duration: float,
    rng: np.random.Generator,
    registry: Optional[AdapterRegistry] = None,
    rank_popularity: str = "uniform",
    adapter_popularity: str = "powerlaw",
    powerlaw_alpha: float = 1.0,
    burst_factor: float = 3.0,
    burst_fraction: float = 0.1,
    burst_cycle: float = 120.0,
    burst_phase: float = 0.0,
) -> Trace:
    """Generate a request stream.

    Args:
        profile: Length-distribution shape.
        rps: Mean requests per second (Poisson, optionally bursty).
        duration: Trace length in simulated seconds.
        rng: Random stream (use a dedicated named stream for pairing).
        registry: Adapter pool; when ``None`` requests are base-model only.
        rank_popularity: ``"uniform"`` or ``"powerlaw"`` over the distinct ranks.
        adapter_popularity: ``"uniform"`` or ``"powerlaw"`` over adapters within
            a rank (the paper's default is power-law).
        powerlaw_alpha: Zipf exponent for the power-law choices.
        burst_factor / burst_fraction / burst_cycle / burst_phase: Burst
            shape for bursty profiles (see :func:`bursty_arrival_times`); the
            defaults match the historical fixed values, so existing traces
            are unchanged.  Diurnal/flash-crowd scenarios (e.g. the
            autoscaling experiments) crank these up; tenant populations
            stagger ``burst_phase`` per tenant.
    """
    if profile.bursty:
        arrivals = bursty_arrival_times(
            rng, rps, duration, burst_factor=burst_factor,
            burst_fraction=burst_fraction, cycle=burst_cycle,
            phase=burst_phase)
    else:
        arrivals = poisson_arrival_times(rng, rps, duration)
    n = arrivals.size
    inputs = sample_lognormal_lengths(
        rng, profile.mean_input_tokens, profile.input_sigma, profile.max_input_tokens, n
    )
    outputs = sample_lognormal_lengths(
        rng, profile.mean_output_tokens, profile.output_sigma, profile.max_output_tokens, n
    )
    requests = [
        Request(
            request_id=i,
            arrival_time=float(arrivals[i]),
            input_tokens=int(inputs[i]),
            output_tokens=int(outputs[i]),
        )
        for i in range(n)
    ]
    if registry is not None:
        assign_adapters(
            requests, registry, rng,
            rank_popularity=rank_popularity,
            adapter_popularity=adapter_popularity,
            powerlaw_alpha=powerlaw_alpha,
        )
    return Trace(requests=requests, profile=profile, rps=rps, duration=duration)


def assign_adapters(
    requests: Sequence[Request],
    registry: AdapterRegistry,
    rng: np.random.Generator,
    rank_popularity: str = "uniform",
    adapter_popularity: str = "powerlaw",
    powerlaw_alpha: float = 1.0,
) -> None:
    """Attach an adapter id to every request, per the §5.1 procedure.

    A rank is sampled first (uniform or power-law over the distinct ranks),
    then an adapter within that rank (uniform or power-law over the rank's
    adapters).
    """
    ranks = registry.ranks
    if rank_popularity == "uniform":
        rank_w = np.full(len(ranks), 1.0 / len(ranks))
    elif rank_popularity == "powerlaw":
        rank_w = zipf_weights(len(ranks), powerlaw_alpha)
    else:
        raise ValueError(f"unknown rank_popularity {rank_popularity!r}")

    per_rank_ids = {rank: registry.ids_by_rank(rank) for rank in ranks}
    per_rank_weights = {}
    for rank in ranks:
        ids = per_rank_ids[rank]
        if adapter_popularity == "uniform":
            per_rank_weights[rank] = np.full(len(ids), 1.0 / len(ids))
        elif adapter_popularity == "powerlaw":
            per_rank_weights[rank] = zipf_weights(len(ids), powerlaw_alpha)
        else:
            raise ValueError(f"unknown adapter_popularity {adapter_popularity!r}")

    rank_choices = rng.choice(len(ranks), size=len(requests), p=rank_w)
    for req, rank_idx in zip(requests, rank_choices):
        rank = ranks[rank_idx]
        ids = per_rank_ids[rank]
        weights = per_rank_weights[rank]
        req.adapter_id = int(ids[rng.choice(len(ids), p=weights)])


def scale_trace_to_memory(
    trace: Trace,
    kv_bytes_per_token: int,
    kv_budget_bytes: int,
    window: float = 10.0,
) -> Trace:
    """Scale request lengths by one constant so peak KV demand fits a budget.

    This reproduces §3.2's procedure: "we have scaled down the input and
    output lengths ... using a constant factor that results in the peak
    memory consumption of the scaled-down trace to be equal to the memory
    capacity of our testbed".  Peak demand is estimated per time window
    assuming requests hold KV for their full footprint while active.
    """
    if not trace.requests:
        return trace
    peak_tokens = _peak_concurrent_kv_tokens(trace, window)
    budget_tokens = kv_budget_bytes / kv_bytes_per_token
    if peak_tokens <= budget_tokens:
        return trace
    factor = budget_tokens / peak_tokens
    scaled = [
        replace(
            req,
            input_tokens=max(1, int(req.input_tokens * factor)),
            output_tokens=max(1, int(req.output_tokens * factor)),
        )
        for req in trace.requests
    ]
    return Trace(requests=scaled, profile=trace.profile, rps=trace.rps, duration=trace.duration)


def _peak_concurrent_kv_tokens(trace: Trace, window: float) -> float:
    """Rough peak of concurrently-held KV tokens, binned by arrival window.

    A request is assumed active for an interval proportional to its size; this
    only needs to be a consistent estimator for the scaling factor.
    """
    if not trace.requests:
        return 0.0
    horizon = max(r.arrival_time for r in trace.requests) + window
    n_bins = int(horizon / window) + 1
    demand = np.zeros(n_bins)
    for req in trace.requests:
        footprint = req.input_tokens + req.output_tokens
        # Hold time heuristic: ~20 ms per generated token (decode-bound).
        hold = max(window, req.output_tokens * 0.02)
        first = int(req.arrival_time / window)
        last = min(n_bins - 1, int((req.arrival_time + hold) / window))
        demand[first:last + 1] += footprint
    return float(demand.max())
