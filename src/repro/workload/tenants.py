"""Multi-tenant workload model: Zipf tenant sizes, SLO classes, diurnal phases.

The paper's setting is inherently multi-tenant — thousands of adapters owned
by different customers share one serving fleet — but a single anonymous
request population cannot express *who* is hurt when the fleet saturates.
This module generates the tenant structure the fairness machinery needs:

* **Zipf tenant sizes** — tenant ``t`` owns a share of the aggregate arrival
  rate proportional to ``(t+1)**-skew`` (production tenant populations are
  heavy-headed: a few tenants dominate traffic).
* **SLO classes** — each tenant belongs to a named class (``gold`` /
  ``standard`` / ``batch`` by default) carrying a TTFT-deadline scale, an
  optional slowdown target, and a dispatch weight.  ``SloPolicy.classes``
  consumes the deadline side, ``TenantFairnessPolicy`` the weight side.
* **Diurnal phases** — each tenant's bursts are offset within the burst
  cycle, so tenants peak at different times.  The aggregate keeps the cycle
  period, which is exactly the seasonality the ``ArrivalRateForecaster``'s
  phase histogram learns; the offsets are what make borrow-from-idle quotas
  meaningful (someone is always off-peak).

A 1-tenant population with zero phase offset drives :func:`synthesize_trace`
once with the same rng and arguments, so it reproduces the anonymous
generator *exactly* (same arrivals, lengths, adapters, request ids) with only
the tenant/class labels added — the differential suite pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.adapters.registry import AdapterRegistry
from repro.core.quotas import QueueStats
from repro.workload.request import Request
from repro.workload.trace import (
    SPLITWISE_PROFILE,
    Trace,
    TraceProfile,
    synthesize_trace,
)


@dataclass(frozen=True)
class SloClass:
    """One service class: deadline shape plus dispatch weight.

    Attributes:
        name: Class name carried on ``Request.slo_class``.
        deadline_scale: Multiplies the policy's base ``ttft_deadline`` (gold
            keeps the tight deadline; batch tolerates a long one).
        slowdown_target: Optional per-class relative-slowdown cap, used when
            the ``SloPolicy`` has an ``isolated_ttft`` estimator (overrides
            the policy-wide ``slowdown_target`` for this class).
        weight: Deficit-round-robin quantum of the class's tenants — the
            relative service share under contention.  Values below 1 are
            rounded up by the dispatcher so every lane drains each round.
    """

    name: str
    deadline_scale: float = 1.0
    slowdown_target: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_scale <= 0:
            raise ValueError(
                f"deadline_scale must be > 0, got {self.deadline_scale}")
        if self.slowdown_target is not None and self.slowdown_target <= 0:
            raise ValueError(
                f"slowdown_target must be > 0, got {self.slowdown_target}")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


#: Default three-class taxonomy: interactive gold traffic with the tight
#: deadline and the big dispatch share, standard traffic at twice the
#: deadline, throughput-oriented batch traffic at six times.
GOLD = SloClass("gold", deadline_scale=1.0, weight=4.0)
STANDARD = SloClass("standard", deadline_scale=2.0, weight=2.0)
BATCH = SloClass("batch", deadline_scale=6.0, weight=1.0)
DEFAULT_SLO_CLASSES: dict[str, SloClass] = {
    c.name: c for c in (GOLD, STANDARD, BATCH)
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its traffic share, service class, and diurnal phase."""

    tenant_id: int
    share: float
    slo_class: str = "standard"
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError(f"share must be > 0, got {self.share}")


@dataclass(frozen=True)
class TenantPopulation:
    """A fixed tenant roster that synthesizes per-tenant request streams."""

    tenants: tuple[TenantSpec, ...]
    classes: dict[str, SloClass] = field(
        default_factory=lambda: dict(DEFAULT_SLO_CLASSES))

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("population needs at least one tenant")
        seen = set()
        for spec in self.tenants:
            if spec.tenant_id in seen:
                raise ValueError(f"duplicate tenant_id {spec.tenant_id}")
            seen.add(spec.tenant_id)
            if spec.slo_class not in self.classes:
                raise ValueError(
                    f"tenant {spec.tenant_id} has unknown class "
                    f"{spec.slo_class!r}; known: {sorted(self.classes)}")

    @classmethod
    def build(
        cls,
        n_tenants: int,
        skew: float = 1.2,
        class_cycle: Sequence[str] = ("gold", "standard", "batch"),
        classes: Optional[dict[str, SloClass]] = None,
        phase_cycle: Optional[float] = None,
    ) -> "TenantPopulation":
        """Standard roster: Zipf(skew) shares, classes round-robin by size.

        Tenant 0 is the biggest tenant.  Classes are dealt round-robin down
        the size ranking so every class contains both big and small tenants.
        When ``phase_cycle`` is set (seconds — normally the trace's burst
        cycle), tenant bursts are staggered evenly across it; tenant 0 keeps
        phase 0 so a 1-tenant population stays identical to the anonymous
        generator.
        """
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if not class_cycle:
            raise ValueError("class_cycle must not be empty")
        class_map = dict(DEFAULT_SLO_CLASSES) if classes is None else classes
        # Same normalized-Zipf form as distributions.zipf_weights; spelled
        # out so skew=0 degrades to exactly-uniform shares.
        raw = np.arange(1, n_tenants + 1, dtype=float) ** (-skew)
        shares = raw / raw.sum()
        specs = tuple(
            TenantSpec(
                tenant_id=t,
                share=float(shares[t]),
                slo_class=class_cycle[t % len(class_cycle)],
                phase=(phase_cycle * t / n_tenants) if phase_cycle else 0.0,
            )
            for t in range(n_tenants)
        )
        return cls(tenants=specs, classes=class_map)

    def weight_of(self, tenant_id: int) -> float:
        for spec in self.tenants:
            if spec.tenant_id == tenant_id:
                return self.classes[spec.slo_class].weight
        raise KeyError(f"unknown tenant {tenant_id}")

    def shares(self) -> dict[int, float]:
        return {spec.tenant_id: spec.share for spec in self.tenants}

    def synthesize(
        self,
        rps: float,
        duration: float,
        rng: np.random.Generator,
        registry: Optional[AdapterRegistry] = None,
        profile: TraceProfile = SPLITWISE_PROFILE,
        **kwargs,
    ) -> Trace:
        """Generate the merged multi-tenant stream at aggregate rate ``rps``.

        Each tenant's sub-stream is synthesized independently (share x rps,
        the tenant's burst phase) from the single ``rng`` in roster order —
        deterministic for a fixed roster and seed — then merged by arrival
        time with request ids renumbered globally.  Extra ``kwargs`` pass
        through to :func:`synthesize_trace` (burst shape, adapter popularity
        ...); a per-tenant ``burst_phase`` in them is rejected since the
        roster owns the phases.
        """
        if "burst_phase" in kwargs:
            raise ValueError("burst_phase is set per tenant by the roster")
        total_share = sum(spec.share for spec in self.tenants)
        requests: list[Request] = []
        for spec in self.tenants:
            sub = synthesize_trace(
                profile, rps * spec.share / total_share, duration, rng,
                registry, burst_phase=spec.phase, **kwargs)
            for request in sub.requests:
                request.tenant_id = spec.tenant_id
                request.slo_class = spec.slo_class
            requests.extend(sub.requests)
        requests.sort(key=lambda r: r.arrival_time)
        for i, request in enumerate(requests):
            request.request_id = i
        return Trace(requests=requests, profile=profile, rps=rps,
                     duration=duration)

    def queue_stats(
        self,
        trace: Trace,
        expected_duration: float,
    ) -> dict[int, QueueStats]:
        """Per-tenant M/M/1 inputs measured from a labelled trace.

        Lifts ``core/quotas.py`` from adapter queues up to tenant lanes: each
        tenant lane's S is its largest request footprint (input + output
        tokens), lambda its measured arrival rate, D the supplied expected
        per-request service time.  Tenants with no requests in the trace get
        a minimal live lane (S from the profile mean, lambda 0).
        """
        if expected_duration <= 0:
            raise ValueError(
                f"expected_duration must be > 0, got {expected_duration}")
        horizon = max(trace.duration, 1e-9)
        footprints: dict[int, list[int]] = {
            spec.tenant_id: [] for spec in self.tenants}
        for request in trace.requests:
            if request.tenant_id in footprints:
                footprints[request.tenant_id].append(
                    request.input_tokens + request.output_tokens)
        fallback = trace.profile.mean_input_tokens + trace.profile.mean_output_tokens
        return {
            spec.tenant_id: QueueStats(
                max_request_tokens=float(
                    max(footprints[spec.tenant_id], default=fallback)),
                expected_duration=expected_duration,
                arrival_rate=len(footprints[spec.tenant_id]) / horizon,
            )
            for spec in self.tenants
        }


def inject_hot_tenant_storm(
    trace: Trace,
    population: TenantPopulation,
    tenant_id: int,
    storm_rps: float,
    start: float,
    storm_duration: float,
    rng: np.random.Generator,
    registry: Optional[AdapterRegistry] = None,
    **kwargs,
) -> Trace:
    """Overlay a hot-tenant storm onto an existing labelled trace.

    One tenant suddenly floods the fleet: an extra Poisson stream at
    ``storm_rps`` over ``[start, start + storm_duration)`` is stamped with
    the storm tenant's id and class and merged in (ids renumbered).  This is
    the fairness headline scenario — without quotas the storm's queue build-up
    is paid by every *other* tenant's deadline.
    """
    spec = next(
        (s for s in population.tenants if s.tenant_id == tenant_id), None)
    if spec is None:
        raise ValueError(f"unknown storm tenant {tenant_id}")
    if start < 0 or storm_duration <= 0:
        raise ValueError("storm window must be non-negative and non-empty")
    profile = trace.profile
    # Storm arrivals are a plain Poisson overlay: the *storm* is the burst.
    flat = TraceProfile(
        name=profile.name, bursty=False,
        mean_input_tokens=profile.mean_input_tokens,
        mean_output_tokens=profile.mean_output_tokens,
        input_sigma=profile.input_sigma, output_sigma=profile.output_sigma,
        max_input_tokens=profile.max_input_tokens,
        max_output_tokens=profile.max_output_tokens)
    storm = synthesize_trace(
        flat, storm_rps, storm_duration, rng, registry, **kwargs)
    for request in storm.requests:
        request.arrival_time += start
        request.tenant_id = spec.tenant_id
        request.slo_class = spec.slo_class
    merged = list(trace.requests) + storm.requests
    merged.sort(key=lambda r: r.arrival_time)
    for i, request in enumerate(merged):
        request.request_id = i
    return Trace(requests=merged, profile=profile, rps=trace.rps,
                 duration=max(trace.duration, start + storm_duration))
