"""The inference request and its lifecycle record.

A request carries its ground-truth sizes (the simulator knows the real output
length, like a trace replay does) plus the *predicted* output length that is
all the schedulers are allowed to look at, mirroring the paper's use of a
BERT proxy predictor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RequestState(enum.Enum):
    """Lifecycle of a request inside one engine."""

    CREATED = "created"
    QUEUED = "queued"
    LOADING = "loading"      # admitted, waiting for its adapter transfer
    PREFILL = "prefill"
    DECODE = "decode"
    FINISHED = "finished"


@dataclass
class Request:
    """One inference request.

    Attributes:
        request_id: Unique id within a trace.
        arrival_time: Simulated arrival timestamp (seconds).
        input_tokens: Prompt length (known on arrival).
        output_tokens: True number of generated tokens (>= 1; unknown to
            schedulers until completion).
        adapter_id: LoRA adapter used, or ``None`` for a base-model request.
        tenant_id: Owning tenant, or ``None`` when the workload has no
            tenant structure.  A region router keyed ``shard_key="tenant"``
            routes on it, pinning each tenant's traffic (and adapter
            residency) to one dispatcher shard.
        slo_class: Service-class name (e.g. ``"gold"``), or ``None`` for the
            anonymous single-class workload.  ``SloPolicy.classes`` maps it
            to a per-class deadline; ``TenantFairnessPolicy`` maps it to a
            dispatch weight.  Unrecognized or absent names fall back to the
            policy's global deadline, so class-labelled traces replay
            unchanged against class-blind policies.
        predicted_output_tokens: The proxy predictor's estimate, filled in at
            submission time.
    """

    request_id: int
    arrival_time: float
    input_tokens: int
    output_tokens: int
    adapter_id: Optional[int] = None
    tenant_id: Optional[int] = None
    slo_class: Optional[str] = None
    predicted_output_tokens: Optional[int] = None

    # -- engine-side mutable state -------------------------------------- #
    state: RequestState = RequestState.CREATED
    tokens_generated: int = 0
    prefill_done_tokens: int = 0          # chunked-prefill progress
    kv_reserved_bytes: int = 0
    wrs: Optional[float] = None           # weighted request size, once computed
    queue_index: Optional[int] = None     # MLQ lane, once classified
    token_cost: int = 0                   # MLQ quota tokens charged
    squash_count: int = 0                 # times squashed by the bypass logic
    dispatch_queue_delay: float = 0.0     # seconds held in the cluster queue
    shed: bool = False                    # rejected by cluster SLO admission
    deprioritized: bool = False           # moved to the cluster's low lane
    lost: bool = False                    # stranded by a replica failure
    retry_count: int = 0                  # times migrated off a dead replica
    migrated_at: list = field(default_factory=list)  # migration timestamps

    # -- timeline stamps -------------------------------------------------#
    enqueue_time: Optional[float] = None
    admit_time: Optional[float] = None       # first admitted to a batch
    adapter_ready_time: Optional[float] = None
    prefill_start_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    token_times: list = field(default_factory=list)
    adapter_load_critical_path: float = 0.0  # seconds spent blocked on loading

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ValueError(f"input_tokens must be >= 1, got {self.input_tokens}")
        if self.output_tokens < 1:
            raise ValueError(f"output_tokens must be >= 1, got {self.output_tokens}")

    # -- derived metrics --------------------------------------------------#
    @property
    def uses_adapter(self) -> bool:
        return self.adapter_id is not None

    @property
    def context_tokens(self) -> int:
        """Current context length: prompt plus generated tokens."""
        return self.input_tokens + self.tokens_generated

    @property
    def remaining_prefill_tokens(self) -> int:
        return self.input_tokens - self.prefill_done_tokens

    @property
    def finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def ttft(self) -> float:
        """Time-to-first-token (arrival to first emitted token)."""
        if self.first_token_time is None:
            raise RuntimeError(f"request {self.request_id} has no first token yet")
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        if self.finish_time is None:
            raise RuntimeError(f"request {self.request_id} has not finished")
        return self.finish_time - self.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Seconds spent waiting in a queue before first admission."""
        if self.admit_time is None or self.enqueue_time is None:
            raise RuntimeError(f"request {self.request_id} was never admitted")
        return self.admit_time - self.enqueue_time

    @property
    def service_wait(self) -> float:
        """Seconds from arrival until the request is actually *served*
        (its prefill starts).  This is the paper's "time waiting in the
        queues": it includes both admission wait and the post-admission wait
        for adapter transfers and the per-iteration prefill budget."""
        if self.prefill_start_time is None or self.enqueue_time is None:
            raise RuntimeError(f"request {self.request_id} never started prefill")
        return self.prefill_start_time - self.enqueue_time

    def token_gaps(self) -> list[float]:
        """Inter-token gaps (the TBT samples), first token excluded."""
        times = self.token_times
        return [times[i] - times[i - 1] for i in range(1, len(times))]
