"""Sampling primitives: Zipf popularity and heavy-tailed lengths.

The paper assigns each request an adapter by sampling a *rank* (uniform or
power-law over the five ranks) and then an adapter within the rank by a
power law; request lengths in production traces are heavy-tailed (§3.3's
"most requests are short, a few are very long"), which we model with
truncated log-normals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf/power-law weights over ``n`` items: w_i ~ (i+1)^-alpha."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    ranksq = np.arange(1, n + 1, dtype=float) ** (-alpha)
    return ranksq / ranksq.sum()


def sample_categorical(
    rng: np.random.Generator,
    items: Sequence,
    weights: np.ndarray,
    size: int,
) -> list:
    """Draw ``size`` items with the given probability weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    idx = rng.choice(len(items), size=size, p=np.asarray(weights, dtype=float))
    return [items[i] for i in idx]


def sample_lognormal_lengths(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    max_len: int,
    size: int,
) -> np.ndarray:
    """Heavy-tailed token lengths with a given *mean* and log-space ``sigma``.

    The underlying normal's mu is solved from the target mean
    (``mean = exp(mu + sigma^2 / 2)``); samples are clipped to
    ``[1, max_len]``.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if max_len < 1:
        raise ValueError(f"max_len must be >= 1, got {max_len}")
    mu = np.log(mean) - sigma ** 2 / 2.0
    raw = rng.lognormal(mean=mu, sigma=sigma, size=size)
    return np.clip(np.rint(raw), 1, max_len).astype(int)


def poisson_arrival_times(
    rng: np.random.Generator,
    rate: float,
    duration: float,
) -> np.ndarray:
    """Arrival timestamps of a homogeneous Poisson process on [0, duration)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    # Draw slightly more inter-arrivals than expected, then trim.
    n_guess = int(rate * duration * 1.5) + 20
    times = np.cumsum(rng.exponential(1.0 / rate, size=n_guess))
    while times.size and times[-1] < duration:
        extra = np.cumsum(rng.exponential(1.0 / rate, size=n_guess)) + times[-1]
        times = np.concatenate([times, extra])
    return times[times < duration]


def bursty_arrival_times(
    rng: np.random.Generator,
    rate: float,
    duration: float,
    burst_factor: float = 3.0,
    burst_fraction: float = 0.1,
    cycle: float = 120.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Poisson arrivals modulated by periodic bursts.

    For a fraction ``burst_fraction`` of each ``cycle`` the instantaneous rate
    is multiplied by ``burst_factor``; the base rate is lowered so the mean
    rate stays ``rate``.  Production LLM traffic arrives in bursts (§3.1), and
    bursts are what exercise the cache-resizing and HoL-blocking machinery.

    ``phase`` shifts the burst windows within the cycle (seconds): a stream
    with ``phase=p`` bursts over ``[p, p + burst_fraction * cycle)`` mod the
    cycle.  Tenant populations stagger phases to model per-tenant diurnal
    cycles; ``phase=0.0`` is bit-identical to the historical behavior.
    """
    if burst_factor < 1.0:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0.0 <= burst_fraction < 1.0:
        raise ValueError(f"burst_fraction must be in [0, 1), got {burst_fraction}")
    mean_multiplier = burst_fraction * burst_factor + (1.0 - burst_fraction)
    base_rate = rate / mean_multiplier
    peak_rate = base_rate * burst_factor
    # Thinning of a Poisson process at the peak rate.
    candidates = poisson_arrival_times(rng, peak_rate, duration)
    keep = np.empty(candidates.size, dtype=bool)
    for i, t in enumerate(candidates):
        in_burst = ((t - phase) % cycle) < burst_fraction * cycle
        accept_p = 1.0 if in_burst else base_rate / peak_rate
        keep[i] = rng.random() < accept_p
    return candidates[keep]
