"""Workload model: requests, length/popularity distributions, trace synthesis."""

from repro.workload.request import Request, RequestState
from repro.workload.distributions import (
    zipf_weights,
    sample_categorical,
    sample_lognormal_lengths,
)
from repro.workload.io import (
    TraceStatistics,
    load_trace,
    save_trace,
    trace_statistics,
)
from repro.workload.tenants import (
    DEFAULT_SLO_CLASSES,
    SloClass,
    TenantPopulation,
    TenantSpec,
    inject_hot_tenant_storm,
)
from repro.workload.trace import (
    TraceProfile,
    Trace,
    SPLITWISE_PROFILE,
    WILDCHAT_PROFILE,
    LMSYS_PROFILE,
    TRACE_PROFILES,
    synthesize_trace,
    assign_adapters,
    scale_trace_to_memory,
)

__all__ = [
    "Request",
    "RequestState",
    "zipf_weights",
    "sample_categorical",
    "sample_lognormal_lengths",
    "TraceProfile",
    "Trace",
    "SPLITWISE_PROFILE",
    "WILDCHAT_PROFILE",
    "LMSYS_PROFILE",
    "TRACE_PROFILES",
    "synthesize_trace",
    "assign_adapters",
    "scale_trace_to_memory",
    "TraceStatistics",
    "load_trace",
    "save_trace",
    "trace_statistics",
    "SloClass",
    "TenantSpec",
    "TenantPopulation",
    "DEFAULT_SLO_CLASSES",
    "inject_hot_tenant_storm",
]
