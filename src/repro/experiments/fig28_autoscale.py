"""Autoscaling on a bursty trace: elastic fleet vs fixed fleets (fig28).

Beyond the paper's fixed-fleet experiments: production LLM traffic is bursty
and diurnal, so the replica count is a *controlled variable*.  This figure
serves one flash-crowd trace (strong periodic bursts around a moderate base
rate) three ways, all under the same shed-mode SLO admission policy:

* ``static-min`` — a fleet sized for the base rate.  Every burst blows past
  its knee: the SLO policy sheds heavily and attainment collapses.
* ``static-peak`` — a fleet sized for the bursts.  Attainment holds, but
  the extra replicas idle between bursts and the bill (replica-seconds) is
  paid around the clock.
* ``autoscaled`` — starts at the min fleet; the
  :class:`~repro.serving.autoscaler.Autoscaler` scales out on sustained
  shed-rate/queue-wait pressure (paying a provisioning cold start before a
  newcomer joins) and scales back in on sustained idleness.

The headline: the autoscaled fleet recovers (most of) the peak fleet's SLO
attainment at strictly fewer replica-seconds — goodput *per replica-second*
beats both static fleets.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    trace_slo,
)
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def run(
    rps: float = 24.0,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    preset: str = "chameleon",
    policy: str = "least_loaded",
    min_replicas: int = 2,
    max_replicas: int = 6,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.2,
    burst_cycle: float = 100.0,
    tick_interval: float = 1.0,
    provision_delay: float = 5.0,
    cooldown: float = 4.0,
    scale_out_step: int = 2,
    idle_sustain_ticks: int = 10,
    max_batch_size: int = 24,
    deadline: float = None,
) -> ExperimentResult:
    registry = standard_registry()
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=rps, duration=duration,
        rng=RngStreams(seed).get("trace"), registry=registry,
        burst_factor=burst_factor, burst_fraction=burst_fraction,
        burst_cycle=burst_cycle)
    if deadline is None:
        deadline = trace_slo(trace, registry)  # the paper's 5x mean isolated
    engine_config = EngineConfig(max_batch_size=max_batch_size)

    def build(fleet: str) -> MultiReplicaSystem:
        autoscale = None
        n_replicas = min_replicas
        if fleet == "static-peak":
            n_replicas = max_replicas
        elif fleet == "autoscaled":
            autoscale = AutoscaleConfig(
                min_replicas=min_replicas, max_replicas=max_replicas,
                tick_interval=tick_interval, provision_delay=provision_delay,
                cooldown=cooldown, sustain_ticks=1,
                idle_sustain_ticks=idle_sustain_ticks,
                scale_out_step=scale_out_step,
                queue_wait_threshold=deadline / 2,
            )
        return MultiReplicaSystem.build(
            preset, n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, engine_config=engine_config,
            slo_policy=SloPolicy(ttft_deadline=deadline, mode="shed"),
            autoscale=autoscale,
        )

    rows = []
    for fleet in ("static-min", "static-peak", "autoscaled"):
        cluster = build(fleet)
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup, duration=duration)
        extra = summary.extra
        # Replica-seconds are the bill: provisioning start to retirement,
        # summed over every replica ever built (same meter for all fleets).
        replica_seconds = cluster.cluster.replica_seconds(cluster.sim.now)
        attained = sum(
            1 for r in cluster.all_requests()
            if r.arrival_time >= warmup and r.finished
            and r.first_token_time is not None and r.ttft <= deadline)
        scaler = cluster.autoscaler
        rows.append(Row(
            fleet=fleet,
            replicas=(f"{min_replicas}->{scaler.peak_fleet}" if scaler
                      else str(len(cluster.replicas))),
            completed=summary.n_requests,
            shed_rate=extra["shed_rate"],
            slo_attainment=extra["cluster_slo_attainment"],
            goodput_rps=extra["goodput_rps"],
            p99_ttft_s=summary.p99_ttft,
            replica_seconds=replica_seconds,
            goodput_per_rs=(attained / replica_seconds
                            if replica_seconds > 0 else 0.0),
            scale_out=scaler.scale_out_count if scaler else 0,
            scale_in=scaler.scale_in_count if scaler else 0,
        ))
    return ExperimentResult(
        experiment="fig28",
        description=f"autoscaling a bursty trace ({rps} RPS mean, "
                    f"{burst_factor}x bursts): fixed fleets vs elastic "
                    f"[{min_replicas}, {max_replicas}]",
        rows=rows,
        params={"rps": rps, "duration": duration, "deadline": deadline,
                "min_replicas": min_replicas, "max_replicas": max_replicas,
                "burst_factor": burst_factor, "burst_fraction": burst_fraction,
                "burst_cycle": burst_cycle, "provision_delay": provision_delay,
                "max_batch_size": max_batch_size, "policy": policy,
                "preset": preset},
        notes=["replica-seconds meter every replica from provisioning start "
               "to retirement — the fleet bill, not the request count",
               "the autoscaled fleet should recover (most of) static-peak "
               "SLO attainment at strictly fewer replica-seconds"],
    )
