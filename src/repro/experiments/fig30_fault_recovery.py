"""Fault recovery on a bursty trace: self-healing + migration vs none (fig30).

The elastic control plane (fig28/fig29) answers latency and goodput
questions but silently assumes every replica is immortal.  This figure
injects one surgical failure — a replica crash in the middle of a traffic
burst, the worst moment — and serves the same flash-crowd trace four ways,
all under shed-mode SLO admission:

* ``no-fault`` — a static fleet, no crash: the reference attainment.
* ``no-recovery`` — the same fleet, crash at ``crash_time``, nothing done
  about it: the dead replica's queued and in-flight work is stranded
  (``lost``) and the fleet serves the rest of the trace a replica short.
* ``migration`` — the crash evacuates the dead replica's recoverable work
  back through the normal admission path (client-retry model), but no
  replacement is provisioned: losses go to ~0, yet the capacity hole still
  drags SLO attainment through every later burst.
* ``self-heal+migration`` — migration plus an autoscaler in self-healing
  mode: the tick after the crash provisions a replacement *outside* the
  scale-out cooldown, so the fleet is whole again one cold start later.

The headline: self-healing + migration holds SLO attainment at (or above)
the no-fault reference with ~zero lost requests, while the no-recovery
baseline both loses requests outright and degrades attainment for the rest
of the run.  ``recovery_s`` reports the crash-to-restored-capacity time —
detection (one tick) plus the provisioning cold start.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    trace_slo,
)
from repro.faults import FaultEvent, FaultSchedule
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def recovery_time(cluster) -> float:
    """Seconds from the (first) crash until the active set is back to the
    size it had *immediately before* that crash, derived from the cluster
    lifecycle log.  The baseline is read off the log rather than the
    configured fleet size so demand-driven scale-out before the crash
    cannot corrupt the metric.  NaN when the fleet never recovers (or
    never crashed)."""
    states: dict = {}
    crash_at = None
    pre_crash = None
    for when, index, state in cluster.lifecycle_log:
        before = sum(1 for s in states.values() if s == "active")
        states[index] = state
        active = sum(1 for s in states.values() if s == "active")
        if state == "failed" and crash_at is None:
            crash_at = when
            pre_crash = before
        elif crash_at is not None and active >= pre_crash:
            return when - crash_at
    return float("nan")


def run(
    rps: float = 24.0,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    preset: str = "chameleon",
    policy: str = "least_loaded",
    n_replicas: int = 6,
    max_replicas: int = 8,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.2,
    burst_cycle: float = 100.0,
    crash_time: float = 110.0,
    crash_replica: int = 1,
    tick_interval: float = 1.0,
    provision_delay: float = 5.0,
    cooldown: float = 4.0,
    max_batch_size: int = 24,
    deadline: float = None,
) -> ExperimentResult:
    registry = standard_registry()
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=rps, duration=duration,
        rng=RngStreams(seed).get("trace"), registry=registry,
        burst_factor=burst_factor, burst_fraction=burst_fraction,
        burst_cycle=burst_cycle)
    if deadline is None:
        deadline = trace_slo(trace, registry)  # the paper's 5x mean isolated
    engine_config = EngineConfig(max_batch_size=max_batch_size)
    crash = FaultSchedule([
        FaultEvent(time=crash_time, kind="crash", replica=crash_replica)])

    def build(variant: str) -> MultiReplicaSystem:
        autoscale = None
        fault_kwargs: dict = {}
        if variant != "no-fault":
            fault_kwargs = dict(
                fault_schedule=crash,
                fault_migrate=variant != "no-recovery")
        if variant == "self-heal+migration":
            # min_replicas pins the *intended* fleet; self-healing replaces
            # the crash loss outside the cooldown, and the reactive path
            # stays available for burst pressure on top.
            autoscale = AutoscaleConfig(
                min_replicas=n_replicas, max_replicas=max_replicas,
                tick_interval=tick_interval, provision_delay=provision_delay,
                cooldown=cooldown, sustain_ticks=1, idle_sustain_ticks=10,
                queue_wait_threshold=deadline / 2, self_heal=True)
        return MultiReplicaSystem.build(
            preset, n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, engine_config=engine_config,
            slo_policy=SloPolicy(ttft_deadline=deadline, mode="shed"),
            autoscale=autoscale, **fault_kwargs)

    rows = []
    for variant in ("no-fault", "no-recovery", "migration",
                    "self-heal+migration"):
        cluster = build(variant)
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup, duration=duration)
        extra = summary.extra
        faulted = cluster.fault_injector is not None
        rows.append(Row(
            variant=variant,
            completed=summary.n_requests,
            lost=extra["cluster_lost"] if faulted else 0,
            migrated=extra["cluster_migrations"] if faulted else 0,
            availability=extra["availability"] if faulted else 1.0,
            shed_rate=extra["shed_rate"],
            slo_attainment=extra["cluster_slo_attainment"],
            p99_ttft_s=summary.p99_ttft,
            recovery_s=(recovery_time(cluster.cluster)
                        if variant == "self-heal+migration"
                        else float("nan")),
            self_heal=(extra.get("self_heal_events", 0) if faulted else 0),
        ))
    return ExperimentResult(
        experiment="fig30",
        description=f"replica crash at t={crash_time:g}s (mid-burst) on a "
                    f"{rps} RPS / {burst_factor}x-burst trace: no recovery "
                    f"vs migration vs self-healing",
        rows=rows,
        params={"rps": rps, "duration": duration, "deadline": deadline,
                "n_replicas": n_replicas, "max_replicas": max_replicas,
                "burst_factor": burst_factor, "burst_fraction": burst_fraction,
                "burst_cycle": burst_cycle, "crash_time": crash_time,
                "crash_replica": crash_replica,
                "provision_delay": provision_delay,
                "max_batch_size": max_batch_size, "policy": policy,
                "preset": preset},
        notes=["lost counts requests stranded on the dead replica; "
               "migration replays them through normal admission (client-"
               "retry model), so its losses are ~0",
               "self-healing replaces the crashed replica outside the "
               "scale-out cooldown: recovery_s ~= one detection tick plus "
               "the provisioning cold start"],
    )
