"""Ablation: dispatch policies for data-parallel replicas (§4.4).

With DP, Chameleon replicates the adapter cache per engine and uses a
two-level scheduler.  The global dispatch policy interacts with the caches:
adapter-affinity routing concentrates each adapter's requests on one replica,
raising per-replica hit rates over cache-oblivious routing — but unbounded
affinity lets a hot adapter swamp one replica, which is what the bounded
variant's spill threshold prevents.  The sweep also covers the load-aware
policies (JSQ, power-of-two-choices, token-weighted JSQ); see the policy
table in :mod:`repro.serving.replica`.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.serving.replica import MultiReplicaSystem


def run(
    rps: float = 30.0,
    duration: float = 180.0,
    n_replicas: int = 4,
    warmup: float = 20.0,
    seed: int = 1,
    policies=("round_robin", "least_loaded", "p2c", "token_weighted",
              "adapter_affinity", "bounded_affinity"),
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    rows = []
    for policy in policies:
        cluster = MultiReplicaSystem.build(
            "chameleon", n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed,
        )
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup)
        rows.append(Row(
            policy=policy,
            p99_ttft_s=summary.p99_ttft,
            p50_ttft_s=summary.p50_ttft,
            mean_hit_rate=cluster.mean_hit_rate(),
            agg_hit_rate=cluster.aggregate_hit_rate(),
            load_imbalance=cluster.load_imbalance(),  # max/mean, as in fig26
            p99_qdelay_s=summary.extra["p99_dispatch_queue_delay"],
        ))
    return ExperimentResult(
        experiment="abl_dp_dispatch",
        description=f"DP dispatch policies across {n_replicas} replicas "
                    f"@ {rps} RPS total",
        rows=rows,
        params={"rps": rps, "duration": duration, "n_replicas": n_replicas},
        notes=["adapter-affinity exploits the per-replica caches (§4.4: the "
               "cache is replicated across DP engines)",
               "agg_hit_rate weights replicas by lookup volume; "
               "bounded_affinity trades a little affinity for balance"],
    )
