"""Figure 15: P99 TTFT over time for different scheduling policies at 9 RPS.

Windowed P99 series for S-LoRA (FIFO), S-LoRA+SJF, ChameleonNoCache (our
scheduler alone) and full Chameleon.  The paper: FIFO and SJF tails blow up
over time from queueing; the Chameleon scheduler keeps them flat; adding the
cache lowers them further.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)
from repro.metrics.summary import windowed_p99_ttft

SYSTEMS = ("slora", "slora_sjf", "chameleon_nocache", "chameleon")


def run(
    rps: float = 9.0,
    duration: float = 400.0,
    window: float = 40.0,
    seed: int = 1,
    systems=SYSTEMS,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    series = {}
    for preset in systems:
        system, _ = run_preset(preset, trace, registry)
        series[preset] = dict(windowed_p99_ttft(
            system.engine.all_requests, window=window, horizon=duration))
    times = sorted({t for s in series.values() for t in s})
    rows = [
        Row(time_s=t, **{f"{preset}_p99_s": series[preset].get(t) for preset in systems})
        for t in times
    ]
    return ExperimentResult(
        experiment="fig15",
        description=f"P99 TTFT over time at {rps} RPS by scheduling policy",
        rows=rows,
        params={"rps": rps, "duration": duration, "window": window},
        notes=["paper: FIFO tail = short requests blocked by long ones; "
               "SJF tail = long requests starved; Chameleon removes both"],
    )
