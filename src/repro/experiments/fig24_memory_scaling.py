"""Figure 24: scalability with GPU memory size (24/48/80 GB A100).

Normalized Chameleon-over-S-LoRA throughput for each (memory, model) pair
that fits.  The paper: the advantage *grows* with memory — more idle bytes
mean more adapter cache (1.4x/1.6x/1.9x for Llama-7B at 24/48/80 GB).
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry
from repro.experiments.common import ExperimentResult, Row, run_preset, standard_trace, trace_slo
from repro.hardware.gpu import A100_80GB, GB
from repro.llm.model import LLAMA_7B, LLAMA_13B, LLAMA_30B
from repro.metrics.summary import throughput_under_slo

MEMORY_SIZES_GB = (24, 48, 80)
MODELS = ((LLAMA_7B, 500), (LLAMA_13B, 100), (LLAMA_30B, 10))


def _fits(model, memory_bytes) -> bool:
    # Weights + 1 GB activations + at least ~4 GB of KV headroom.
    return model.weight_bytes + 5 * GB < memory_bytes


def run(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    loads=(4.0, 7.0, 10.0, 13.0),
) -> ExperimentResult:
    rows = []
    for memory_gb in MEMORY_SIZES_GB:
        memory = memory_gb * GB
        for model, n_adapters in MODELS:
            if not _fits(model, memory):
                continue
            registry = AdapterRegistry.build(model, n_adapters)
            slo = None
            p99 = {"slora": [], "chameleon": []}
            for rps in loads:
                trace = standard_trace(rps, duration, registry, seed=seed)
                if slo is None:
                    slo = trace_slo(trace, registry, model=model, gpu=A100_80GB)
                for preset in ("slora", "chameleon"):
                    _, summary = run_preset(
                        preset, trace, registry, warmup=warmup, slo=slo,
                        model=model, gpu=A100_80GB, gpu_memory_bytes=memory)
                    p99[preset].append(summary.p99_ttft)
            tp = {
                preset: throughput_under_slo(list(loads), p99[preset], slo)
                for preset in ("slora", "chameleon")
            }
            rows.append(Row(
                memory_gb=memory_gb,
                model=model.name,
                slora_throughput_rps=tp["slora"],
                chameleon_throughput_rps=tp["chameleon"],
                throughput_ratio=(tp["chameleon"] / tp["slora"]
                                  if tp["slora"] else float("nan")),
            ))
    return ExperimentResult(
        experiment="fig24",
        description="Normalized throughput vs GPU memory size",
        rows=rows,
        params={"duration": duration, "loads": list(loads)},
        notes=["paper: Llama-7B ratio grows 1.4x -> 1.6x -> 1.9x with "
               "24/48/80 GB (more idle memory = more cache)"],
    )
