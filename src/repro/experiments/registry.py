"""Experiment registry: id -> run entry point."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    abl_capability_estimator,
    abl_dp_dispatch,
    abl_eviction_weights,
    abl_fault_chaos,
    abl_gdsf,
    abl_load_stall,
    abl_slo_admission,
    abl_wrs_degree,
    fig02_rank_breakdown,
    fig03_input_sweep,
    fig04_pcie_bw,
    fig05_tp_loading,
    fig06_memory_timeline,
    fig07_serial_cdf,
    fig08_slowdown_cdf,
    fig11_p99_ttft_load,
    fig12_tbt,
    fig13_p50_ttft,
    fig14_load_latency_cdf,
    fig15_ttft_timeline,
    fig16_queue_delay,
    fig17_cache_policies,
    fig18_prefetch,
    fig19_predictor_accuracy,
    fig20_adapter_sensitivity,
    fig21_traces,
    fig22_static_vs_dynamic,
    fig23_model_scaling,
    fig24_memory_scaling,
    fig25_tensor_parallel,
    fig26_dp_scaling,
    fig27_hetero_cluster,
    fig28_autoscale,
    fig29_predictive_autoscale,
    fig30_fault_recovery,
    fig31_region_scaling,
    fig32_tenant_fairness,
)

EXPERIMENTS: dict[str, Callable] = {
    "fig02": fig02_rank_breakdown.run,
    "fig03": fig03_input_sweep.run,
    "fig04": fig04_pcie_bw.run,
    "fig05": fig05_tp_loading.run,
    "fig06": fig06_memory_timeline.run,
    "fig07": fig07_serial_cdf.run,
    "fig08": fig08_slowdown_cdf.run,
    "fig11": fig11_p99_ttft_load.run,
    "fig12": fig12_tbt.run,
    "fig13": fig13_p50_ttft.run,
    "fig14": fig14_load_latency_cdf.run,
    "fig15": fig15_ttft_timeline.run,
    "fig16": fig16_queue_delay.run,
    "fig17": fig17_cache_policies.run,
    "fig18": fig18_prefetch.run,
    "fig19": fig19_predictor_accuracy.run,
    "fig20": fig20_adapter_sensitivity.run,
    "fig21": fig21_traces.run,
    "fig22": fig22_static_vs_dynamic.run,
    "fig23": fig23_model_scaling.run,
    "fig24": fig24_memory_scaling.run,
    "fig25": fig25_tensor_parallel.run,
    "fig26": fig26_dp_scaling.run,
    "fig27": fig27_hetero_cluster.run,
    "fig28_autoscale": fig28_autoscale.run,
    "fig29_predictive_autoscale": fig29_predictive_autoscale.run,
    "fig30_fault_recovery": fig30_fault_recovery.run,
    "fig31_region_scaling": fig31_region_scaling.run,
    "fig32_tenant_fairness": fig32_tenant_fairness.run,
    # Ablations of design choices (DESIGN.md) and of our modeling assumptions.
    "abl_capability_estimator": abl_capability_estimator.run,
    "abl_fault_chaos": abl_fault_chaos.run,
    "abl_wrs_degree": abl_wrs_degree.run,
    "abl_eviction_weights": abl_eviction_weights.run,
    "abl_gdsf": abl_gdsf.run,
    "abl_load_stall": abl_load_stall.run,
    "abl_dp_dispatch": abl_dp_dispatch.run,
    "abl_slo_admission": abl_slo_admission.run,
}


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Callable:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {list_experiments()}"
        ) from None
