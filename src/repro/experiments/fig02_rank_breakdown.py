"""Figure 2: TTFT breakdown vs adapter rank on an unloaded system.

One medium-size request on an idle A40 + Llama-7B; TTFT decomposed into base
execution, adapter execution, and adapter loading.  The paper reports
74/78/88/107/144 ms for ranks 8..128 with loading at 17.5% of TTFT for rank
128 — the cost model is calibrated to exactly this experiment.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Row
from repro.hardware.gpu import A40_48GB
from repro.hardware.pcie import PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B

PAPER_TTFT_MS = {8: 74.0, 16: 78.0, 32: 88.0, 64: 107.0, 128: 144.0}


def run(input_tokens: int = 512, ranks=(8, 16, 32, 64, 128)) -> ExperimentResult:
    cost_model = CostModel(LLAMA_7B, A40_48GB)
    pcie = PcieSpec()
    rows = []
    for rank in ranks:
        base = cost_model.base_prefill_time(input_tokens)
        adapter_exec = cost_model.lora_prefill_time(input_tokens, rank)
        load = pcie.setup_latency + LLAMA_7B.adapter_bytes(rank) / pcie.bandwidth_bytes
        total = base + adapter_exec + load
        rows.append(Row(
            rank=rank,
            base_exec_ms=base * 1e3,
            adapter_exec_ms=adapter_exec * 1e3,
            adapter_load_ms=load * 1e3,
            ttft_ms=total * 1e3,
            load_share=load / total,
            paper_ttft_ms=PAPER_TTFT_MS.get(rank),
        ))
    return ExperimentResult(
        experiment="fig02",
        description="TTFT breakdown vs adapter rank (unloaded A40, Llama-7B, "
                    f"{input_tokens}-token input)",
        rows=rows,
        params={"input_tokens": input_tokens, "ranks": list(ranks)},
        notes=["calibration target: paper Figure 2 TTFTs within ~3%"],
    )
