"""Shared experiment infrastructure: traces, runs, SLOs, result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.adapters.registry import AdapterRegistry
from repro.hardware.gpu import A40_48GB, GpuSpec
from repro.hardware.pcie import PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B, ModelSpec
from repro.metrics.summary import RunSummary, compute_slo
from repro.sim.rng import RngStreams
from repro.systems import System, build_system
from repro.workload.trace import SPLITWISE_PROFILE, Trace, TraceProfile, synthesize_trace

Row = dict


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure plus run metadata."""

    experiment: str
    description: str
    rows: list[Row]
    params: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_table(self) -> str:
        """Render the rows as an aligned text table.

        Rows may be heterogeneous (e.g. two panels of one figure); the
        columns are the union in first-appearance order and missing cells
        render empty.
        """
        if not self.rows:
            return f"[{self.experiment}] (no rows)"
        columns: list = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        formatted = [[_fmt(row.get(c)) for c in columns] for row in self.rows]
        widths = [
            max(len(col), *(len(line[i]) for line in formatted))
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
        lines = [f"[{self.experiment}] {self.description}", header,
                 "  ".join("-" * w for w in widths)]
        for line in formatted:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# --------------------------------------------------------------------- #
# Standard workload / system construction
# --------------------------------------------------------------------- #
DEFAULT_N_ADAPTERS = 100


def standard_registry(
    model: ModelSpec = LLAMA_7B,
    n_adapters: int = DEFAULT_N_ADAPTERS,
    ranks=None,
) -> AdapterRegistry:
    if ranks is None:
        return AdapterRegistry.build(model, n_adapters)
    return AdapterRegistry.build(model, n_adapters, ranks=ranks)


def standard_trace(
    rps: float,
    duration: float,
    registry: Optional[AdapterRegistry],
    seed: int = 1,
    profile: TraceProfile = SPLITWISE_PROFILE,
    rank_popularity: str = "uniform",
    adapter_popularity: str = "powerlaw",
) -> Trace:
    """The paper's default workload (§5.1)."""
    rng = RngStreams(seed).get("trace")
    return synthesize_trace(
        profile, rps=rps, duration=duration, rng=rng, registry=registry,
        rank_popularity=rank_popularity, adapter_popularity=adapter_popularity,
    )


def trace_slo(
    trace: Trace,
    registry: Optional[AdapterRegistry],
    model: ModelSpec = LLAMA_7B,
    gpu: GpuSpec = A40_48GB,
    multiplier: float = 5.0,
    pcie: PcieSpec = PcieSpec(),
) -> float:
    """The paper's SLO: 5x the mean isolated execution time (§5.1)."""
    cost_model = CostModel(model, gpu)

    def rank_of(request):
        if request.adapter_id is None or registry is None:
            return None
        return registry.get(request.adapter_id).rank

    def load_time_of(request):
        if request.adapter_id is None or registry is None:
            return 0.0
        size = registry.get(request.adapter_id).size_bytes
        return pcie.setup_latency + size / pcie.bandwidth_bytes

    return compute_slo(trace.requests, cost_model, rank_of, load_time_of,
                       multiplier=multiplier)


def run_preset(
    preset: str,
    trace: Trace,
    registry: AdapterRegistry,
    warmup: float = 0.0,
    slo: Optional[float] = None,
    **build_kwargs,
) -> tuple[System, RunSummary]:
    """Build a system, replay the trace against it, summarize."""
    system = build_system(preset, registry=registry,
                          slo=slo if slo is not None else 5.0, **build_kwargs)
    system.run_trace(trace.fresh())
    summary = system.summary(warmup=warmup, slo_ttft=slo)
    return system, summary


def sweep_loads(
    presets: Sequence[str],
    loads: Sequence[float],
    duration: float,
    registry: AdapterRegistry,
    warmup: float,
    seed: int = 1,
    slo: Optional[float] = None,
    **build_kwargs,
) -> list[Row]:
    """One row per (load, preset) with the standard latency summary."""
    rows: list[Row] = []
    for rps in loads:
        trace = standard_trace(rps, duration, registry, seed=seed)
        row_slo = slo if slo is not None else trace_slo(trace, registry)
        for preset in presets:
            _, summary = run_preset(preset, trace, registry, warmup=warmup,
                                    slo=row_slo, **build_kwargs)
            rows.append(Row(
                rps=rps, preset=preset,
                p50_ttft_s=summary.p50_ttft,
                p99_ttft_s=summary.p99_ttft,
                p99_tbt_s=summary.p99_tbt,
                slo_s=row_slo,
                meets_slo=bool(summary.p99_ttft <= row_slo),
            ))
    return rows
