"""Figure 11: P99 TTFT vs load for S-LoRA, ChNoCache, ChNoSched, Chameleon.

The headline experiment: the load sweep whose SLO crossings define each
system's throughput.  The paper reports Chameleon sustaining ~1.5x S-LoRA's
load (12.9 vs 8.6 RPS on their testbed) with 80.7% lower P99 TTFT at 9 RPS,
and the ablations ordering ChNoCache (~1.05x) < ChNoSched (~1.2x) < full.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.metrics.summary import throughput_under_slo

SYSTEMS = ("slora", "chameleon_nocache", "chameleon_nosched", "chameleon")


def run(
    loads=(5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0),
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    n_seeds: int = 2,
    systems=SYSTEMS,
) -> ExperimentResult:
    """``n_seeds`` traces are averaged per load point to smooth the curves
    (the paper averages over a 2000 s production trace; our shorter synthetic
    traces need replication to tame burst-alignment noise)."""
    registry = standard_registry()
    per_system: dict[str, list[tuple[float, float]]] = {s: [] for s in systems}
    slo = None
    rows = []
    for rps in loads:
        samples: dict[str, list[float]] = {s: [] for s in systems}
        for k in range(n_seeds):
            trace = standard_trace(rps, duration, registry, seed=seed + k)
            if slo is None:
                slo = trace_slo(trace, registry)
            for preset in systems:
                _, summary = run_preset(preset, trace, registry,
                                        warmup=warmup, slo=slo)
                samples[preset].append(summary.p99_ttft)
        row = Row(rps=rps, slo_s=slo)
        for preset in systems:
            mean_p99 = sum(samples[preset]) / len(samples[preset])
            row[f"{preset}_p99_s"] = mean_p99
            per_system[preset].append((rps, mean_p99))
        rows.append(row)

    notes = []
    throughputs = {}
    for preset in systems:
        pts = per_system[preset]
        throughput = throughput_under_slo([p[0] for p in pts], [p[1] for p in pts], slo)
        throughputs[preset] = throughput
        notes.append(f"throughput under SLO ({preset}): {throughput:.2f} RPS")
    if throughputs.get("slora"):
        ratio = throughputs.get("chameleon", 0.0) / throughputs["slora"]
        notes.append(f"Chameleon/S-LoRA throughput ratio: {ratio:.2f}x (paper: 1.5x)")
    return ExperimentResult(
        experiment="fig11",
        description="P99 TTFT vs load; SLO crossings give throughput",
        rows=rows,
        params={"loads": list(loads), "duration": duration, "systems": list(systems)},
        notes=notes,
    )
