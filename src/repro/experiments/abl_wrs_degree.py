"""Ablation: the WRS polynomial degree (§4.3.1).

The paper: "using this polynomial of degree 2 improves Chameleon's
performance by up to 10% over using a polynomial of degree 1 that simply
combines the three factors linearly."  We run the full system with the
degree-2 WRS, the linear WRS, and the OutputOnly ablation across loads.
"""

from __future__ import annotations

from repro.core.mlq import MlqConfig
from repro.core.wrs import WrsParams
from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
    trace_slo,
)

MODES = ("chameleon", "linear", "output_only")


def run(
    loads=(9.0, 11.0, 12.0),
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    rows = []
    for rps in loads:
        trace = standard_trace(rps, duration, registry, seed=seed)
        slo = trace_slo(trace, registry)
        row = Row(rps=rps)
        for mode in MODES:
            config = MlqConfig(slo=slo, wrs_params=WrsParams(mode=mode))
            _, summary = run_preset("chameleon", trace, registry,
                                    warmup=warmup, slo=slo, mlq_config=config)
            row[f"{mode}_p99_s"] = summary.p99_ttft
        row["degree2_vs_linear"] = (
            row["linear_p99_s"] / row["chameleon_p99_s"]
            if row["chameleon_p99_s"] else float("nan"))
        rows.append(row)
    return ExperimentResult(
        experiment="abl_wrs_degree",
        description="WRS degree-2 polynomial vs linear vs output-only",
        rows=rows,
        params={"loads": list(loads), "duration": duration},
        notes=["paper §4.3.1: degree-2 improves performance by up to 10% "
               "over the linear combination"],
    )
