"""Region scaling: one sharded region vs N independent clusters.

Beyond the paper's figures: multi-tenant serving at region scale.  A
Zipf-skewed tenant population is tenant-hashed across D dispatcher shards,
so one shard inherits the heavy tenants — the static-partitioning failure
mode: the hot shard queues and sheds while its siblings idle.  Three
control planes over the *same* fleet and trace:

* ``independent`` — D isolated clusters (tenant-hashed, no cooperation):
  the N-independent-clusters baseline.
* ``spill`` — cross-shard load shedding only: an arrival finding its home
  shard full is admitted by the least-loaded sibling with headroom.
* ``region`` — spill plus work stealing: a shard that frees capacity
  pulls queued work from the most-backlogged sibling.

The headline is the hot-shard tail: p99 TTFT and shed rate under the SLO
admission policy.  Spill alone helps arrivals that *would* queue; stealing
also rescues work already queued when the burst landed, so the full region
should dominate both.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.serving.admission import SloPolicy
from repro.serving.region import RegionConfig, ServingRegion
from repro.sim.rng import RngStreams

#: (variant name, spill enabled, steal enabled).
VARIANTS = (
    ("independent", False, False),
    ("spill", True, False),
    ("steal", False, True),
    ("region", True, True),
)


def run(
    rps: float = 56.0,
    duration: float = 120.0,
    n_shards: int = 4,
    replicas_per_shard: int = 2,
    n_tenants: int = 16,
    tenant_skew: float = 1.2,
    policy: str = "least_loaded",
    preset: str = "chameleon",
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    trace.label_tenants(n_tenants, RngStreams(seed).get("tenants"),
                        skew=tenant_skew)
    deadline = trace_slo(trace, registry)
    rows = []
    for variant, spill, steal in VARIANTS:
        region = ServingRegion.build(
            preset, n_replicas=replicas_per_shard, dispatch_policy=policy,
            registry=registry, seed=seed,
            slo_policy=SloPolicy(ttft_deadline=deadline, mode="shed"),
            region=RegionConfig(n_shards=n_shards, shard_key="tenant",
                                spill=spill, steal=steal),
        )
        region.run_trace(trace.fresh())
        summary = region.summary(warmup=warmup, duration=duration)
        requests = [r for r in region.all_requests()
                    if r.arrival_time >= warmup]
        shed = sum(1 for r in requests if r.shed)
        rows.append(Row(
            variant=variant,
            p50_ttft_s=summary.p50_ttft,
            p99_ttft_s=summary.p99_ttft,
            shed_rate=shed / len(requests) if requests else float("nan"),
            completed_rps=summary.completed_rps,
            spills=summary.extra["cross_shard_spills"],
            steals=summary.extra["cross_shard_steals"],
            shard_imbalance=summary.extra["shard_imbalance"],
        ))
    return ExperimentResult(
        experiment="fig31",
        description=f"{n_shards}-shard region vs independent clusters, "
                    f"{preset!r} x {replicas_per_shard}/shard, "
                    f"Zipf({tenant_skew}) tenants @ {rps} RPS",
        rows=rows,
        params={"rps": rps, "duration": duration, "n_shards": n_shards,
                "replicas_per_shard": replicas_per_shard,
                "n_tenants": n_tenants, "tenant_skew": tenant_skew,
                "policy": policy, "preset": preset, "slo_s": deadline},
        notes=["same fleet and trace in every row; only the cross-shard "
               "cooperation changes — the gap to 'independent' is the cost "
               "of static partitioning under tenant skew"],
    )
