"""Per-figure reproduction harness.

Every module ``figXX_*`` reproduces one figure of the paper's evaluation and
exposes ``run(**params) -> ExperimentResult``.  The registry maps experiment
ids (``fig02`` ... ``fig25``) to those entry points; ``python -m repro.cli``
runs them from the command line and ``benchmarks/`` wraps them under
pytest-benchmark.
"""

from repro.experiments.common import ExperimentResult, Row
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "ExperimentResult",
    "Row",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
