"""Figure 17: normalized P99 TTFT per adapter rank for cache policies.

S-LoRA (no cache) vs the Chameleon cache under LRU, FairShare (equal
weights), and the tuned compound score, at medium load.  The paper: every
caching variant beats S-LoRA (-18/-22/-26% total); the tuned policy wins
most for the largest ranks (cost-awareness retains expensive adapters).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)

SYSTEMS = {
    "S-LoRA": "slora",
    "Ch-LRU": "chameleon_lru",
    "Ch-FairShare": "chameleon_fairshare",
    "Chameleon": "chameleon",
}


def run(
    rps: float = 8.0,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    systems=None,
    n_adapters: int = 500,
) -> ExperimentResult:
    # A large pool (500 adapters ~ 50 GB of weights vs ~30 GB of idle GPU
    # memory) keeps the cache under genuine pressure so the eviction policy
    # is actually exercised, as on the paper's memory-constrained testbed.
    systems = systems or SYSTEMS
    registry = standard_registry(n_adapters=n_adapters)
    trace = standard_trace(rps, duration, registry, seed=seed)
    ranks = registry.ranks
    p99 = {}
    for name, preset in systems.items():
        system, summary = run_preset(preset, trace, registry, warmup=warmup)
        per_rank = {}
        for rank in ranks:
            ttfts = [
                r.ttft for r in system.engine.all_requests
                if r.finished and r.arrival_time >= warmup
                and system.engine.request_rank(r) == rank
            ]
            per_rank[rank] = float(np.percentile(ttfts, 99)) if ttfts else float("nan")
        per_rank["total"] = summary.p99_ttft
        p99[name] = per_rank

    baseline = p99.get("S-LoRA") or p99[next(iter(p99))]
    rows = []
    for rank in list(ranks) + ["total"]:
        row = Row(rank=rank)
        for name in systems:
            row[f"{name}_norm_p99"] = p99[name][rank] / baseline[rank]
        rows.append(row)
    total = rows[-1]
    notes = [
        f"total P99 reduction vs S-LoRA: "
        + ", ".join(f"{name} {100 * (1 - total[f'{name}_norm_p99']):.0f}%"
                    for name in systems if name != "S-LoRA"),
        "paper: LRU -18%, FairShare -22%, Chameleon -26%",
    ]
    return ExperimentResult(
        experiment="fig17",
        description=f"Normalized P99 TTFT per rank, cache policies @ {rps} RPS",
        rows=rows,
        params={"rps": rps, "duration": duration},
        notes=notes,
    )
