"""Figure 25: multi-GPU (tensor parallelism) experiments.

Llama-7B sharded over 1/2/4 A100s; adapters (and the Chameleon cache) are
sharded alongside.  Normalized P99 TTFT of Chameleon over S-LoRA per TP
degree and load level.  The paper: the reduction *widens* with TP because
sharded adapter loads (per-shard transfer + sync) hit S-LoRA harder —
up to -95.8% at TP4/high load.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)
from repro.hardware.gpu import A100_80GB

LOAD_POINTS = {"low": 8.0, "medium": 12.0, "high": 16.0}


def run(
    tp_degrees=(1, 2, 4),
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    loads=None,
) -> ExperimentResult:
    loads = loads or LOAD_POINTS
    registry = standard_registry(n_adapters=100)
    rows = []
    for tp in tp_degrees:
        for load_name, rps in loads.items():
            trace = standard_trace(rps, duration, registry, seed=seed)
            _, slora = run_preset("slora", trace, registry, warmup=warmup,
                                  gpu=A100_80GB, tp_degree=tp)
            _, cham = run_preset("chameleon", trace, registry, warmup=warmup,
                                 gpu=A100_80GB, tp_degree=tp)
            rows.append(Row(
                tp=tp, load=load_name, rps=rps,
                slora_p99_s=slora.p99_ttft,
                chameleon_p99_s=cham.p99_ttft,
                norm_p99=(cham.p99_ttft / slora.p99_ttft
                          if slora.p99_ttft else float("nan")),
            ))
    return ExperimentResult(
        experiment="fig25",
        description="Chameleon vs S-LoRA P99 TTFT under tensor parallelism",
        rows=rows,
        params={"tp_degrees": list(tp_degrees), "duration": duration,
                "loads": dict(loads)},
        notes=["paper: the P99 reduction widens with TP degree "
               "(up to -95.8% at TP4, high load)"],
    )
