"""Figure 6: GPU memory usage over time under the production trace.

Replays a memory-scaled Splitwise-like trace and samples per-category GPU
memory.  The paper's observation: most of the time there is abundant idle
memory above BaseLLM+KVCache, but it collapses during load spikes — hence
the need for dynamic cache sizing.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.hardware.gpu import GB
from repro.serving.engine import EngineConfig
from repro.systems import build_system


def run(
    rps: float = 9.0,
    duration: float = 300.0,
    sample_interval: float = 2.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    config = EngineConfig(memory_telemetry_interval=sample_interval)
    system = build_system("chameleon", registry=registry, engine_config=config)
    system.engine.run_trace(trace.fresh(), horizon=duration)
    rows = []
    for sample in system.gpu.samples:
        base = sample.usage.get("weights", 0) + sample.usage.get("activations", 0)
        kv = sample.usage.get("kv", 0)
        adapters = sample.usage.get("adapter", 0) + sample.usage.get("adapter_cache", 0)
        rows.append(Row(
            time_s=sample.time,
            base_llm_gb=base / GB,
            base_plus_kv_gb=(base + kv) / GB,
            total_used_gb=(base + kv + adapters) / GB,
            idle_gb=(system.gpu.capacity - base - kv - adapters) / GB,
            capacity_gb=system.gpu.capacity / GB,
        ))
    idle = [r["idle_gb"] for r in rows] or [0.0]
    return ExperimentResult(
        experiment="fig06",
        description="GPU memory usage over time (Splitwise-like trace)",
        rows=rows,
        params={"rps": rps, "duration": duration,
                "sample_interval": sample_interval},
        notes=[f"idle memory: min {min(idle):.1f} GB, "
               f"median {sorted(idle)[len(idle) // 2]:.1f} GB — fluctuation "
               "motivates dynamic cache sizing"],
    )
