"""Figure 19: sensitivity to the output-length predictor's accuracy.

WRS modes OutputOnly vs Chameleon at predictor accuracies 100/80/60%.
The paper: the full WRS (input + output + adapter) is robust — 80% accuracy
matches 100%; OutputOnly degrades visibly, especially during load bursts.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)
from repro.metrics.summary import windowed_p99_ttft

MODES = {"OutputOnly": "chameleon_outputonly", "Chameleon": "chameleon"}


def run(
    rps: float = 9.0,
    duration: float = 300.0,
    accuracies=(1.0, 0.8, 0.6),
    warmup: float = 20.0,
    window: float = 50.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    rows = []
    for mode_name, preset in MODES.items():
        for accuracy in accuracies:
            system, summary = run_preset(
                preset, trace, registry, warmup=warmup,
                predictor_accuracy=accuracy,
            )
            series = windowed_p99_ttft(system.engine.all_requests,
                                       window=window, horizon=duration)
            peak = max((v for _, v in series), default=float("nan"))
            rows.append(Row(
                mode=mode_name,
                accuracy=accuracy,
                p99_ttft_s=summary.p99_ttft,
                peak_window_p99_s=peak,
                observed_accuracy=system.predictor.observed_accuracy,
            ))
    return ExperimentResult(
        experiment="fig19",
        description="P99 TTFT vs output-length predictor accuracy "
                    "(OutputOnly vs full WRS)",
        rows=rows,
        params={"rps": rps, "duration": duration, "accuracies": list(accuracies)},
        notes=["paper: full WRS at 80% accuracy ~= oracle; OutputOnly is the "
               "sensitive configuration"],
    )
