"""Ablation: spec-derived vs observed-rate capability weights (routing).

Spec capability (compute x HBM bandwidth; ``ServingEngine.capability``) is a
*proxy* for service rate, and the proxy breaks whenever the binding resource
is not on the spec sheet.  The cleanest failure: two identical GPUs, one
sitting behind a degraded host link (shared PCIe switch, wrong slot, a
neighbour saturating the lanes — all real deployment hazards), serving an
adapter-heavy fetch-on-demand workload.  Spec weights say the replicas are
equal, so load-following dispatch splits traffic evenly — and every request
routed to the crippled replica eats a slow adapter load on its critical
path plus the engine stall the copy causes.

The :class:`~repro.serving.autoscaler.ObservedCapabilityEstimator` measures
what each replica actually finishes per second (EWMA of inter-finish
intervals, spec prior until it has history) and shifts traffic toward the
healthy replica; tail TTFT improves without any spec knowledge of the PCIe
fault.  This is the ROADMAP's "capability estimation from observed service
rates instead of specs (robust to PCIe-bound workloads)" follow-up.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.hardware.pcie import GB
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem


def run(
    rps: float = 12.0,
    duration: float = 150.0,
    warmup: float = 20.0,
    seed: int = 1,
    preset: str = "slora",
    policy: str = "least_loaded",
    stall_bandwidth_gb: float = 0.5,
    n_replicas: int = 2,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    # Replica 0 healthy, replica 1 on a congested host copy path: every
    # adapter load steals engine time at ``stall_bandwidth_gb`` instead of
    # the healthy default (pageable copies / pinned-memory exhaustion).
    # Identical GPUs: spec capability sees no difference at all.
    specs = [None] * n_replicas
    specs[-1] = {"engine_config":
                 EngineConfig(load_stall_bandwidth=stall_bandwidth_gb * GB)}
    rows = []
    for estimator in ("spec", "observed"):
        cluster = MultiReplicaSystem.build(
            preset, dispatch_policy=policy, registry=registry, seed=seed,
            predictor_accuracy=None if preset.startswith("slora") else 0.8,
            replica_specs=specs, capability_estimator=estimator,
        )
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup)
        weights = [round(w, 3) for w in cluster.capabilities()]
        rows.append(Row(
            estimator=estimator,
            p99_ttft_s=summary.p99_ttft,
            p50_ttft_s=summary.p50_ttft,
            mean_ttft_s=summary.mean_ttft,
            per_replica=str(summary.extra["per_replica_counts"]),
            final_weights=str(weights),
        ))
    return ExperimentResult(
        experiment="abl_capability_estimator",
        description=f"spec vs observed routing weights: {n_replicas} identical "
                    f"GPUs, one stalling adapter copies at "
                    f"{stall_bandwidth_gb:g} GB/s, adapter-heavy {preset!r} "
                    f"@ {rps} RPS",
        rows=rows,
        params={"rps": rps, "duration": duration, "preset": preset,
                "policy": policy, "stall_bandwidth_gb": stall_bandwidth_gb,
                "n_replicas": n_replicas},
        notes=["spec capability cannot see a host-path fault: weights stay "
               "equal and the degraded replica drags the tail",
               "observed weights shift traffic to the healthy replica "
               "(completion counts skew — that is the fix, not a bug)"],
    )
