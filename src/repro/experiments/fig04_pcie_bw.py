"""Figure 4: normalized PCIe bandwidth vs load for 1/50/500 adapters.

Rank-32 adapters throughout; requests draw uniformly from the pool (as in the
paper's LoRA-N setup).  Bandwidth is normalized to LoRA-1 at the lowest load.
The paper's shape: consumption explodes with the number of distinct adapters
and with RPS, saturating the link for LoRA-500.
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry
from repro.experiments.common import ExperimentResult, Row, run_preset, standard_trace
from repro.llm.model import LLAMA_7B


def run(
    loads=(5.0, 6.0, 7.0, 8.0),
    pool_sizes=(1, 50, 500),
    duration: float = 120.0,
    seed: int = 1,
) -> ExperimentResult:
    results: dict[tuple, float] = {}
    for n_adapters in pool_sizes:
        registry = AdapterRegistry.build(LLAMA_7B, n_adapters, ranks=(32,))
        for rps in loads:
            trace = standard_trace(rps, duration, registry, seed=seed,
                                   adapter_popularity="uniform")
            system, _ = run_preset("slora", trace, registry,
                                   link_keep_log=True)
            results[(n_adapters, rps)] = system.link.total_bytes_moved / duration
    baseline = results[(pool_sizes[0], loads[0])] or 1.0
    rows = [
        Row(rps=rps,
            **{f"lora_{n}_norm_bw": results[(n, rps)] / baseline
               for n in pool_sizes})
        for rps in loads
    ]
    return ExperimentResult(
        experiment="fig04",
        description="Normalized PCIe bandwidth vs load for LoRA-1/50/500 "
                    "(S-LoRA, rank-32 adapters)",
        rows=rows,
        params={"loads": list(loads), "pool_sizes": list(pool_sizes),
                "duration": duration},
        notes=[f"normalized to LoRA-{pool_sizes[0]} at {loads[0]} RPS"],
    )
