"""Ablation: Greedy-Dual-Size-Frequency vs the Chameleon score (§5.3.3).

The paper (text, no figure): "the P99 TTFT for high load (9.5 RPS) and
power-law adapter popularity for S-LoRA with the cache and eviction
algorithm of GDSF, is substantially worse than that of Chameleon", because
GDSF caches only the most popular adapters and aggressively evicts larger
adapters of moderate frequency.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)

SYSTEMS = {"S-LoRA": "slora", "Ch-GDSF": "chameleon_gdsf", "Chameleon": "chameleon"}


def run(
    rps: float = 8.5,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
    n_adapters: int = 500,
) -> ExperimentResult:
    registry = standard_registry(n_adapters=n_adapters)
    trace = standard_trace(rps, duration, registry, seed=seed,
                           adapter_popularity="powerlaw")
    rows = []
    for name, preset in SYSTEMS.items():
        system, summary = run_preset(preset, trace, registry, warmup=warmup)
        rows.append(Row(
            system=name,
            p99_ttft_s=summary.p99_ttft,
            p50_ttft_s=summary.p50_ttft,
            hit_rate=system.adapter_manager.stats.hit_rate,
            evicted_gb=system.adapter_manager.stats.evicted_bytes / 2 ** 30,
        ))
    return ExperimentResult(
        experiment="abl_gdsf",
        description=f"GDSF vs Chameleon eviction @ {rps} RPS, power-law popularity",
        rows=rows,
        params={"rps": rps, "duration": duration},
        notes=["paper §5.3.3: GDSF is substantially worse than Chameleon "
               "in this configuration"],
    )
