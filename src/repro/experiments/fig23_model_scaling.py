"""Figure 23: scalability with base-model size (Llama-7B/13B/30B).

On an 80 GB A100 with the paper's §5.5 pool sizes (500/100/10 adapters for
7B/13B/30B), normalized P99 TTFT (left) and throughput (right) of Chameleon
over S-LoRA at low/medium/high load.  The paper: ~60% P99 reduction for all
models; 1.86x/1.41x/1.67x throughput.
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry
from repro.experiments.common import ExperimentResult, Row, run_preset, standard_trace, trace_slo
from repro.hardware.gpu import A100_80GB
from repro.llm.model import LLAMA_7B, LLAMA_13B, LLAMA_30B
from repro.metrics.summary import throughput_under_slo

#: §5.5: adapters per model, sized to the memory left over by the weights.
MODEL_POOLS = ((LLAMA_7B, 500), (LLAMA_13B, 100), (LLAMA_30B, 10))


def run(
    duration: float = 200.0,
    warmup: float = 20.0,
    seed: int = 1,
    load_grid=None,
) -> ExperimentResult:
    rows = []
    for model, n_adapters in MODEL_POOLS:
        # Load points scale down with model size (bigger models saturate
        # earlier); the grid is also the throughput-search grid.
        if load_grid is not None:
            loads = load_grid
        elif model is LLAMA_7B:
            loads = (3.0, 6.0, 9.0, 12.0)
        elif model is LLAMA_13B:
            loads = (3.0, 5.0, 7.0, 9.0)
        else:
            loads = (2.0, 3.5, 5.0, 6.5)
        registry = AdapterRegistry.build(model, n_adapters)
        slo = None
        p99 = {"slora": [], "chameleon": []}
        for rps in loads:
            trace = standard_trace(rps, duration, registry, seed=seed)
            if slo is None:
                slo = trace_slo(trace, registry, model=model, gpu=A100_80GB)
            for preset in ("slora", "chameleon"):
                _, summary = run_preset(preset, trace, registry, warmup=warmup,
                                        slo=slo, model=model, gpu=A100_80GB)
                p99[preset].append(summary.p99_ttft)
        tp = {
            preset: throughput_under_slo(list(loads), p99[preset], slo)
            for preset in ("slora", "chameleon")
        }
        for i, load_name in enumerate(("low", "medium", "high")):
            if i >= len(loads):
                break
            rows.append(Row(
                model=model.name, load=load_name, rps=loads[i],
                slora_p99_s=p99["slora"][i],
                chameleon_p99_s=p99["chameleon"][i],
                norm_p99=(p99["chameleon"][i] / p99["slora"][i]
                          if p99["slora"][i] else float("nan")),
                throughput_ratio=(tp["chameleon"] / tp["slora"]
                                  if tp["slora"] else float("nan")),
            ))
    return ExperimentResult(
        experiment="fig23",
        description="Scalability with model size (A100-80GB; 500/100/10 adapters)",
        rows=rows,
        params={"duration": duration},
        notes=["paper: ~60% P99 reduction for 7B/13B/30B; throughput "
               "1.86x/1.41x/1.67x"],
    )
