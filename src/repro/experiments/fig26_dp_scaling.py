"""DP scaling: throughput and tail latency as replicas are added (§4.4).

Beyond the paper's figures: the load is scaled proportionally with the
replica count (fixed per-replica RPS), so ideal data-parallel scaling keeps
the latency distribution flat while completed throughput grows linearly.
The gap from flat — rising tail TTFT, dispatch-queue delay, load imbalance —
is the cost of the two-level scheduler at scale, which is exactly what the
global admission queue and the smarter dispatch policies are for.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.serving.replica import MultiReplicaSystem


def run(
    rps_per_replica: float = 8.0,
    duration: float = 120.0,
    replica_counts=(1, 2, 4, 8),
    policy: str = "token_weighted",
    preset: str = "chameleon",
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    rows = []
    for n_replicas in replica_counts:
        rps = rps_per_replica * n_replicas
        trace = standard_trace(rps, duration, registry, seed=seed)
        cluster = MultiReplicaSystem.build(
            preset, n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed,
        )
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup)
        rows.append(Row(
            replicas=n_replicas,
            rps=rps,
            completed_rps=summary.completed_rps,
            p50_ttft_s=summary.p50_ttft,
            p99_ttft_s=summary.p99_ttft,
            p99_qdelay_s=summary.extra["p99_dispatch_queue_delay"],
            load_imbalance=summary.extra["load_imbalance"],
            agg_hit_rate=summary.extra["aggregate_hit_rate"],
        ))
    return ExperimentResult(
        experiment="fig26",
        description=f"DP scaling of {preset!r} under {policy!r} dispatch "
                    f"@ {rps_per_replica} RPS per replica",
        rows=rows,
        params={"rps_per_replica": rps_per_replica, "duration": duration,
                "replica_counts": tuple(replica_counts), "policy": policy,
                "preset": preset},
        notes=["load scales with the cluster, so flat latency = ideal DP "
               "scaling; queue delay and imbalance measure the dispatch gap"],
    )
