"""Tenant fairness under a hot-tenant storm: weighted-fair vs goodput.

Beyond the paper's figures: multi-tenant admission on one shared cluster.
A Zipf-skewed tenant population serves a steady aggregate load, then the
heaviest tenant goes hot — a storm multiplying its arrival rate many-fold
for a window mid-run.  Two admission stacks over the *same* fleet and
trace:

* ``goodput`` — the PR-8 stack: one FIFO dispatch queue plus SLO shedding.
  Admission maximizes aggregate goodput with no notion of who is asking,
  so the storm's requests flood the shared queue and every victim tenant
  queues behind them.
* ``weighted_fair`` — per-tenant quota lanes (token-bucket rate caps
  solved from the tenants' declared shares) drained by deficit-round-robin
  in SLO-class weight proportion.  The storm fills only its own lane; the
  throttle and the DRR quantum bound how far past its share the hot
  tenant can push, and victims keep their entitled service.

The headline is the *victim* tail: the worst per-tenant SLO attainment
among the tenants that did nothing wrong.  Weighted-fair admission should
hold every victim near its quiet-run attainment while pure-goodput
admission collapses; the hot tenant itself pays the storm under either
stack (fairness is isolation, not extra capacity).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    trace_slo,
)
from repro.metrics.summary import jain_fairness_index, tenant_breakdown
from repro.serving.admission import SloPolicy, TenantFairnessPolicy
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.tenants import (
    DEFAULT_SLO_CLASSES,
    TenantPopulation,
    inject_hot_tenant_storm,
)

#: (variant name, weighted-fair admission enabled).
VARIANTS = (
    ("goodput", False),
    ("weighted_fair", True),
)


def run(
    rps: float = 24.0,
    duration: float = 150.0,
    n_replicas: int = 4,
    n_tenants: int = 6,
    tenant_skew: float = 1.2,
    storm_multiplier: float = 8.0,
    storm_start: float = 60.0,
    storm_duration: float = 50.0,
    hot_tenant: int = 0,
    policy: str = "least_loaded",
    preset: str = "chameleon",
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    streams = RngStreams(seed)
    population = TenantPopulation.build(n_tenants, skew=tenant_skew)
    base = population.synthesize(
        rps=rps, duration=duration, rng=streams.get("trace"),
        registry=registry)
    trace = inject_hot_tenant_storm(
        base, population, hot_tenant, storm_rps=rps * storm_multiplier,
        start=storm_start, storm_duration=storm_duration,
        rng=streams.get("storm"), registry=registry)
    deadline = trace_slo(base, registry)
    slo = SloPolicy(ttft_deadline=deadline, mode="shed",
                    classes=DEFAULT_SLO_CLASSES)
    tenancy = TenantFairnessPolicy.from_shares(
        population.shares(), capacity_rps=rps, classes=DEFAULT_SLO_CLASSES)
    rows = []
    for variant, fair in VARIANTS:
        system = MultiReplicaSystem.build(
            preset, n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, backpressure=True,
            slo_policy=slo, tenancy=tenancy if fair else None,
        )
        system.run_trace(trace.fresh(), horizon=trace.duration)
        summary = system.summary(warmup=warmup, duration=duration)
        requests = [r for r in system.all_requests()
                    if r.arrival_time >= warmup]
        breakdown = tenant_breakdown(requests, attained=slo.attained)
        attain = dict(zip(breakdown["tenant_ids"], breakdown["attainment"]))
        victims = [a for t, a in attain.items()
                   if t != hot_tenant and a == a]
        shed = sum(1 for r in requests if r.shed)
        books = system.cluster.stats.tenants
        rows.append(Row(
            variant=variant,
            victim_min_attainment=min(victims) if victims else float("nan"),
            victim_mean_attainment=(sum(victims) / len(victims)
                                    if victims else float("nan")),
            hot_attainment=attain.get(hot_tenant, float("nan")),
            fairness_jain=jain_fairness_index(
                [a for a in attain.values() if a == a]),
            shed_rate=shed / len(requests) if requests else float("nan"),
            p99_ttft_s=summary.p99_ttft,
            completed_rps=summary.completed_rps,
            quota_throttles=sum(b.throttled for b in books.values()),
            quota_borrows=sum(b.borrowed for b in books.values()),
        ))
    return ExperimentResult(
        experiment="fig32",
        description=f"hot-tenant storm ({storm_multiplier:g}x for "
                    f"{storm_duration:g}s) on {preset!r} x {n_replicas}, "
                    f"Zipf({tenant_skew}) x {n_tenants} tenants @ {rps} RPS",
        rows=rows,
        params={"rps": rps, "duration": duration, "n_replicas": n_replicas,
                "n_tenants": n_tenants, "tenant_skew": tenant_skew,
                "storm_multiplier": storm_multiplier,
                "storm_start": storm_start,
                "storm_duration": storm_duration,
                "hot_tenant": hot_tenant, "policy": policy,
                "preset": preset, "slo_s": deadline},
        notes=["same fleet and trace in every row; only admission changes — "
               "the victim-attainment gap is what per-tenant quotas and "
               "weighted-fair dispatch buy during the storm",
               "the hot tenant pays its own storm under both stacks: "
               "fairness isolates the victims, it does not mint capacity"],
    )
