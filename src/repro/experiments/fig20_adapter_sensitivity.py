"""Figure 20: sensitivity to the number of adapters and their popularity.

Left: P99 TTFT for 10..200 adapters under uniform vs power-law *rank*
popularity, S-LoRA vs Chameleon at 9.5 RPS.  Right: popularity-distribution
grid — (rank popularity, adapter popularity) in {U-U, U-P, P-P} — normalized
P99.  The paper: Chameleon holds the SLO out to 100-150 adapters where
S-LoRA only manages ~10, and P-P is the friendliest distribution for both.
"""

from __future__ import annotations

from repro.adapters.registry import AdapterRegistry
from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_trace,
    trace_slo,
)
from repro.llm.model import LLAMA_7B


def run(
    rps: float = 9.5,
    duration: float = 240.0,
    pool_sizes=(10, 50, 100, 150, 200),
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    rows = []
    # Left panel: number of adapters x rank popularity.
    for n_adapters in pool_sizes:
        registry = AdapterRegistry.build(LLAMA_7B, n_adapters)
        row = Row(n_adapters=n_adapters)
        for pop_name, rank_pop in (("uni", "uniform"), ("pow", "powerlaw")):
            trace = standard_trace(rps, duration, registry, seed=seed,
                                   rank_popularity=rank_pop)
            slo = trace_slo(trace, registry)
            for sys_name, preset in (("slora", "slora"), ("cham", "chameleon")):
                _, summary = run_preset(preset, trace, registry,
                                        warmup=warmup, slo=slo)
                row[f"{sys_name}_{pop_name}_p99_s"] = summary.p99_ttft
            row[f"slo_{pop_name}_s"] = slo
        rows.append(row)

    # Right panel: popularity grid at the default pool size.
    registry = AdapterRegistry.build(LLAMA_7B, 100)
    grid_rows = []
    for label, rank_pop, adapter_pop in (
        ("U-U", "uniform", "uniform"),
        ("U-P", "uniform", "powerlaw"),
        ("P-P", "powerlaw", "powerlaw"),
    ):
        trace = standard_trace(rps, duration, registry, seed=seed,
                               rank_popularity=rank_pop,
                               adapter_popularity=adapter_pop)
        entry = Row(distribution=label)
        for sys_name, preset in (("slora", "slora"), ("cham", "chameleon")):
            _, summary = run_preset(preset, trace, registry, warmup=warmup)
            entry[f"{sys_name}_p99_s"] = summary.p99_ttft
        grid_rows.append(entry)
    baseline = max(r["slora_p99_s"] for r in grid_rows) or 1.0
    for entry in grid_rows:
        entry["slora_norm"] = entry["slora_p99_s"] / baseline
        entry["cham_norm"] = entry["cham_p99_s"] / baseline
        rows.append(entry)

    return ExperimentResult(
        experiment="fig20",
        description="Sensitivity to adapter count (left) and popularity "
                    "distribution (right) @ 9.5 RPS",
        rows=rows,
        params={"rps": rps, "duration": duration, "pool_sizes": list(pool_sizes)},
        notes=["left rows: n_adapters set; right rows: distribution set",
               "paper: Chameleon meets SLO up to 100 (uniform) / 150 "
               "(power-law) adapters; S-LoRA only at 10"],
    )
