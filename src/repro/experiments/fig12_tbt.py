"""Figure 12: P99 time-between-tokens (TBT) vs load, S-LoRA vs Chameleon.

Both systems must stay under the 150 ms TBT SLO (TBT is far less sensitive
to queueing than TTFT), with Chameleon somewhat lower throughout.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Row, standard_registry, sweep_loads

TBT_SLO_S = 0.150


def run(
    loads=(5.0, 7.0, 9.0, 11.0, 13.0),
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    raw = sweep_loads(("slora", "chameleon"), loads, duration, registry,
                      warmup=warmup, seed=seed)
    rows = []
    for rps in loads:
        row = Row(rps=rps)
        for entry in raw:
            if entry["rps"] == rps:
                row[f"{entry['preset']}_p99_tbt_ms"] = entry["p99_tbt_s"] * 1e3
        row["tbt_slo_ms"] = TBT_SLO_S * 1e3
        rows.append(row)
    return ExperimentResult(
        experiment="fig12",
        description="P99 TBT vs load (TBT SLO = 150 ms)",
        rows=rows,
        params={"loads": list(loads), "duration": duration},
        notes=["the paper: both systems stay under the TBT SLO; "
               "Chameleon consistently lower"],
    )
