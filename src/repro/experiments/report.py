"""Markdown report generation from experiment results.

Turns a list of :class:`ExperimentResult` (or the JSON the CLI's ``--json``
flag writes) into a self-contained markdown report — the mechanical half of
EXPERIMENTS.md, regenerable after any code change::

    python -m repro.cli all --quick --json results.json
    python -c "from repro.experiments.report import report_from_json; \\
               print(report_from_json('results.json'))" > REPORT.md
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

from repro.experiments.common import ExperimentResult


def _markdown_table(rows: Sequence[dict]) -> str:
    columns: list = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)


def render_markdown(results: Sequence[ExperimentResult], title: str = "Results") -> str:
    """Render results as a markdown document (one section per experiment)."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(f"## {result.experiment}")
        parts.append("")
        parts.append(result.description)
        parts.append("")
        if result.params:
            rendered = ", ".join(f"{k}={v}" for k, v in result.params.items())
            parts.append(f"*Parameters:* {rendered}")
            parts.append("")
        if result.rows:
            parts.append(_markdown_table(result.rows))
            parts.append("")
        for note in result.notes:
            parts.append(f"> {note}")
        if result.notes:
            parts.append("")
    return "\n".join(parts)


def metrics_markdown(source: Union[str, Path, dict],
                     title: str = "Run metrics") -> str:
    """Render a :class:`repro.obs.MetricsRegistry` dump as markdown.

    ``source`` is either the JSON file written by
    ``repro.obs.export.write_metrics`` (or the already-loaded payload
    dict): the sampled timeseries becomes one table, and each
    histogram's summary becomes a row of a second one."""
    if isinstance(source, dict):
        payload = source
    else:
        payload = json.loads(Path(source).read_text())
    parts = [f"# {title}", ""]
    samples = payload.get("samples", [])
    if samples:
        # JSON round-trips sort row keys; the registry's column order
        # (time, counters, gauges) is recorded separately — restore it.
        columns = payload.get("columns")
        if columns:
            samples = [{c: row.get(c) for c in columns} for row in samples]
        parts.append("## Sampled timeseries")
        parts.append("")
        parts.append(_markdown_table(samples))
        parts.append("")
    histograms = payload.get("histograms", {})
    if histograms:
        rows = [dict(metric=name, **summary)
                for name, summary in sorted(histograms.items())]
        parts.append("## Histograms")
        parts.append("")
        parts.append(_markdown_table(rows))
        parts.append("")
    return "\n".join(parts)


def report_from_json(path: Union[str, Path], title: str = "Results") -> str:
    """Render the JSON written by ``python -m repro.cli ... --json``."""
    payload = json.loads(Path(path).read_text())
    results = [
        ExperimentResult(
            experiment=entry["experiment"],
            description=entry.get("description", ""),
            rows=entry.get("rows", []),
            params=entry.get("params", {}),
            notes=entry.get("notes", []),
        )
        for entry in payload
    ]
    return render_markdown(results, title=title)
