"""Figure 8: CDF of per-request slowdown under different scheduling policies.

Slowdown = observed E2E latency / isolated E2E latency.  Policies: FIFO,
chunked-prefill FIFO, SJF, and the Chameleon scheduler (cache disabled so
only scheduling differs), at medium and high load.  The paper's shape: FIFO
and chunked-prefill punish the tail via HoL blocking, SJF punishes it via
starvation of long requests, Chameleon keeps the tail low.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.metrics.summary import slowdowns

#: "Optimized Scheduling" is the §4 policy as deployed (the full system, as
#: in the paper's Figure 8); the three baselines run on the S-LoRA stack.
POLICIES = {
    "FIFO": "slora",
    "Chunk-Prefill": "slora_chunked",
    "SJF": "slora_sjf",
    "OptimizedSched": "chameleon",
}
PERCENTILES = (50, 75, 90, 95, 99)


def run(
    medium_rps: float = 8.0,
    high_rps: float = 11.0,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    rows = []
    for load_name, rps in (("medium", medium_rps), ("high", high_rps)):
        trace = standard_trace(rps, duration, registry, seed=seed)
        slo = trace_slo(trace, registry)
        for policy_name, preset in POLICIES.items():
            system, _ = run_preset(preset, trace, registry, warmup=warmup, slo=slo)
            values = slowdowns(
                [r for r in system.engine.all_requests
                 if r.finished and r.arrival_time >= warmup],
                system.cost_model,
                rank_of=system.engine.request_rank,
                load_time_of=lambda r: 0.0,
            )
            row = Row(load=load_name, policy=policy_name,
                      mean_slowdown=float(np.mean(values)))
            for p in PERCENTILES:
                row[f"p{p}"] = float(np.percentile(values, p))
            rows.append(row)
    return ExperimentResult(
        experiment="fig08",
        description="Per-request slowdown by scheduling policy "
                    "(medium and high load)",
        rows=rows,
        params={"medium_rps": medium_rps, "high_rps": high_rps,
                "duration": duration},
        notes=["slowdown = E2E / isolated E2E; adapter loading excluded from "
               "the isolated denominator as in the paper's §3.3 setup"],
    )
