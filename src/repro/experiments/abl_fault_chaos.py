"""Ablation: chaos sweep over MTTF — how failure rate degrades serving.

fig30 injects one scripted crash; this ablation turns the failure rate into
the independent variable.  A self-healing autoscaled fleet serves one
steady trace while a seeded random failure process (exponential
inter-failure gaps of mean MTTF, uniform serving-replica targets — the
classic memoryless hardware-failure model) crashes replicas out from under
it.  The fault RNG is its own named stream, so every MTTF point sees the
*same workload* and the sweep is paired.

Expected shape: availability and SLO attainment degrade gracefully as MTTF
shrinks — each crash costs at most one detection tick plus a cold start of
reduced capacity, and migration keeps lost requests at ~0 throughout.  The
interesting knee is where MTTF approaches the recovery time itself
(failures arrive faster than replacements warm), which is where every real
serving fleet falls over too.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem


def run(
    rps: float = 16.0,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
    preset: str = "chameleon",
    policy: str = "least_loaded",
    mttfs: Sequence[Optional[float]] = (None, 120.0, 60.0, 30.0),
    min_replicas: int = 3,
    max_replicas: int = 6,
    tick_interval: float = 1.0,
    provision_delay: float = 5.0,
    cooldown: float = 4.0,
    max_batch_size: int = 24,
    deadline: float = None,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    if deadline is None:
        deadline = trace_slo(trace, registry)
    engine_config = EngineConfig(max_batch_size=max_batch_size)

    rows = []
    for mttf in mttfs:
        autoscale = AutoscaleConfig(
            min_replicas=min_replicas, max_replicas=max_replicas,
            tick_interval=tick_interval, provision_delay=provision_delay,
            cooldown=cooldown, sustain_ticks=1, idle_sustain_ticks=10,
            queue_wait_threshold=deadline / 2, self_heal=True)
        cluster = MultiReplicaSystem.build(
            preset, n_replicas=min_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, engine_config=engine_config,
            slo_policy=SloPolicy(ttft_deadline=deadline, mode="shed"),
            autoscale=autoscale, mttf=mttf)
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup, duration=duration)
        extra = summary.extra
        faulted = cluster.fault_injector is not None
        rows.append(Row(
            mttf_s=mttf if mttf is not None else float("inf"),
            crashes=extra["cluster_failures"] if faulted else 0,
            self_heal=extra.get("self_heal_events", 0) if faulted else 0,
            migrated=extra["cluster_migrations"] if faulted else 0,
            lost=extra["cluster_lost"] if faulted else 0,
            availability=extra["availability"] if faulted else 1.0,
            shed_rate=extra["shed_rate"],
            slo_attainment=extra["cluster_slo_attainment"],
            p99_ttft_s=summary.p99_ttft,
            replica_seconds=extra["replica_seconds"],
        ))
    return ExperimentResult(
        experiment="abl_fault_chaos",
        description=f"MTTF sweep under random replica crashes "
                    f"({rps} RPS steady trace, self-healing fleet "
                    f"[{min_replicas}, {max_replicas}])",
        rows=rows,
        params={"rps": rps, "duration": duration, "deadline": deadline,
                "mttfs": list(mttfs), "min_replicas": min_replicas,
                "max_replicas": max_replicas,
                "provision_delay": provision_delay,
                "max_batch_size": max_batch_size, "policy": policy,
                "preset": preset},
        notes=["the fault RNG is a dedicated stream: every MTTF point "
               "replays the identical workload (paired sweep)",
               "migration keeps lost ~0 at every MTTF; attainment degrades "
               "gracefully until MTTF approaches the recovery time"],
    )
