"""Ablation: cluster-level SLO admission control past the knee (§4.4 follow-up).

Past the saturation knee a work-conserving cluster serves every arrival
anyway: the global queue grows without bound, every completion blows the
TTFT deadline, and *goodput* (deadline-compliant completions per second)
collapses to zero even though raw throughput stays at capacity.  The
:class:`~repro.serving.admission.SloPolicy` restores the goodput plateau by
refusing to spend capacity on arrivals that cannot meet their deadline:

* ``shed`` rejects them outright (bounded queue, bounded TTFT for everything
  that is served);
* ``deprioritize`` parks them in a low-priority lane drained only while the
  FIFO lane is empty — same goodput protection, but the overflow still
  completes eventually (higher raw throughput, far worse overall p99).

The sweep runs the same overloaded trace under no admission control and both
SLO modes, with goodput computed identically (against the same deadline)
for every row, so the comparison is apples to apples.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.serving.admission import SloPolicy
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem


def run(
    rps: float = 30.0,
    duration: float = 120.0,
    n_replicas: int = 2,
    warmup: float = 10.0,
    seed: int = 1,
    deadline: float = None,
    preset: str = "chameleon",
    policy: str = "least_loaded",
    max_batch_size: int = 24,
    modes=("none", "shed", "deprioritize"),
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    if deadline is None:
        deadline = trace_slo(trace, registry)  # the paper's 5x mean isolated
    rows = []
    for mode in modes:
        slo_policy = None if mode == "none" else SloPolicy(
            ttft_deadline=deadline, mode=mode)
        cluster = MultiReplicaSystem.build(
            preset, n_replicas=n_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, slo_policy=slo_policy,
            engine_config=EngineConfig(max_batch_size=max_batch_size),
        )
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup, duration=duration)
        # Deadline accounting computed the same way for every mode (the
        # "none" row has no SloPolicy to do it): goodput over the arrival
        # window, attainment over post-warmup arrivals.
        arrivals = [r for r in cluster.all_requests() if r.arrival_time >= warmup]
        done = [r for r in arrivals if r.finished]
        attained = [
            r for r in done
            if r.first_token_time is not None and r.ttft <= deadline
        ]
        # Post-warmup completions over the full trace duration — the same
        # span convention completed_rps and summary().extra['goodput_rps']
        # use, so the figure cross-checks against the CLI report.
        span = duration
        rows.append(Row(
            mode=mode,
            completed=len(done),
            shed=cluster.cluster.stats.shed,
            deprioritized=cluster.cluster.stats.deprioritized,
            goodput_rps=len(attained) / span if span > 0 else 0.0,
            slo_attainment=len(attained) / len(arrivals) if arrivals else 0.0,
            p99_ttft_s=summary.p99_ttft,
            p99_qdelay_s=summary.extra["p99_dispatch_queue_delay"],
        ))
    return ExperimentResult(
        experiment="abl_slo_admission",
        description=f"SLO admission past the knee: {preset} x{n_replicas} "
                    f"@ {rps} RPS, TTFT deadline {deadline:.2f}s",
        rows=rows,
        params={"rps": rps, "duration": duration, "n_replicas": n_replicas,
                "deadline": deadline, "max_batch_size": max_batch_size,
                "policy": policy},
        notes=["goodput = post-warmup deadline-compliant completions per "
               "second of the trace duration (the completed_rps span "
               "convention), same deadline for every mode",
               "'none' serves everything and misses the deadline for "
               "(almost) everything; shed keeps the served set compliant; "
               "deprioritize additionally completes the overflow late"],
    )
