"""Heterogeneous data-parallel fleets: capability-normalized routing (fig27).

Beyond the paper's homogeneous DP experiments: replicas with mixed GPU specs
behind one dispatcher (here 2x A100-80GB + 2x A40).  Load-following policies
that compare *raw* backlog treat a queue of N on a slow GPU like a queue of
N on a fast one, although the slow queue takes ~2.5x longer to drain — the
tail of the latency distribution is then dominated by requests parked on the
slow replicas.  Normalizing every load probe by the replica's relative
capability (compute x bandwidth, see ``ServingEngine.capability``) turns the
comparison into utilization and restores near-homogeneous tails.

The workload is adapter-free by default so the heterogeneity signal is pure
compute/bandwidth: adapter loads cross the same PCIe link on every spec and
would dilute the contrast (that interaction is a follow-up, not this
figure).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.serving.replica import MultiReplicaSystem

DEFAULT_SPECS = ("a100-80gb", "a100-80gb", "a40-48gb", "a40-48gb")


def run(
    rps: float = 44.0,
    duration: float = 120.0,
    warmup: float = 20.0,
    seed: int = 1,
    specs=DEFAULT_SPECS,
    policies=("least_loaded", "p2c"),
    preset: str = "slora",
    with_adapters: bool = False,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry if with_adapters else None,
                           seed=seed)
    rows = []
    caps = []
    for policy in policies:
        for normalized in (False, True):
            cluster = MultiReplicaSystem.build(
                preset, dispatch_policy=policy, registry=registry, seed=seed,
                predictor_accuracy=None if preset.startswith("slora") else 0.8,
                replica_specs=specs, normalize_capability=normalized,
            )
            if normalized:
                caps = cluster.capabilities()
            cluster.run_trace(trace.fresh())
            summary = cluster.summary(warmup=warmup)
            rows.append(Row(
                policy=policy,
                normalized=normalized,
                p99_ttft_s=summary.p99_ttft,
                p50_ttft_s=summary.p50_ttft,
                mean_ttft_s=summary.mean_ttft,
                load_imbalance=summary.extra["load_imbalance"],
                per_replica=str(summary.extra["per_replica_counts"]),
            ))
    return ExperimentResult(
        experiment="fig27",
        description=f"heterogeneous fleet {list(specs)} @ {rps} RPS: "
                    f"capability-normalized vs raw load-following dispatch",
        rows=rows,
        params={"rps": rps, "duration": duration, "specs": tuple(specs),
                "policies": tuple(policies), "preset": preset,
                "capability_weights": [round(c, 3) for c in caps]},
        notes=["normalized=True divides every load probe by the replica's "
               "relative capability (mean 1.0 across the fleet)",
               "completion counts skew toward the fast replicas under "
               "normalization — that is the point, not an imbalance bug"],
    )
