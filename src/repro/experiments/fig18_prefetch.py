"""Figure 18: the optional histogram-driven prefetcher (§4.2.3).

S-LoRA vs Chameleon vs Chameleon+Prefetch, normalized P99 TTFT per rank at
medium load.  The paper: prefetching shaves a further ~8.8% off the total
P99 because adapter popularity is highly predictable under power-law
popularity (and warns the gain depends on predictability).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig17_cache_policies import run as _run_fig17

SYSTEMS = {
    "S-LoRA": "slora",
    "Chameleon": "chameleon",
    "Chameleon+Prefetch": "chameleon_prefetch",
}


def run(
    rps: float = 8.0,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    result = _run_fig17(rps=rps, duration=duration, warmup=warmup, seed=seed,
                        systems=SYSTEMS)
    return ExperimentResult(
        experiment="fig18",
        description=f"Normalized P99 TTFT per rank with prefetching @ {rps} RPS",
        rows=result.rows,
        params=result.params,
        notes=[n for n in result.notes if "paper: LRU" not in n]
        + ["paper: prefetching reduces total P99 TTFT by a further 8.8%"],
    )
