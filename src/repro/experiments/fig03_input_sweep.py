"""Figure 3: TTFT vs input size for different adapter ranks.

Adapter weights are kept resident (loading excluded), isolating prefill: the
rank's impact must grow with the input size.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Row
from repro.hardware.gpu import A40_48GB
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B


def run(
    input_sizes=(250, 500, 750, 1000, 1250, 1500, 1750, 2000),
    ranks=(8, 16, 32, 64, 128),
) -> ExperimentResult:
    cost_model = CostModel(LLAMA_7B, A40_48GB)
    rows = []
    for n in input_sizes:
        row = Row(input_tokens=n)
        for rank in ranks:
            row[f"ttft_r{rank}_s"] = cost_model.prefill_time(n, rank)
        rows.append(row)
    spread_small = rows[0][f"ttft_r{ranks[-1]}_s"] - rows[0][f"ttft_r{ranks[0]}_s"]
    spread_large = rows[-1][f"ttft_r{ranks[-1]}_s"] - rows[-1][f"ttft_r{ranks[0]}_s"]
    return ExperimentResult(
        experiment="fig03",
        description="TTFT vs input size per adapter rank (adapter resident)",
        rows=rows,
        params={"input_sizes": list(input_sizes), "ranks": list(ranks)},
        notes=[f"rank spread grows with input size: {spread_small * 1e3:.1f} ms "
               f"at {input_sizes[0]} tokens -> {spread_large * 1e3:.1f} ms at "
               f"{input_sizes[-1]} tokens"],
    )
