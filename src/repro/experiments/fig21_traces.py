"""Figure 21: P99 TTFT on the Splitwise, WildChat and LMSYS traces.

Chameleon runs with its Splitwise-tuned parameters unchanged (no re-tuning,
as in §5.4.4); each trace carries its own SLO.  The paper: S-LoRA misses all
three SLOs at high load, Chameleon meets them, ~4x lower TTFT on the two
chat traces.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
    trace_slo,
)
from repro.workload.trace import TRACE_PROFILES


def run(
    rps: float = 9.5,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
    traces=("splitwise", "wildchat", "lmsys"),
) -> ExperimentResult:
    registry = standard_registry()
    rows = []
    for trace_name in traces:
        profile = TRACE_PROFILES[trace_name]
        trace = standard_trace(rps, duration, registry, seed=seed, profile=profile)
        slo = trace_slo(trace, registry)
        row = Row(trace=trace_name, slo_s=slo)
        for sys_name, preset in (("slora", "slora"), ("chameleon", "chameleon")):
            _, summary = run_preset(preset, trace, registry, warmup=warmup,
                                    slo=slo, profile=profile)
            row[f"{sys_name}_p99_s"] = summary.p99_ttft
            row[f"{sys_name}_meets_slo"] = bool(summary.p99_ttft <= slo)
        row["speedup"] = (row["slora_p99_s"] / row["chameleon_p99_s"]
                          if row["chameleon_p99_s"] else float("nan"))
        rows.append(row)
    return ExperimentResult(
        experiment="fig21",
        description=f"P99 TTFT across traces @ {rps} RPS, per-trace SLOs",
        rows=rows,
        params={"rps": rps, "duration": duration, "traces": list(traces)},
        notes=["Chameleon parameters tuned on Splitwise are reused unchanged",
               "paper: ~4x TTFT reduction on WildChat/LMSYS; Chameleon meets "
               "every SLO, S-LoRA none"],
    )
