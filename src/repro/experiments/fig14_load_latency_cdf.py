"""Figure 14: CDF of adapter-loading latency on the critical path.

For every finished request, the time it spent admitted-but-blocked on its
adapter transfer.  The paper: 75% of Chameleon requests hit the cache (zero
loading), the rest pay <= ~6 ms; S-LoRA requests pay up to ~30 ms because
asynchronous prefetch cannot fully overlap under load.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)

PERCENTILES = (25, 50, 75, 90, 95, 99, 100)


def run(
    rps: float = 9.0,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    rows = []
    notes = []
    for preset in ("slora", "chameleon"):
        system, _ = run_preset(preset, trace, registry, warmup=warmup)
        latencies = [
            r.adapter_load_critical_path
            for r in system.engine.all_requests
            if r.finished and r.arrival_time >= warmup
        ]
        zero_share = float(np.mean([lat == 0.0 for lat in latencies]))
        row = Row(preset=preset, zero_load_share=zero_share)
        for p in PERCENTILES:
            row[f"p{p}_ms"] = float(np.percentile(latencies, p)) * 1e3
        rows.append(row)
        notes.append(f"{preset}: {zero_share * 100:.0f}% of requests pay zero "
                     "loading on the critical path")
    return ExperimentResult(
        experiment="fig14",
        description="Adapter-loading latency on the critical path (CDF points)",
        rows=rows,
        params={"rps": rps, "duration": duration},
        notes=notes + ["paper: 75% Chameleon cache-hit rate, loads <= ~6 ms; "
                       "S-LoRA loads up to ~30 ms"],
    )
