"""Figure 22: dynamic queue organization vs a static 4-queue split.

The static variant fixes K=4 queues with equal WRS ranges and equal quotas;
Chameleon re-clusters and re-solves quotas dynamically.  The paper: parity at
low/medium load, ~10% lower P99 TTFT at high load for the dynamic scheme.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)

LOAD_POINTS = {"low": 6.0, "medium": 9.0, "high": 12.0}


def run(
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
    loads=None,
) -> ExperimentResult:
    loads = loads or LOAD_POINTS
    registry = standard_registry()
    rows = []
    for load_name, rps in loads.items():
        trace = standard_trace(rps, duration, registry, seed=seed)
        _, static = run_preset("chameleon_static", trace, registry, warmup=warmup)
        _, dynamic = run_preset("chameleon", trace, registry, warmup=warmup)
        rows.append(Row(
            load=load_name,
            rps=rps,
            static_p99_s=static.p99_ttft,
            chameleon_p99_s=dynamic.p99_ttft,
            chameleon_norm=(dynamic.p99_ttft / static.p99_ttft
                            if static.p99_ttft else float("nan")),
        ))
    return ExperimentResult(
        experiment="fig22",
        description="Dynamic vs static queue configuration (P99 TTFT)",
        rows=rows,
        params={"duration": duration, "loads": dict(loads)},
        notes=["paper: parity at low/medium load, ~10% better at high load"],
    )
