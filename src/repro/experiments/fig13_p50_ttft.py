"""Figure 13: P50 (median) TTFT vs load, S-LoRA vs Chameleon.

Median benefits are significant but smaller than the tail benefits (the paper
reports 48.1% at high load vs 80.7% for P99).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Row, standard_registry, sweep_loads


def run(
    loads=(5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0),
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    raw = sweep_loads(("slora", "chameleon"), loads, duration, registry,
                      warmup=warmup, seed=seed)
    rows = []
    for rps in loads:
        row = Row(rps=rps)
        for entry in raw:
            if entry["rps"] == rps:
                row[f"{entry['preset']}_p50_s"] = entry["p50_ttft_s"]
        if row.get("slora_p50_s"):
            row["reduction"] = 1.0 - row.get("chameleon_p50_s", 0.0) / row["slora_p50_s"]
        rows.append(row)
    return ExperimentResult(
        experiment="fig13",
        description="P50 TTFT vs load",
        rows=rows,
        params={"loads": list(loads), "duration": duration},
        notes=["paper: 13.9% / 20.9% / 48.1% P50 reduction at low/medium/high load"],
    )
