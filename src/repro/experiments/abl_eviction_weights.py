"""Ablation: offline profiling of the eviction-score weights (§4.2.2).

Reruns the paper's profiling procedure: sweep (F, R, S) weightings on a
simplex grid over a calibration trace and report the landscape.  The paper's
tuned point (0.45, 0.10, 0.45) should sit in the low-latency region —
specifically, frequency+size-dominant weightings should beat
recency-dominant ones (which degenerate toward LRU).
"""

from __future__ import annotations

from repro.core.tuning import profile_eviction_weights
from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)

PAPER_WEIGHTS = (0.45, 0.10, 0.45)


def run(
    rps: float = 9.0,
    duration: float = 180.0,
    grid_step: float = 0.25,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    result = profile_eviction_weights(
        trace, registry, grid_step=grid_step,
        candidates=None, warmup=20.0, seed=seed,
    )
    # Also measure the paper's exact weighting for reference.
    paper_point = profile_eviction_weights(
        trace, registry, candidates=[PAPER_WEIGHTS], warmup=20.0, seed=seed,
    ).best
    rows = [
        Row(f_weight=c.weights[0], r_weight=c.weights[1], s_weight=c.weights[2],
            p99_ttft_s=c.p99_ttft, mean_ttft_s=c.mean_ttft, hit_rate=c.hit_rate)
        for c in sorted(result.candidates, key=lambda c: c.p99_ttft)
    ]
    rows.append(Row(f_weight=PAPER_WEIGHTS[0], r_weight=PAPER_WEIGHTS[1],
                    s_weight=PAPER_WEIGHTS[2], p99_ttft_s=paper_point.p99_ttft,
                    mean_ttft_s=paper_point.mean_ttft,
                    hit_rate=paper_point.hit_rate))
    return ExperimentResult(
        experiment="abl_eviction_weights",
        description="Offline profiling of the (F, R, S) eviction weights",
        rows=rows,
        params={"rps": rps, "duration": duration, "grid_step": grid_step},
        notes=[f"grid best: {result.weights} at {result.best.p99_ttft:.3f}s; "
               f"paper point {PAPER_WEIGHTS} at {paper_point.p99_ttft:.3f}s"],
    )
