"""Ablation: robustness of the headline result to the stall-cost model.

Our substrate models synchronous adapter copies stealing engine time at an
effective ``load_stall_bandwidth`` (DESIGN.md).  The paper's testbed measures
this implicitly; we sweep the assumption from "copies are free" (None) to
aggressive (1 GB/s) and show the Chameleon-over-S-LoRA P99 advantage exists
for *every* setting (the scheduler + critical-path effects alone produce it)
and widens as copies get costlier (the caching effect).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)
from repro.serving.engine import EngineConfig

GB = 1024 ** 3


def run(
    rps: float = 9.0,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
    bandwidths=(None, 6.0, 3.0, 1.5, 1.0),
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    rows = []
    for bw_gb in bandwidths:
        config = EngineConfig(
            load_stall_bandwidth=None if bw_gb is None else bw_gb * GB)
        p99 = {}
        for preset in ("slora", "chameleon"):
            _, summary = run_preset(preset, trace, registry, warmup=warmup,
                                    engine_config=config)
            p99[preset] = summary.p99_ttft
        rows.append(Row(
            stall_bw_gbs=("inf" if bw_gb is None else bw_gb),
            slora_p99_s=p99["slora"],
            chameleon_p99_s=p99["chameleon"],
            advantage=(p99["slora"] / p99["chameleon"]
                       if p99["chameleon"] else float("nan")),
        ))
    return ExperimentResult(
        experiment="abl_load_stall",
        description="Sensitivity of the Chameleon advantage to the "
                    "adapter-copy stall model",
        rows=rows,
        params={"rps": rps, "duration": duration,
                "bandwidths": [str(b) for b in bandwidths]},
        notes=["'inf' = fully asynchronous copies (no engine stall)"],
    )
