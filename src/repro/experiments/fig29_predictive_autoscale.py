"""Predictive vs reactive autoscaling on a bursty trace (fig29).

fig28 made the fleet elastic, but the controller is purely *reactive*: it
scales out only after shed-rate/queue-wait pressure has been sustained, so
every burst eats a full provisioning cold start of degraded SLO before new
capacity arrives.  This figure serves the same flash-crowd trace (periodic
bursts around a moderate base rate, shed-mode SLO admission) with two
autoscaled fleets that differ only in the controller mode:

* ``reactive`` — the fig28 controller: scale out on sustained pressure.
* ``predictive`` — the same controller plus an
  :class:`~repro.predictor.load_forecast.ArrivalRateForecaster`: per-tick
  arrival counts feed a windowed trend + seasonal phase histogram (the
  burst cycle is the season), and the forecast at ``now + cold start`` is
  converted into a target replica count via the fleet's *observed*
  per-replica service rate.  Provisioning starts ``provision_delay``
  seconds ahead of the predicted demand; the reactive path remains as the
  safety net and scale-in stays reactive-only.

The headline: the predictive fleet cuts the burst-window p99 TTFT and the
shed rate at comparable replica-seconds — same SLO attainment or better,
paid for with provisioning that *leads* the burst instead of chasing it.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    trace_slo,
)
from repro.metrics.summary import percentile
from repro.serving.admission import SloPolicy
from repro.serving.autoscaler import AutoscaleConfig
from repro.serving.engine import EngineConfig
from repro.serving.replica import MultiReplicaSystem
from repro.sim.rng import RngStreams
from repro.workload.trace import SPLITWISE_PROFILE, synthesize_trace


def run(
    rps: float = 24.0,
    duration: float = 300.0,
    warmup: float = 20.0,
    seed: int = 1,
    preset: str = "chameleon",
    policy: str = "least_loaded",
    min_replicas: int = 2,
    max_replicas: int = 6,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.2,
    burst_cycle: float = 100.0,
    tick_interval: float = 1.0,
    provision_delay: float = 5.0,
    cooldown: float = 4.0,
    scale_out_step: int = 2,
    idle_sustain_ticks: int = 10,
    max_batch_size: int = 24,
    forecast_window: float = 10.0,
    target_utilization: float = 0.8,
    deadline: float = None,
) -> ExperimentResult:
    registry = standard_registry()
    trace = synthesize_trace(
        SPLITWISE_PROFILE, rps=rps, duration=duration,
        rng=RngStreams(seed).get("trace"), registry=registry,
        burst_factor=burst_factor, burst_fraction=burst_fraction,
        burst_cycle=burst_cycle)
    if deadline is None:
        deadline = trace_slo(trace, registry)  # the paper's 5x mean isolated
    engine_config = EngineConfig(max_batch_size=max_batch_size)

    def build(mode: str) -> MultiReplicaSystem:
        autoscale = AutoscaleConfig(
            min_replicas=min_replicas, max_replicas=max_replicas,
            tick_interval=tick_interval, provision_delay=provision_delay,
            cooldown=cooldown, sustain_ticks=1,
            idle_sustain_ticks=idle_sustain_ticks,
            scale_out_step=scale_out_step,
            queue_wait_threshold=deadline / 2,
            mode=mode,
            forecast_window=forecast_window,
            forecast_cycle=burst_cycle,
            target_utilization=target_utilization,
        )
        return MultiReplicaSystem.build(
            preset, n_replicas=min_replicas, dispatch_policy=policy,
            registry=registry, seed=seed, engine_config=engine_config,
            slo_policy=SloPolicy(ttft_deadline=deadline, mode="shed"),
            autoscale=autoscale,
        )

    def in_burst(t: float) -> bool:
        return (t % burst_cycle) < burst_fraction * burst_cycle

    rows = []
    for mode in ("reactive", "predictive"):
        cluster = build(mode)
        cluster.run_trace(trace.fresh())
        summary = cluster.summary(warmup=warmup, duration=duration)
        extra = summary.extra
        scaler = cluster.autoscaler
        # Burst-window tail: TTFT over completions that *arrived* during a
        # burst — exactly the requests a trailing cold start degrades.
        burst_ttfts = [
            r.ttft for r in cluster.all_requests()
            if r.arrival_time >= warmup and in_burst(r.arrival_time)
            and r.finished and r.first_token_time is not None]
        out_events = [e for e in scaler.events if e["action"] == "scale_out"]
        rows.append(Row(
            mode=mode,
            replicas=f"{min_replicas}->{scaler.peak_fleet}",
            completed=summary.n_requests,
            shed_rate=extra["shed_rate"],
            slo_attainment=extra["cluster_slo_attainment"],
            p99_ttft_s=summary.p99_ttft,
            burst_p99_ttft_s=percentile(burst_ttfts, 99),
            replica_seconds=extra["replica_seconds"],
            first_scale_out_s=(out_events[0]["time"] if out_events
                               else float("nan")),
            scale_out=scaler.scale_out_count,
            predictive_out=scaler.predictive_scale_out_count,
            scale_in=scaler.scale_in_count,
        ))
    return ExperimentResult(
        experiment="fig29",
        description=f"predictive vs reactive autoscaling ({rps} RPS mean, "
                    f"{burst_factor}x bursts every {burst_cycle}s): "
                    f"provision ahead of the burst, not after it",
        rows=rows,
        params={"rps": rps, "duration": duration, "deadline": deadline,
                "min_replicas": min_replicas, "max_replicas": max_replicas,
                "burst_factor": burst_factor, "burst_fraction": burst_fraction,
                "burst_cycle": burst_cycle, "provision_delay": provision_delay,
                "forecast_window": forecast_window,
                "target_utilization": target_utilization,
                "max_batch_size": max_batch_size, "policy": policy,
                "preset": preset},
        notes=["burst_p99_ttft_s is the p99 TTFT of completions arriving "
               "inside burst windows — the tail a trailing cold start hurts",
               "the predictive fleet should cut burst-window p99 TTFT and "
               "shed rate at <= 110% of reactive replica-seconds"],
    )
