"""Figure 7: CDF of TTFT and E2E latency with requests executed one-by-one.

Each trace request runs alone (no batching, no queueing) with and without
LoRA adapters.  The heavy-tailed length distribution shows through directly,
and adding adapters visibly shifts the tail — the paper's §3.3 observation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    Row,
    standard_registry,
    standard_trace,
)
from repro.hardware.gpu import A40_48GB
from repro.hardware.pcie import PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_7B

PERCENTILES = (10, 25, 50, 75, 90, 95, 99, 99.9)


def run(n_requests: int = 2000, seed: int = 1) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps=10.0, duration=n_requests / 10.0,
                           registry=registry, seed=seed)
    cost_model = CostModel(LLAMA_7B, A40_48GB)
    pcie = PcieSpec()

    base_ttft, base_e2e, lora_ttft, lora_e2e = [], [], [], []
    for request in trace.requests[:n_requests]:
        base_ttft.append(cost_model.isolated_ttft(request.input_tokens))
        base_e2e.append(cost_model.isolated_request_time(
            request.input_tokens, request.output_tokens))
        adapter = registry.get(request.adapter_id)
        load = pcie.setup_latency + adapter.size_bytes / pcie.bandwidth_bytes
        lora_ttft.append(cost_model.isolated_ttft(
            request.input_tokens, adapter.rank, adapter_load_time=load))
        lora_e2e.append(cost_model.isolated_request_time(
            request.input_tokens, request.output_tokens, adapter.rank,
            adapter_load_time=load))

    rows = [
        Row(percentile=p,
            base_ttft_s=float(np.percentile(base_ttft, p)),
            lora_ttft_s=float(np.percentile(lora_ttft, p)),
            base_e2e_s=float(np.percentile(base_e2e, p)),
            lora_e2e_s=float(np.percentile(lora_e2e, p)))
        for p in PERCENTILES
    ]
    return ExperimentResult(
        experiment="fig07",
        description="CDF of isolated TTFT/E2E, base LLM vs base+LoRA",
        rows=rows,
        params={"n_requests": len(trace.requests[:n_requests])},
        notes=["heavy tail: P99/P50 E2E ratio "
               f"base={np.percentile(base_e2e, 99) / np.percentile(base_e2e, 50):.1f}x, "
               f"lora={np.percentile(lora_e2e, 99) / np.percentile(lora_e2e, 50):.1f}x"],
    )
