"""Figure 5: adapter-loading share of TTFT for Llama-70B under tensor
parallelism.

A single request on an idle TP group of A100s: the loading fraction grows
with both TP degree (per-shard transfer + sync overheads) and adapter rank
(larger weights).  The paper reports e.g. ~68% for rank 32 at TP4.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Row
from repro.hardware.cluster import TensorParallelGroup
from repro.hardware.gpu import A100_80GB
from repro.hardware.pcie import PcieLink, PcieSpec
from repro.llm.costmodel import CostModel
from repro.llm.model import LLAMA_70B
from repro.sim.simulator import Simulator


def run(
    tp_degrees=(2, 4, 8),
    ranks=(8, 16, 32, 64, 128),
    input_tokens: int = 512,
) -> ExperimentResult:
    link = PcieLink(Simulator(), PcieSpec())
    rows = []
    for rank in ranks:
        row = Row(rank=rank)
        adapter_bytes = LLAMA_70B.adapter_bytes(rank)
        for tp in tp_degrees:
            group = TensorParallelGroup(A100_80GB, tp)
            cost_model = CostModel(LLAMA_70B, A100_80GB,
                                   compute_speedup=group.compute_speedup)
            load = group.adapter_load_time(link, adapter_bytes)
            compute = cost_model.prefill_time(input_tokens, rank)
            row[f"load_share_tp{tp}"] = load / (load + compute)
        rows.append(row)
    return ExperimentResult(
        experiment="fig05",
        description="Adapter-loading share of TTFT, Llama-70B on TP A100s",
        rows=rows,
        params={"tp_degrees": list(tp_degrees), "ranks": list(ranks),
                "input_tokens": input_tokens},
        notes=["share grows with both TP degree and rank (paper Figure 5)"],
    )
