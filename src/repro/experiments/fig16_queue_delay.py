"""Figure 16: average queueing delay per request size class and policy.

Requests are classified small/medium/large by their WRS (as Chameleon does);
delays are reported for S-LoRA's FIFO, SJF, and the Chameleon scheduler.
The paper: FIFO delays all classes roughly equally (28.6% of a short
request's E2E), SJF starves the large class (5.15 s vs 1.5 s), and the
Chameleon scheduler keeps every class's delay below 8% of its E2E.
"""

from __future__ import annotations

import numpy as np

from repro.core.wrs import WorkloadBounds, compute_wrs
from repro.experiments.common import (
    ExperimentResult,
    Row,
    run_preset,
    standard_registry,
    standard_trace,
)
from repro.workload.trace import SPLITWISE_PROFILE

#: The Chameleon scheduler is measured as deployed (full system), matching
#: the paper's Figure 16 where its per-class waits fall below 8% of E2E.
POLICIES = {"FIFO": "slora", "SJF": "slora_sjf", "ChameleonSched": "chameleon"}
CLASSES = ("small", "medium", "large")


def _classify(trace, registry):
    bounds = WorkloadBounds(
        max_input_tokens=SPLITWISE_PROFILE.max_input_tokens,
        max_output_tokens=SPLITWISE_PROFILE.max_output_tokens,
        max_adapter_bytes=registry.max_size_bytes,
    )
    sizes = {}
    for request in trace.requests:
        adapter_bytes = (registry.get(request.adapter_id).size_bytes
                         if request.adapter_id is not None else None)
        sizes[request.request_id] = compute_wrs(
            request.input_tokens, request.output_tokens, adapter_bytes, bounds)
    values = np.array(list(sizes.values()))
    cuts = np.quantile(values, [0.5, 0.9])

    def which(request_id):
        v = sizes[request_id]
        if v < cuts[0]:
            return "small"
        if v < cuts[1]:
            return "medium"
        return "large"

    return which


def run(
    rps: float = 10.0,
    duration: float = 240.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> ExperimentResult:
    registry = standard_registry()
    trace = standard_trace(rps, duration, registry, seed=seed)
    which = _classify(trace, registry)
    rows = []
    notes = []
    for policy_name, preset in POLICIES.items():
        system, _ = run_preset(preset, trace, registry, warmup=warmup)
        buckets = {c: [] for c in CLASSES}
        e2e_share = {c: [] for c in CLASSES}
        for request in system.engine.all_requests:
            if not request.finished or request.arrival_time < warmup:
                continue
            cls = which(request.request_id)
            # "Waiting to be scheduled" = arrival until the prefill actually
            # starts (includes admission wait, adapter wait, and the
            # per-iteration prefill budget wait).
            buckets[cls].append(request.service_wait)
            e2e_share[cls].append(request.service_wait / request.e2e_latency)
        row = Row(policy=policy_name)
        for cls in CLASSES:
            row[f"{cls}_delay_s"] = float(np.mean(buckets[cls])) if buckets[cls] else 0.0
            row[f"{cls}_e2e_share"] = (
                float(np.mean(e2e_share[cls])) if e2e_share[cls] else 0.0)
        rows.append(row)
        notes.append(
            f"{policy_name}: large/small delay ratio "
            f"{(row['large_delay_s'] / row['small_delay_s']) if row['small_delay_s'] else float('nan'):.1f}"
        )
    return ExperimentResult(
        experiment="fig16",
        description="Average queueing delay per size class and policy",
        rows=rows,
        params={"rps": rps, "duration": duration},
        notes=notes,
    )
