"""Wall-clock access for the CLI / benchmark layer.

Nothing on the simulation path may read the host's clock: a run whose
behavior depends on how fast the host executes is not reproducible, and
byte-identical reruns are what every A/B claim in this repo rests on
(simlint rule D002 enforces this statically — see :mod:`repro.analysis`).
Real time still has one legitimate job, *reporting* how long an experiment
took to execute, and this module is the single sanctioned door to it: it is
the only path-allowlisted module for D002, so every wall-clock read in the
tree is enumerable from here.

Use :class:`Stopwatch` for elapsed-time reporting::

    watch = Stopwatch()
    run_experiment()
    print(f"(elapsed: {watch.elapsed():.1f}s)")
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """The host wall clock, seconds since the epoch.

    Reporting only — simulation code wanting "now" must use its
    ``Simulator.now`` simulated clock instead.
    """
    return time.time()


class Stopwatch:
    """Measure elapsed host time for progress reporting.

    Starts on construction; :meth:`elapsed` reads without stopping, so one
    stopwatch can stamp several checkpoints.  :meth:`restart` re-arms it
    for per-iteration timing loops.
    """

    def __init__(self) -> None:
        self._start = wall_now()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return wall_now() - self._start

    def restart(self) -> None:
        """Reset the zero point to now."""
        self._start = wall_now()
