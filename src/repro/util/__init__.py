"""Small shared utilities that sit outside the simulation path."""

from repro.util.wallclock import Stopwatch, wall_now

__all__ = ["Stopwatch", "wall_now"]
