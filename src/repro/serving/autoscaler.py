"""Elastic fleet control plane: autoscaling and observed-rate capability.

The data-parallel cluster layer (PR 1/2) treats replica count as a constant;
production serving stacks treat it as a *controlled variable*.  This module
supplies the two controllers that make the fleet elastic:

* :class:`Autoscaler` — a simulated control loop evaluated every
  ``tick_interval`` seconds.  It scales **out** on sustained admission
  pressure (shed rate over the last tick window, or the dispatcher's
  estimated queue wait) and **in** on sustained idleness (low batch
  utilization with an empty global queue), within ``[min_replicas,
  max_replicas]``, with a cooldown between scale events and full event
  accounting.  Scale-out provisions replicas through a caller-supplied
  factory callback (cold-start delays apply before the newcomer joins the
  dispatch set); scale-in prefers cancelling still-cold replicas, then
  drains the least-loaded active one (draining replicas finish their
  in-flight work but accept nothing new).

* :class:`ObservedCapabilityEstimator` — replaces spec-derived
  ``capability()`` routing weights with an EWMA of each replica's *observed*
  service rate.  Spec weights (compute x HBM bandwidth) are wrong whenever
  the binding resource is something else — a PCIe-bound adapter workload
  serves no faster on an A100 than an A40 — and newly warmed replicas have
  no history at all.  The estimator measures inter-finish intervals per
  replica (same-timestamp finishes count as one drain event; idle gaps are
  excluded) and falls back to a spec prior *calibrated into observed-rate
  units* for cold replicas, so a fresh scale-out replica is offered a
  spec-proportional share of the measured fleet rate until it has history
  of its own.

Neither class imports the cluster or the replica module: both operate on
duck-typed handles (``is_active`` / ``in_flight()`` / ...), which keeps the
dependency graph acyclic (``replica`` -> ``autoscaler``, never back).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the simulated autoscaling control loop.

    Attributes:
        min_replicas: Lower fleet bound; scale-in never goes below it
            (draining replicas do not count — they are on their way out).
        max_replicas: Upper bound on concurrently *held* GPUs; scale-out
            never exceeds it counting provisioning/warming replicas (so
            pressure cannot double-provision during a cold start) **and**
            draining ones (still billed until their last finish).
        tick_interval: Control-loop period in simulated seconds.
        provision_delay: Cold-start delay a new replica pays in
            PROVISIONING before it starts warming.
        warmup_delay: Additional delay in WARMING before the replica joins
            the dispatch set.
        shed_rate_threshold: Scale-out pressure: fraction of arrivals shed
            during the last tick window above which the tick counts as
            pressured.
        queue_wait_threshold: Optional second pressure signal: the
            dispatcher's estimated queue wait (seconds) above which a tick
            counts as pressured even without sheds (useful without an SLO
            policy).  ``None`` disables it.
        idle_utilization: Scale-in signal: mean batch utilization across
            active replicas below which (with an empty global queue and no
            sheds) the tick counts as idle.
        sustain_ticks: Consecutive pressured ticks required before a
            scale-out fires — one bursty tick is not a trend.
        idle_sustain_ticks: Consecutive idle ticks required before a
            scale-in fires.  Defaults to ``sustain_ticks``; production
            controllers set it higher (scale out fast, scale in slow) so a
            short lull between bursts does not tear the fleet down.
        cooldown: Minimum simulated seconds between scale events *in the
            same direction*, so the controller observes the effect of one
            action before repeating it.  A scale-in never delays the next
            scale-out (and vice versa) — blocking an urgent scale-out on a
            recent scale-in is the classic flapping pathology.
        scale_out_step: Replicas provisioned per scale-out event.
        scale_in_step: Replicas drained per scale-in event.
        scale_out_spec: Optional replica spec for scale-out replicas (any
            ``replica_specs`` entry: GpuSpec, zoo name, EngineConfig or
            dict of build overrides), enabling heterogeneous scale-out.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    tick_interval: float = 5.0
    provision_delay: float = 10.0
    warmup_delay: float = 0.0
    shed_rate_threshold: float = 0.01
    queue_wait_threshold: Optional[float] = None
    idle_utilization: float = 0.25
    sustain_ticks: int = 2
    idle_sustain_ticks: Optional[int] = None
    cooldown: float = 20.0
    scale_out_step: int = 1
    scale_in_step: int = 1
    scale_out_spec: Any = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})")
        if self.tick_interval <= 0:
            raise ValueError(f"tick_interval must be > 0, got {self.tick_interval}")
        if self.provision_delay < 0 or self.warmup_delay < 0:
            raise ValueError("cold-start delays must be >= 0")
        if self.sustain_ticks < 1:
            raise ValueError(f"sustain_ticks must be >= 1, got {self.sustain_ticks}")
        if self.idle_sustain_ticks is not None and self.idle_sustain_ticks < 1:
            raise ValueError(
                f"idle_sustain_ticks must be >= 1, got {self.idle_sustain_ticks}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.scale_out_step < 1 or self.scale_in_step < 1:
            raise ValueError("scale steps must be >= 1")
        if not 0.0 <= self.shed_rate_threshold <= 1.0:
            raise ValueError(
                f"shed_rate_threshold must be in [0, 1], got {self.shed_rate_threshold}")
        if not 0.0 <= self.idle_utilization <= 1.0:
            raise ValueError(
                f"idle_utilization must be in [0, 1], got {self.idle_utilization}")

    @property
    def effective_idle_sustain(self) -> int:
        return self.idle_sustain_ticks if self.idle_sustain_ticks is not None \
            else self.sustain_ticks


class Autoscaler:
    """Admission-aware replica-count controller on a simulated tick.

    ``provision`` is a callback ``(spec, *, provision_delay, warmup_delay)
    -> handle`` that builds one replica on the shared clock and registers it
    with the cluster (see ``MultiReplicaSystem.provision_replica``).  The
    autoscaler never touches engines directly: it reads cluster-level
    signals and issues provision/drain commands.
    """

    def __init__(self, sim, cluster, config: AutoscaleConfig,
                 provision: Callable[..., Any]) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self._provision = provision
        #: Full scale-event log: time, action, replica indices, fleet size
        #: after the event, and the signal values that triggered it.
        self.events: list[dict] = []
        self.scale_out_count = 0
        self.scale_in_count = 0
        self.ticks = 0
        self.peak_fleet = 0
        self._pressure_ticks = 0
        self._idle_ticks = 0
        self._last_arrivals = 0
        self._last_shed = 0
        self._last_out_time: Optional[float] = None
        self._last_in_time: Optional[float] = None
        self._until: Optional[float] = None
        self._tick_event = None

    # ------------------------------------------------------------------ #
    # Control-loop scheduling
    # ------------------------------------------------------------------ #
    def start(self, until: Optional[float] = None) -> None:
        """Begin ticking.  ``until`` bounds the loop (typically the last
        arrival time or the run horizon); past it, ticks continue only while
        the cluster still holds queued or in-flight work, then stop so the
        event heap can drain."""
        self._until = until
        self.peak_fleet = max(self.peak_fleet, self.cluster.holding_count())
        self._schedule()

    def stop(self) -> None:
        """Cancel the pending tick (ends the control loop)."""
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _schedule(self) -> None:
        self._tick_event = self.sim.schedule(self.config.tick_interval, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        self.ticks += 1
        self._evaluate()
        self.peak_fleet = max(self.peak_fleet, self.cluster.holding_count())
        if self._should_continue():
            self._schedule()

    def _should_continue(self) -> bool:
        if self._until is not None and \
                self.sim.now + self.config.tick_interval <= self._until:
            return True
        return self._pending_work()

    def _pending_work(self) -> bool:
        if self.cluster.queue_len() > 0:
            return True
        return any(handle.in_flight() > 0 for handle in self.cluster.handles
                   if not handle.is_retired)

    # ------------------------------------------------------------------ #
    # Signals and decisions
    # ------------------------------------------------------------------ #
    def _evaluate(self) -> None:
        cfg = self.config
        stats = self.cluster.stats
        d_arrivals = stats.arrivals - self._last_arrivals
        d_shed = stats.shed - self._last_shed
        self._last_arrivals = stats.arrivals
        self._last_shed = stats.shed
        shed_rate = d_shed / d_arrivals if d_arrivals > 0 else 0.0
        queue_wait = self.cluster.estimated_queue_wait() \
            if self.cluster.queue_len() > 0 else 0.0
        utilization = self._utilization()

        pressure = shed_rate > cfg.shed_rate_threshold
        if cfg.queue_wait_threshold is not None:
            pressure = pressure or queue_wait > cfg.queue_wait_threshold
        idle = (not pressure and self.cluster.queue_len() == 0 and d_shed == 0
                and utilization < cfg.idle_utilization)
        if pressure:
            self._pressure_ticks += 1
            self._idle_ticks = 0
        elif idle:
            self._idle_ticks += 1
            self._pressure_ticks = 0
        else:
            self._pressure_ticks = 0
            self._idle_ticks = 0

        if pressure and self._pressure_ticks >= cfg.sustain_ticks \
                and self._cooldown_ok(self._last_out_time):
            self._scale_out(shed_rate, queue_wait, utilization)
        elif idle and self._idle_ticks >= cfg.effective_idle_sustain \
                and self._cooldown_ok(self._last_in_time):
            self._scale_in(shed_rate, queue_wait, utilization)

    def _cooldown_ok(self, last_time: Optional[float]) -> bool:
        return (last_time is None
                or self.sim.now - last_time >= self.config.cooldown)

    def _utilization(self) -> float:
        """Mean batch-fill fraction across active replicas (0 when none)."""
        fractions = []
        for handle in self.cluster.handles:
            if not handle.is_active:
                continue
            in_flight = handle.in_flight()
            capacity = self._batch_capacity(handle.engine)
            if capacity:
                fractions.append(min(1.0, in_flight / capacity))
            else:
                fractions.append(1.0 if in_flight > 0 else 0.0)
        return sum(fractions) / len(fractions) if fractions else 0.0

    @staticmethod
    def _batch_capacity(engine) -> Optional[int]:
        config = getattr(engine, "config", None)
        size = getattr(config, "max_batch_size", None)
        if size:
            return size
        return getattr(engine, "capacity", None)

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #
    def _scale_out(self, shed_rate, queue_wait, utilization) -> None:
        cfg = self.config
        # Bound by GPUs actually held (draining replicas included): a slow
        # drain must not let pressure push concurrent holding past the cap.
        room = cfg.max_replicas - self.cluster.holding_count()
        count = min(cfg.scale_out_step, room)
        if count <= 0:
            return
        added = []
        for _ in range(count):
            handle = self._provision(
                cfg.scale_out_spec,
                provision_delay=cfg.provision_delay,
                warmup_delay=cfg.warmup_delay,
            )
            added.append(handle.index)
        self.scale_out_count += 1
        self._pressure_ticks = 0
        self._last_out_time = self.sim.now
        self._record("scale_out", added, shed_rate, queue_wait, utilization)

    def _scale_in(self, shed_rate, queue_wait, utilization) -> None:
        cfg = self.config
        candidates = [h for h in self.cluster.handles if h.in_fleet]
        room = len(candidates) - cfg.min_replicas
        count = min(cfg.scale_in_step, room)
        if count <= 0:
            return
        # Cancel still-cold replicas first (they never served), then drain
        # the least-loaded active one; newest (highest index) breaks ties so
        # scale-out replicas retire before the original fleet.
        victims = sorted(
            candidates,
            key=lambda h: (0 if h.is_provisioning else 1 if h.is_warming else 2,
                           h.in_flight(), -h.index),
        )[:count]
        for handle in victims:
            self.cluster.drain_replica(handle.index)
        self.scale_in_count += 1
        self._idle_ticks = 0
        self._last_in_time = self.sim.now
        self._record("scale_in", [h.index for h in victims],
                     shed_rate, queue_wait, utilization)

    def _record(self, action, indices, shed_rate, queue_wait, utilization) -> None:
        self.events.append(dict(
            time=self.sim.now,
            action=action,
            replicas=list(indices),
            fleet_size=self.cluster.fleet_size(),
            holding=self.cluster.holding_count(),
            active=self.cluster.active_count(),
            shed_rate=round(shed_rate, 6),
            queue_wait=round(queue_wait, 6),
            utilization=round(utilization, 6),
        ))


class ObservedCapabilityEstimator:
    """Routing weights from observed per-replica service rates.

    Each replica's service rate is a **time-weighted** exponential average of
    its instantaneous finish rate: for a gap of ``dt`` seconds carrying ``k``
    finishes (finishes sharing one timestamp — a batch completing in one
    engine iteration — count as one drain event of size ``k``), the sample
    is ``k / dt`` with weight ``1 - exp(-dt / tau)``.  Time-weighting
    matters: a per-sample EWMA would give one sparse singleton finish the
    same vote as a ten-finish burst, biasing the estimate toward whichever
    replica happens to trickle (inspection bias) — weighting by elapsed time
    makes the average converge to finishes-per-busy-second.  A finish that
    leaves the engine idle closes the measurement window: the gap to the
    replica's next finish would include idle time, which is absence of
    work, not slowness.

    Cold replicas (fewer than ``min_samples`` rate samples) blend toward a
    spec prior *calibrated into observed-rate units*: the fleet-wide ratio
    of measured rates to spec capabilities converts the prior of an
    unmeasured replica into an expected rate, so a newly warmed scale-out
    replica is offered a spec-proportional share of traffic from its first
    moment.  Before any replica has history, weights reduce to the raw spec
    priors — exactly the legacy spec-derived behaviour.
    """

    def __init__(self, tau: float = 20.0, min_samples: int = 8) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be > 0, got {tau}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.tau = tau
        self.min_samples = min_samples
        self._prior: dict[int, float] = {}
        self._rate: dict[int, Optional[float]] = {}
        self._samples: dict[int, int] = {}
        self._last_finish: dict[int, Optional[float]] = {}
        self._batch: dict[int, int] = {}

    def register(self, index: int, spec_capability: float) -> None:
        """Add a replica with its spec-derived prior (arbitrary units)."""
        if spec_capability <= 0:
            raise ValueError(
                f"spec capability must be > 0, got {spec_capability}")
        self._prior[index] = float(spec_capability)
        self._rate[index] = None
        self._samples[index] = 0
        self._last_finish[index] = None
        self._batch[index] = 0

    def observe_finish(self, index: int, now: float, *, idle: bool = False) -> bool:
        """Record one finish event on replica ``index`` at time ``now``.

        ``idle=True`` means the finish left the engine with no in-flight
        work; the measurement window closes so the idle gap is not mistaken
        for service time.  Returns True when a new rate sample landed (the
        estimate changed) — same-timestamp finishes only grow the pending
        batch, so callers can skip recomputing weights for them.
        """
        sampled = False
        last = self._last_finish[index]
        if last is None:
            self._last_finish[index] = now
            self._batch[index] = 1
        elif now == last:
            self._batch[index] += 1
        else:
            dt = now - last
            instantaneous = self._batch[index] / dt
            weight = 1.0 - math.exp(-dt / self.tau)
            prev = self._rate[index]
            if prev is None:
                self._rate[index] = instantaneous
            else:
                self._rate[index] = \
                    (1.0 - weight) * prev + weight * instantaneous
            self._samples[index] += 1
            self._last_finish[index] = now
            self._batch[index] = 1
            sampled = True
        if idle:
            self._last_finish[index] = None
            self._batch[index] = 0
        return sampled

    def observed_rate(self, index: int) -> Optional[float]:
        """Finishes per busy second, or ``None`` with no samples yet."""
        return self._rate.get(index)

    def sample_count(self, index: int) -> int:
        return self._samples.get(index, 0)

    def weights(self, indices) -> dict[int, float]:
        """Relative routing weights for ``indices`` (one pass, uncalibrated
        scale — the cluster renormalizes to mean 1.0 over the active set)."""
        rates = {i: self.observed_rate(i) for i in self._prior}
        known = {i: r for i, r in rates.items() if r is not None}
        if known:
            calibration = sum(known.values()) \
                / sum(self._prior[i] for i in known)
        else:
            calibration = None
        out: dict[int, float] = {}
        for i in indices:
            prior = self._prior[i]
            prior_rate = calibration * prior if calibration is not None else prior
            rate = rates.get(i)
            if rate is None:
                out[i] = prior_rate
            else:
                blend = min(1.0, self._samples[i] / self.min_samples)
                out[i] = blend * rate + (1.0 - blend) * prior_rate
        return out

    def weight(self, index: int) -> float:
        """One replica's weight (see :meth:`weights`)."""
        return self.weights([index])[index]
