"""Elastic fleet control plane: autoscaling and observed-rate capability.

The data-parallel cluster layer (PR 1/2) treats replica count as a constant;
production serving stacks treat it as a *controlled variable*.  This module
supplies the two controllers that make the fleet elastic:

* :class:`Autoscaler` — a simulated control loop evaluated every
  ``tick_interval`` seconds.  It scales **out** on sustained admission
  pressure (shed rate over the last tick window, or the dispatcher's
  estimated queue wait) and **in** on sustained idleness (low batch
  utilization with an empty global queue), within ``[min_replicas,
  max_replicas]``, with a cooldown between scale events and full event
  accounting.  Scale-out provisions replicas through a caller-supplied
  factory callback (cold-start delays apply before the newcomer joins the
  dispatch set); scale-in prefers cancelling still-cold replicas, then
  drains the least-loaded active one (draining replicas finish their
  in-flight work but accept nothing new).

  In **predictive mode** (``mode="predictive"``) the loop additionally
  feeds every tick's arrival count into an
  :class:`~repro.predictor.load_forecast.ArrivalRateForecaster` and, on
  ticks where the reactive signals are quiet, converts the forecast at
  ``now + forecast_horizon`` into a target replica count via the fleet's
  *observed* per-replica service rate (the
  :class:`ObservedCapabilityEstimator` below).  When the target exceeds
  the fleet, scale-out fires *ahead* of the demand — the horizon defaults
  to the full cold-start latency plus one tick, so a predicted burst meets
  warm replicas instead of a provisioning delay of shed requests.  The
  reactive path stays intact as the safety net (the effective target is
  the max of both), scale-in remains reactive-only, and a reactive-mode
  controller is bit-for-bit unaffected.

* :class:`ObservedCapabilityEstimator` — replaces spec-derived
  ``capability()`` routing weights with an EWMA of each replica's *observed*
  service rate.  Spec weights (compute x HBM bandwidth) are wrong whenever
  the binding resource is something else — a PCIe-bound adapter workload
  serves no faster on an A100 than an A40 — and newly warmed replicas have
  no history at all.  The estimator measures inter-finish intervals per
  replica (same-timestamp finishes count as one drain event; idle gaps are
  excluded) and falls back to a spec prior *calibrated into observed-rate
  units* for cold replicas, so a fresh scale-out replica is offered a
  spec-proportional share of the measured fleet rate until it has history
  of its own.

Neither class imports the cluster or the replica module: both operate on
duck-typed handles (``is_active`` / ``in_flight()`` / ...), which keeps the
dependency graph acyclic (``replica`` -> ``autoscaler``, never back).
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.predictor.load_forecast import ArrivalRateForecaster


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the simulated autoscaling control loop.

    Attributes:
        min_replicas: Lower fleet bound; scale-in never goes below it
            (draining replicas do not count — they are on their way out).
        max_replicas: Upper bound on concurrently *held* GPUs; scale-out
            never exceeds it counting provisioning/warming replicas (so
            pressure cannot double-provision during a cold start) **and**
            draining ones (still billed until their last finish).
        tick_interval: Control-loop period in simulated seconds.
        provision_delay: Cold-start delay a new replica pays in
            PROVISIONING before it starts warming.
        warmup_delay: Additional delay in WARMING before the replica joins
            the dispatch set.
        shed_rate_threshold: Scale-out pressure: fraction of arrivals shed
            during the last tick window above which the tick counts as
            pressured.
        queue_wait_threshold: Optional second pressure signal: the
            dispatcher's estimated queue wait (seconds) above which a tick
            counts as pressured even without sheds (useful without an SLO
            policy).  ``None`` disables it.
        idle_utilization: Scale-in signal: mean batch utilization across
            active replicas below which (with an empty global queue and no
            sheds) the tick counts as idle.
        sustain_ticks: Consecutive pressured ticks required before a
            scale-out fires — one bursty tick is not a trend.
        idle_sustain_ticks: Consecutive idle ticks required before a
            scale-in fires.  Defaults to ``sustain_ticks``; production
            controllers set it higher (scale out fast, scale in slow) so a
            short lull between bursts does not tear the fleet down.
        cooldown: Minimum simulated seconds between scale events *in the
            same direction*, so the controller observes the effect of one
            action before repeating it.  A scale-in never delays the next
            scale-out (and vice versa) — blocking an urgent scale-out on a
            recent scale-in is the classic flapping pathology.
        scale_out_step: Replicas provisioned per scale-out event.
        scale_in_step: Replicas drained per scale-in event.
        scale_out_spec: Optional replica spec for scale-out replicas (any
            ``replica_specs`` entry: GpuSpec, zoo name, EngineConfig or
            dict of build overrides), enabling heterogeneous scale-out.
        mode: ``"reactive"`` (default — scale-out only on observed
            pressure) or ``"predictive"`` (additionally scale out ahead of
            *forecast* demand; see the module docstring).  Scale-in is
            reactive in both modes.
        self_heal: Replace crashed replicas (FAILED handles) as soon as the
            next tick observes the loss, *outside* the scale-out cooldown
            and sustain logic: failure replacement restores capacity the
            fleet already owned, so throttling it like demand-driven
            scale-out would stack a detection delay on top of the cold
            start.  Replacements use ``scale_out_spec`` and respect
            ``max_replicas``.  With no failures ever injected the knob is
            inert, in both modes, bit for bit.
        forecast_window: Trailing seconds of arrival-rate history the
            forecaster keeps (predictive mode only).
        forecast_horizon: How far ahead the forecast targets, in seconds.
            ``None`` derives ``provision_delay + warmup_delay +
            tick_interval`` — the earliest a replica provisioned *now*
            could serve, so scale-out leads demand by the full cold start.
        forecast_cycle: Optional workload period in seconds; enables the
            forecaster's seasonal phase histogram so bursts seen in
            previous cycles are predicted before they re-arrive.
        target_utilization: Fraction of the measured per-replica service
            rate the predictive target plans to, in (0, 1]: the predictive
            replica count is ``ceil(forecast_rate / (service_rate *
            target_utilization))``.  Below 1.0 leaves headroom for forecast
            error and queueing slack.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    tick_interval: float = 5.0
    provision_delay: float = 10.0
    warmup_delay: float = 0.0
    shed_rate_threshold: float = 0.01
    queue_wait_threshold: Optional[float] = None
    idle_utilization: float = 0.25
    sustain_ticks: int = 2
    idle_sustain_ticks: Optional[int] = None
    cooldown: float = 20.0
    scale_out_step: int = 1
    scale_in_step: int = 1
    scale_out_spec: Any = None
    mode: str = "reactive"
    self_heal: bool = True
    forecast_window: float = 30.0
    forecast_horizon: Optional[float] = None
    forecast_cycle: Optional[float] = None
    target_utilization: float = 0.8

    MODES = ("reactive", "predictive")

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})")
        if self.tick_interval <= 0:
            raise ValueError(f"tick_interval must be > 0, got {self.tick_interval}")
        if self.provision_delay < 0 or self.warmup_delay < 0:
            raise ValueError("cold-start delays must be >= 0")
        if self.sustain_ticks < 1:
            raise ValueError(f"sustain_ticks must be >= 1, got {self.sustain_ticks}")
        if self.idle_sustain_ticks is not None and self.idle_sustain_ticks < 1:
            raise ValueError(
                f"idle_sustain_ticks must be >= 1, got {self.idle_sustain_ticks}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.scale_out_step < 1 or self.scale_in_step < 1:
            raise ValueError("scale steps must be >= 1")
        if not 0.0 <= self.shed_rate_threshold <= 1.0:
            raise ValueError(
                f"shed_rate_threshold must be in [0, 1], got {self.shed_rate_threshold}")
        if not 0.0 <= self.idle_utilization <= 1.0:
            raise ValueError(
                f"idle_utilization must be in [0, 1], got {self.idle_utilization}")
        if self.mode not in self.MODES:
            raise ValueError(
                f"unknown autoscale mode {self.mode!r}; pick from {self.MODES}")
        if self.forecast_window <= 0:
            raise ValueError(
                f"forecast_window must be > 0, got {self.forecast_window}")
        if self.forecast_horizon is not None and self.forecast_horizon <= 0:
            raise ValueError(
                f"forecast_horizon must be > 0, got {self.forecast_horizon}")
        if self.forecast_cycle is not None and self.forecast_cycle <= 0:
            raise ValueError(
                f"forecast_cycle must be > 0, got {self.forecast_cycle}")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1], got "
                f"{self.target_utilization}")

    @property
    def effective_idle_sustain(self) -> int:
        return self.idle_sustain_ticks if self.idle_sustain_ticks is not None \
            else self.sustain_ticks

    @property
    def effective_forecast_horizon(self) -> float:
        """Forecast lead time: explicit, or the full cold-start latency plus
        one control-loop tick — the soonest a replica provisioned on this
        tick could possibly serve."""
        if self.forecast_horizon is not None:
            return self.forecast_horizon
        return self.provision_delay + self.warmup_delay + self.tick_interval


class Autoscaler:
    """Admission-aware replica-count controller on a simulated tick.

    ``provision`` is a callback ``(spec, *, provision_delay, warmup_delay)
    -> handle`` that builds one replica on the shared clock and registers it
    with the cluster (see ``MultiReplicaSystem.provision_replica``).  The
    autoscaler never touches engines directly: it reads cluster-level
    signals and issues provision/drain commands.
    """

    def __init__(self, sim, cluster, config: AutoscaleConfig,
                 provision: Callable[..., Any], *,
                 budget: Any = None, budget_key: int = 0) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self._provision = provision
        #: Optional region-wide GPU budget (duck-typed: ``report(key, n)``
        #: and ``available()``; see ``serving.region.SharedGpuBudget``).
        #: Scale-out room becomes the min of ``max_replicas`` and what the
        #: shared pool has left; holdings are re-reported every tick so
        #: GPUs freed by retirement/failure return to the pool within one
        #: control period.  ``None`` (the default) is the historic
        #: unshared behaviour, bit for bit.
        self._budget = budget
        self._budget_key = budget_key
        #: Full scale-event log: time, action, replica indices, fleet size
        #: after the event, and the signal values that triggered it.
        self.events: list[dict] = []
        self.scale_out_count = 0
        self.scale_in_count = 0
        #: Scale-out events triggered by the forecast rather than observed
        #: pressure (always 0 in reactive mode).
        self.predictive_scale_out_count = 0
        #: Failure-replacement events (self-healing; always 0 fault-free).
        self.self_heal_count = 0
        self.ticks = 0
        self.peak_fleet = 0
        #: The arrival-rate forecaster driving predictive scale-out; built
        #: from the config so two same-config controllers forecast
        #: identically.  ``None`` in reactive mode.
        self.forecaster: Optional[ArrivalRateForecaster] = (
            ArrivalRateForecaster(window=config.forecast_window,
                                  cycle=config.forecast_cycle)
            if config.mode == "predictive" else None)
        self._pressure_ticks = 0
        self._idle_ticks = 0
        self._last_arrivals = 0
        self._last_shed = 0
        self._last_finishes = 0
        self._last_migrations = 0
        self._last_out_time: Optional[float] = None
        self._last_in_time: Optional[float] = None
        self._last_eval_time: Optional[float] = None
        #: Highest per-active-replica fleet throughput over any one tick —
        #: the demonstrated service capacity the predictive target divides
        #: demand by.  Tick-window averaging matters: instantaneous finish
        #: rates spike when a batch drains in a cluster of near-simultaneous
        #: completions, and those spikes are not sustainable capacity.
        self._peak_service_rate: Optional[float] = None
        #: The same peak, per unit of *spec capability* instead of per
        #: replica — the unit the heterogeneous predictive target needs so
        #: a cheap-GPU ``scale_out_spec`` is not sized by the fleet mean.
        self._peak_rate_per_cap: Optional[float] = None
        #: Resolved raw capability of ``scale_out_spec`` (lazy; ``None``
        #: until computed, ``0.0`` when unresolvable).
        self._scale_out_cap: Optional[float] = None
        #: Crashed replicas already seen (and replaced) by self-healing.
        self._failures_seen = 0
        #: Lifecycle-log read position for `_serving_handles` (entries
        #: before it were already credited to a previous tick window).
        self._log_cursor = 0
        self._until: Optional[float] = None
        self._tick_event = None
        #: Observability hook (see repro.obs): ``None`` keeps the
        #: ``_record`` hook site a bare attribute check.
        self._tracer = None
        self._trace_tid = 1

    def attach_tracer(self, tracer, tid: int = 1) -> None:
        """Mirror every scale event as an ``autoscale`` instant on the
        dispatcher track ``tid`` of the attached tracer."""
        self._tracer = tracer
        self._trace_tid = tid

    # ------------------------------------------------------------------ #
    # Control-loop scheduling
    # ------------------------------------------------------------------ #
    def start(self, until: Optional[float] = None) -> None:
        """Begin ticking.  ``until`` bounds the loop (typically the last
        arrival time or the run horizon); past it, ticks continue only while
        the cluster still holds queued or in-flight work, then stop so the
        event heap can drain."""
        self._until = until
        self._last_eval_time = self.sim.now
        self.peak_fleet = max(self.peak_fleet, self.cluster.holding_count())
        self._schedule()

    def stop(self) -> None:
        """Cancel the pending tick (ends the control loop)."""
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _schedule(self) -> None:
        self._tick_event = self.sim.schedule(self.config.tick_interval, self._tick)

    def _tick(self) -> None:
        self._tick_event = None
        self.ticks += 1
        if self._budget is not None:
            # Refresh this shard's claim on the shared pool before any
            # decision: GPUs freed since the last tick become available to
            # sibling shards' controllers immediately.
            self._budget.report(self._budget_key, self.cluster.holding_count())
        self._evaluate()
        self.peak_fleet = max(self.peak_fleet, self.cluster.holding_count())
        if self._should_continue():
            self._schedule()

    def _should_continue(self) -> bool:
        if self._until is not None and \
                self.sim.now + self.config.tick_interval <= self._until:
            return True
        return self._pending_work()

    def _pending_work(self) -> bool:
        # O(1) against a cluster exposing the fleet-wide in-flight counter
        # (PR 8); the sweep below stays for duck-typed test fakes.
        probe = getattr(self.cluster, "has_pending_work", None)
        if callable(probe):
            return bool(probe())
        if self.cluster.queue_len() > 0:
            return True
        return any(handle.in_flight() > 0 for handle in self.cluster.handles
                   if not handle.is_retired)

    # ------------------------------------------------------------------ #
    # Signals and decisions
    # ------------------------------------------------------------------ #
    def _evaluate(self) -> None:
        cfg = self.config
        stats = self.cluster.stats
        d_arrivals = stats.arrivals - self._last_arrivals
        d_shed = stats.shed - self._last_shed
        d_finishes = getattr(stats, "finishes", 0) - self._last_finishes
        d_migrations = getattr(stats, "migrations", 0) - self._last_migrations
        self._last_arrivals = stats.arrivals
        self._last_shed = stats.shed
        self._last_finishes = getattr(stats, "finishes", 0)
        self._last_migrations = getattr(stats, "migrations", 0)
        if self.forecaster is not None:
            # One rate bucket per tick.  A zero-width bucket (a tick landing
            # on the start timestamp) carries no rate and is skipped.  The
            # forecaster sees *fresh* demand only: migration re-offers after
            # a crash re-enter the dispatcher's arrival counter, but they
            # are recycled work, not an arrival-rate spike to extrapolate.
            now = self.sim.now
            if self._last_eval_time is not None and now > self._last_eval_time:
                self.forecaster.observe(self._last_eval_time, now,
                                        d_arrivals - d_migrations)
                self._observe_throughput(d_finishes, now - self._last_eval_time)
            self._last_eval_time = now
        shed_rate = d_shed / d_arrivals if d_arrivals > 0 else 0.0
        queue_wait = self.cluster.estimated_queue_wait() \
            if self.cluster.queue_len() > 0 else 0.0
        utilization = self._utilization()

        # Self-healing runs before the demand logic and outside its
        # cooldown/sustain throttles: a crash is not a demand signal, it is
        # capacity the fleet already owned vanishing, and every tick spent
        # "sustaining" it is a tick of elevated shed.  Fault-free fleets
        # never observe a FAILED handle, so this path is inert for them.
        if cfg.self_heal:
            failed_probe = getattr(self.cluster, "failed_count", None)
            failed = failed_probe() if callable(failed_probe) else sum(
                1 for handle in self.cluster.handles
                if getattr(handle, "is_failed", False))
            if failed > self._failures_seen:
                self._heal(failed - self._failures_seen,
                           shed_rate, queue_wait, utilization)
                self._failures_seen = failed

        pressure = shed_rate > cfg.shed_rate_threshold
        if cfg.queue_wait_threshold is not None:
            pressure = pressure or queue_wait > cfg.queue_wait_threshold
        idle = (not pressure and self.cluster.queue_len() == 0 and d_shed == 0
                and utilization < cfg.idle_utilization)
        if pressure:
            self._pressure_ticks += 1
            self._idle_ticks = 0
        elif idle:
            self._idle_ticks += 1
            self._pressure_ticks = 0
        else:
            self._pressure_ticks = 0
            self._idle_ticks = 0

        scaled = False
        if pressure and self._pressure_ticks >= cfg.sustain_ticks \
                and self._cooldown_ok(self._last_out_time):
            scaled = self._scale_out(shed_rate, queue_wait, utilization)
        elif idle and self._idle_ticks >= cfg.effective_idle_sustain \
                and self._cooldown_ok(self._last_in_time):
            scaled = self._scale_in(shed_rate, queue_wait, utilization)
        # Predictive scale-out: on ticks where the reactive path did not
        # *act* (at most one scale event per tick; an attempt that no-ops at
        # a fleet bound does not count — an idle fleet pinned at
        # min_replicas is exactly the lull predictive mode exists for), ask
        # the forecast whether demand a cold-start away exceeds what the
        # fleet can serve, and provision ahead of it.  The reactive path
        # above is untouched — on any tick where it acts, it wins — so the
        # effective scale-out target is the max of both.
        if not scaled and self.forecaster is not None \
                and self._cooldown_ok(self._last_out_time):
            self._evaluate_predictive(shed_rate, queue_wait, utilization)

    def _cooldown_ok(self, last_time: Optional[float]) -> bool:
        return (last_time is None
                or self.sim.now - last_time >= self.config.cooldown)

    # ------------------------------------------------------------------ #
    # Predictive scale-out
    # ------------------------------------------------------------------ #
    def _evaluate_predictive(self, shed_rate, queue_wait, utilization) -> None:
        cfg = self.config
        horizon = cfg.effective_forecast_horizon
        if self._until is not None and self.sim.now + horizon > self._until:
            # The predicted demand lands past the run's arrival window:
            # provisioning for it would bill replicas that never serve.
            return
        forecast = self.forecaster.forecast(self.sim.now, horizon)
        # Plan to the *lower* confidence band: pre-provisioning is a bet paid
        # in replica-seconds, so it is only placed on demand the forecaster
        # is confident about — a noisy trend extrapolation has a wide band
        # and a low floor, a burst seen in previous cycles a high one.
        # Underestimates cost nothing extra: the reactive net still fires.
        #
        # And only on predicted demand *growth*: a fleet keeping up with a
        # steady load demonstrates exactly that load as its throughput, so
        # dividing an unchanged forecast by it would inflate the target by
        # 1/target_utilization forever.  Demand already here is the reactive
        # controller's business; the forecast's job is what comes next.
        if forecast.lower <= self.forecaster.observed_rate():
            return
        service_rate = self._per_replica_service_rate()
        if service_rate is None:
            return  # no measured capacity yet: the reactive net owns this
        fleet = self.cluster.fleet_size()
        want = self._scale_out_deficit(forecast.lower, service_rate, fleet)
        if want <= 0:
            return
        added = self._provision_replicas(want)
        if not added:
            return
        self.predictive_scale_out_count += 1
        self._record(
            "scale_out", added, shed_rate, queue_wait, utilization,
            reason="predictive",
            forecast_rate=round(forecast.rate, 6),
            forecast_lower=round(forecast.lower, 6),
            forecast_upper=round(forecast.upper, 6),
            forecast_basis=forecast.basis,
            forecast_horizon=round(horizon, 6),
            service_rate=round(service_rate, 6),
            target_replicas=fleet + want,
        )

    def _scale_out_deficit(self, demand_rate: float, service_rate: float,
                           fleet: int) -> int:
        """Replicas to add so the fleet serves ``demand_rate`` at
        ``target_utilization``.

        Homogeneous fleets (or an unresolvable ``scale_out_spec``) use the
        demonstrated fleet-mean per-replica capacity — the historic path,
        bit for bit.  When ``scale_out_spec`` resolves to a capability that
        differs from the in-fleet replicas', the target switches to
        *per-replica* demonstrated capacity: throughput per spec-capability
        unit (the tick-window peak, like the fleet-mean path) times each
        replica's own capability.  Sizing a cheap-GPU scale-out by the
        fleet mean would credit every newcomer with the big-GPU rate and
        under-provision exactly when the capacity is needed.
        """
        cfg = self.config
        out_cap = self._scale_out_capability()
        if out_cap is not None and self._peak_rate_per_cap is not None:
            caps = self.cluster.raw_capabilities()
            fleet_rate = self._peak_rate_per_cap * sum(
                caps[h.index] for h in self.cluster.handles if h.in_fleet)
            deficit = demand_rate / cfg.target_utilization - fleet_rate
            if deficit <= 0:
                return 0
            return math.ceil(deficit / (self._peak_rate_per_cap * out_cap))
        target = math.ceil(
            demand_rate / (service_rate * cfg.target_utilization))
        return target - fleet

    def _scale_out_capability(self) -> Optional[float]:
        """Raw capability of one ``scale_out_spec`` replica, or ``None``
        when the fleet-mean path applies: no spec configured, the spec
        carries no resolvable GPU (an EngineConfig, a dict of non-GPU
        overrides), the cluster exposes no capability probes, or the spec
        matches every in-fleet replica's capability — the heterogeneous
        math reduces to the mean there, so the legacy path is kept bit for
        bit."""
        spec = self.config.scale_out_spec
        if spec is None:
            return None
        caps_fn = getattr(self.cluster, "raw_capabilities", None)
        if not callable(caps_fn):
            return None
        if self._scale_out_cap is None:
            self._scale_out_cap = _spec_capability(spec)
        # Scale-out replicas share the fleet's build_kwargs (TP degree
        # included) — only the GPU differs — so the fleet's uniform TP
        # speedup applies to the newcomer too.  Without this, a TP fleet
        # whose scale_out_spec names its own GPU would be misclassified as
        # heterogeneous and each newcomer's rate understated by the
        # speedup factor.
        cap = self._scale_out_cap * self._fleet_speedup()
        if cap <= 0:
            return None
        caps = caps_fn()
        in_fleet = [caps[h.index] for h in self.cluster.handles
                    if h.in_fleet]
        if all(abs(c - cap) <= 1e-9 * cap for c in in_fleet):
            return None
        return cap

    def _fleet_speedup(self) -> float:
        """Ratio of the in-fleet engines' registered capability probes to
        their GPUs' raw ``sqrt(tflops * bandwidth)`` — the TP compute
        speedup baked into ``ServingEngine.capability``.  1.0 when engines
        expose no GPU spec (test fakes), report no uplift, or disagree
        (mixed TP degrees: no single factor applies to a newcomer)."""
        caps = self.cluster.raw_capabilities()
        ratios = []
        for handle in self.cluster.handles:
            if not handle.in_fleet:
                continue
            spec = getattr(getattr(handle.engine, "gpu", None), "spec", None)
            if spec is None:
                return 1.0
            base = float(
                (spec.peak_tflops * spec.mem_bandwidth_bytes) ** 0.5)
            if base <= 0:
                return 1.0
            ratios.append(caps[handle.index] / base)
        if not ratios:
            return 1.0
        if max(ratios) - min(ratios) > 1e-9 * max(ratios):
            return 1.0
        return ratios[0]

    def _observe_throughput(self, d_finishes: int, dt: float) -> None:
        """Track the peak per-replica fleet throughput per tick.

        The finish counter is cluster-wide, so the denominator must count
        every replica that could have contributed during the tick: the
        active set, DRAINING replicas (still emptying), and replicas that
        *retired or failed within this tick* after serving (a drainer
        flushing its last batch and retiring on its final finish, a replica
        serving half the tick before crashing).  Counting fewer would
        credit their work to the survivors, and the peak ratchet would
        latch that phantom per-replica capacity forever.

        Alongside the per-replica peak, the same window ratchets the peak
        throughput per unit of *spec capability* — the denominator the
        heterogeneous predictive target needs (see
        :meth:`_scale_out_deficit`).
        """
        tick_start = self.sim.now - dt
        serving = self._serving_handles(tick_start)
        if d_finishes <= 0 or dt <= 0 or not serving:
            return
        rate = d_finishes / dt / len(serving)
        if self._peak_service_rate is None or rate > self._peak_service_rate:
            self._peak_service_rate = rate
        caps_fn = getattr(self.cluster, "raw_capabilities", None)
        if callable(caps_fn):
            caps = caps_fn()
            cap_sum = sum(caps[handle.index] for handle in serving)
            if cap_sum > 0:
                per_cap = d_finishes / dt / cap_sum
                if self._peak_rate_per_cap is None \
                        or per_cap > self._peak_rate_per_cap:
                    self._peak_rate_per_cap = per_cap

    def _serving_handles(self, tick_start: float) -> list:
        """Handles credited with this tick window's finishes (ascending
        index): the ACTIVE/DRAINING cache, plus replicas that retired or
        failed *within* the window after serving.

        Against a cluster exposing ``serving_indices`` and a
        ``lifecycle_log`` this is O(serving + transitions-this-tick): the
        cache answers the live set, and the log entries since the previous
        tick (a cursor, not a sweep) surface the mid-tick exits.  Clusters
        without the caches — duck-typed test fakes — keep the full fleet
        sweep, bit for bit.
        """
        handles = self.cluster.handles
        cache_fn = getattr(self.cluster, "serving_indices", None)
        log = getattr(self.cluster, "lifecycle_log", None)
        if not callable(cache_fn) or log is None:
            def ended_mid_tick(handle) -> bool:
                if handle.active_at is None:
                    return False  # never served: nothing to credit
                if handle.is_retired:
                    return handle.retired_at > tick_start
                if getattr(handle, "is_failed", False):
                    return handle.failed_at > tick_start
                return False

            return [
                handle for handle in handles
                if handle.is_active or handle.is_draining
                or ended_mid_tick(handle)]
        indices = cache_fn()
        ended = [
            index for time, index, state in log[self._log_cursor:]
            if time > tick_start and state in ("retired", "failed")
            and handles[index].active_at is not None]
        self._log_cursor = len(log)
        if ended:
            # Terminal states are disjoint from the serving cache, so the
            # merge is duplicate-free; sorting restores the ascending-index
            # order the legacy sweep summed capabilities in.
            indices = sorted(indices + ended)
        return [handles[index] for index in indices]

    def _per_replica_service_rate(self) -> Optional[float]:
        """Demonstrated per-replica service capacity, or ``None`` before
        any tick has observed finishes.

        The unit converting a forecast arrival rate into a replica count
        must be *capacity*, not current throughput: a lightly loaded fleet
        finishes exactly as fast as work arrives, so dividing a burst
        forecast by the lull throughput would over-provision precisely when
        the fleet is idlest.  The peak one-tick throughput per active
        replica is the capacity the fleet has actually demonstrated (the
        first burst calibrates it for every later one).
        """
        return self._peak_service_rate

    def _utilization(self) -> float:
        """Mean batch-fill fraction across active replicas (0 when none).

        O(active) against a cluster exposing the ``active_indices`` cache
        (the sweep it replaces walked every handle ever built, retired and
        failed included, every tick); duck-typed fakes keep the sweep.
        """
        indices_fn = getattr(self.cluster, "active_indices", None)
        if callable(indices_fn):
            handles = [self.cluster.handles[i] for i in indices_fn()]
        else:
            handles = [h for h in self.cluster.handles if h.is_active]
        fractions = []
        for handle in handles:
            in_flight = handle.in_flight()
            capacity = self._batch_capacity(handle.engine)
            if capacity:
                fractions.append(min(1.0, in_flight / capacity))
            else:
                fractions.append(1.0 if in_flight > 0 else 0.0)
        return sum(fractions) / len(fractions) if fractions else 0.0

    @staticmethod
    def _batch_capacity(engine) -> Optional[int]:
        config = getattr(engine, "config", None)
        size = getattr(config, "max_batch_size", None)
        if size:
            return size
        return getattr(engine, "capacity", None)

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #
    def _room(self, max_replicas: int) -> int:
        """GPUs this controller may still acquire: the per-shard ceiling
        over held GPUs, intersected with the shared region budget when one
        is attached (reporting current holdings first, so a stale claim
        never blocks the pool's own owner)."""
        holding = self.cluster.holding_count()
        room = max_replicas - holding
        if self._budget is not None:
            self._budget.report(self._budget_key, holding)
            room = min(room, self._budget.available())
        return room

    def _provision_replicas(self, want: int) -> list:
        """Provision up to ``want`` replicas and run the shared scale-out
        bookkeeping; returns the new replica indices ([] when the holding
        ceiling left no room).

        Bounded by GPUs actually held (draining replicas included): a slow
        drain must not let pressure push concurrent holding past the cap.
        A scale-out — forecast-driven ones typically fire in a lull —
        also restarts the idle streak: one more idle tick could otherwise
        trigger a scale-in that cancels the still-cold replicas just
        provisioned (scale-in victimizes cold replicas first).

        Under a shared region budget, room is additionally capped by what
        the pool has left after every sibling shard's holdings — and the
        claim is re-reported immediately after provisioning, so two shards
        scaling out in the same control period cannot both spend the last
        GPU.
        """
        cfg = self.config
        room = self._room(cfg.max_replicas)
        count = min(want, room)
        if count <= 0:
            return []
        added = []
        for _ in range(count):
            handle = self._provision(
                cfg.scale_out_spec,
                provision_delay=cfg.provision_delay,
                warmup_delay=cfg.warmup_delay,
            )
            added.append(handle.index)
        if self._budget is not None:
            self._budget.report(self._budget_key, self.cluster.holding_count())
        self.scale_out_count += 1
        self._pressure_ticks = 0
        self._idle_ticks = 0
        self._last_out_time = self.sim.now
        return added

    def _scale_out(self, shed_rate, queue_wait, utilization) -> bool:
        """Reactive scale-out; True when replicas were actually added."""
        added = self._provision_replicas(self.config.scale_out_step)
        if not added:
            return False
        self._record("scale_out", added, shed_rate, queue_wait, utilization)
        return True

    def _heal(self, count, shed_rate, queue_wait, utilization) -> None:
        """Replace ``count`` crashed replicas (self-healing).

        Deliberately bypasses ``_provision_replicas``: failure replacement
        must not consume the scale-out cooldown (an urgent demand-driven
        scale-out right after a crash stays legal) nor reset the pressure
        streak (the crash does not erase the shed the controller was
        watching).  It does reset the idle streak — the replacements are
        cold, and an immediate scale-in would victimize exactly them.
        Bounded by ``max_replicas`` over *held* GPUs (and the shared region
        budget, when one is set); capacity that cannot be replaced here is
        re-acquired by the reactive path under pressure.
        """
        cfg = self.config
        room = self._room(cfg.max_replicas)
        n = min(count, room)
        if n <= 0:
            return
        added = []
        for _ in range(n):
            handle = self._provision(
                cfg.scale_out_spec,
                provision_delay=cfg.provision_delay,
                warmup_delay=cfg.warmup_delay,
            )
            added.append(handle.index)
        if self._budget is not None:
            self._budget.report(self._budget_key, self.cluster.holding_count())
        self.self_heal_count += 1
        self._idle_ticks = 0
        self._record("self_heal", added, shed_rate, queue_wait, utilization,
                     reason="failure_replacement", failures=count)

    def _scale_in(self, shed_rate, queue_wait, utilization) -> bool:
        """Reactive scale-in; True when replicas were actually drained."""
        cfg = self.config
        candidates = [h for h in self.cluster.handles if h.in_fleet]
        room = len(candidates) - cfg.min_replicas
        count = min(cfg.scale_in_step, room)
        if count <= 0:
            return False
        # Cancel still-cold replicas first (they never served), then drain
        # the least-loaded active one; newest (highest index) breaks ties so
        # scale-out replicas retire before the original fleet.
        victims = sorted(
            candidates,
            key=lambda h: (0 if h.is_provisioning else 1 if h.is_warming else 2,
                           h.in_flight(), -h.index),
        )[:count]
        for handle in victims:
            self.cluster.drain_replica(handle.index)
        self.scale_in_count += 1
        self._idle_ticks = 0
        self._last_in_time = self.sim.now
        self._record("scale_in", [h.index for h in victims],
                     shed_rate, queue_wait, utilization)
        return True

    def _record(self, action, indices, shed_rate, queue_wait, utilization,
                **extra) -> None:
        """Append one scale event.  ``extra`` carries the predictive
        diagnostics (forecast, service rate, target); reactive events take
        none, so their records stay byte-identical across modes."""
        self.events.append(dict(
            time=self.sim.now,
            action=action,
            replicas=list(indices),
            fleet_size=self.cluster.fleet_size(),
            holding=self.cluster.holding_count(),
            active=self.cluster.active_count(),
            shed_rate=round(shed_rate, 6),
            queue_wait=round(queue_wait, 6),
            utilization=round(utilization, 6),
            **extra,
        ))
        if self._tracer is not None:
            self._tracer.instant(
                "autoscale", self.sim.now, self._trace_tid,
                action=action, replicas=list(indices),
                fleet_size=self.cluster.fleet_size())


def _spec_capability(spec) -> float:
    """Resolve a ``scale_out_spec`` entry to the raw capability probe an
    engine on that GPU would report (``sqrt(peak_tflops * HBM bandwidth)``,
    TP degree 1 — the same formula as ``ServingEngine.capability``), or 0.0
    when the entry carries no GPU information."""
    if isinstance(spec, dict):
        spec = spec.get("gpu")
    if spec is None:
        return 0.0
    try:
        from repro.systems import resolve_gpu  # lazy: avoid import cycle
        gpu = resolve_gpu(spec)
    except (ValueError, TypeError):
        return 0.0
    return float((gpu.peak_tflops * gpu.mem_bandwidth_bytes) ** 0.5)


class ObservedCapabilityEstimator:
    """Routing weights from observed per-replica service rates.

    Each replica's service rate is a **time-weighted** exponential average of
    its instantaneous finish rate: for a gap of ``dt`` seconds carrying ``k``
    finishes (finishes sharing one timestamp — a batch completing in one
    engine iteration — count as one drain event of size ``k``), the sample
    is ``k / dt`` with weight ``1 - exp(-dt / tau)``.  Time-weighting
    matters: a per-sample EWMA would give one sparse singleton finish the
    same vote as a ten-finish burst, biasing the estimate toward whichever
    replica happens to trickle (inspection bias) — weighting by elapsed time
    makes the average converge to finishes-per-busy-second.  A finish that
    leaves the engine idle closes the measurement window: the gap to the
    replica's next finish would include idle time, which is absence of
    work, not slowness.

    Cold replicas (fewer than ``min_samples`` rate samples) blend toward a
    spec prior *calibrated into observed-rate units*: the fleet-wide ratio
    of measured rates to spec capabilities converts the prior of an
    unmeasured replica into an expected rate, so a newly warmed scale-out
    replica is offered a spec-proportional share of traffic from its first
    moment.  Before any replica has history, weights reduce to the raw spec
    priors — exactly the legacy spec-derived behaviour.
    """

    def __init__(self, tau: float = 20.0, min_samples: int = 8) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be > 0, got {tau}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.tau = tau
        self.min_samples = min_samples
        self._prior: dict[int, float] = {}
        self._rate: dict[int, Optional[float]] = {}
        self._samples: dict[int, int] = {}
        self._last_finish: dict[int, Optional[float]] = {}
        self._batch: dict[int, int] = {}
        #: Indices with at least one rate sample, ascending — the
        #: calibration sum in :meth:`weights` iterates this instead of
        #: scanning every replica ever registered.  Ascending order matches
        #: the legacy full-scan dict order (priors register in index
        #: order), so the float sums are bit-identical.
        self._sampled: list[int] = []

    def register(self, index: int, spec_capability: float) -> None:
        """Add a replica with its spec-derived prior (arbitrary units)."""
        if spec_capability <= 0:
            raise ValueError(
                f"spec capability must be > 0, got {spec_capability}")
        if self._rate.get(index) is not None:
            # Re-registration resets the history; drop the stale sample
            # marker so the calibration sum does not read a None rate.
            self._sampled.remove(index)
        self._prior[index] = float(spec_capability)
        self._rate[index] = None
        self._samples[index] = 0
        self._last_finish[index] = None
        self._batch[index] = 0

    def observe_finish(self, index: int, now: float, *, idle: bool = False) -> bool:
        """Record one finish event on replica ``index`` at time ``now``.

        ``idle=True`` means the finish left the engine with no in-flight
        work; the measurement window closes so the idle gap is not mistaken
        for service time.  Returns True when a new rate sample landed (the
        estimate changed) — same-timestamp finishes only grow the pending
        batch, so callers can skip recomputing weights for them.
        """
        sampled = False
        last = self._last_finish[index]
        if last is None:
            self._last_finish[index] = now
            self._batch[index] = 1
        elif now == last:
            self._batch[index] += 1
        else:
            dt = now - last
            instantaneous = self._batch[index] / dt
            weight = 1.0 - math.exp(-dt / self.tau)
            prev = self._rate[index]
            if prev is None:
                self._rate[index] = instantaneous
                insort(self._sampled, index)
            else:
                self._rate[index] = \
                    (1.0 - weight) * prev + weight * instantaneous
            self._samples[index] += 1
            self._last_finish[index] = now
            self._batch[index] = 1
            sampled = True
        if idle:
            self._last_finish[index] = None
            self._batch[index] = 0
        return sampled

    def observed_rate(self, index: int) -> Optional[float]:
        """Finishes per busy second, or ``None`` with no samples yet."""
        return self._rate.get(index)

    def sample_count(self, index: int) -> int:
        return self._samples.get(index, 0)

    def weights(self, indices) -> dict[int, float]:
        """Relative routing weights for ``indices`` (one pass, uncalibrated
        scale — the cluster renormalizes to mean 1.0 over the active set).

        O(sampled + len(indices)): the calibration ratio sums over the
        ``_sampled`` index list rather than sweeping every replica ever
        registered (this runs on every finish-driven weight refresh, so a
        full-history scan would grow with fleet churn, not fleet size).
        """
        sampled = self._sampled
        if sampled:
            calibration = sum(self._rate[i] for i in sampled) \
                / sum(self._prior[i] for i in sampled)
        else:
            calibration = None
        out: dict[int, float] = {}
        for i in indices:
            prior = self._prior[i]
            prior_rate = calibration * prior if calibration is not None else prior
            rate = self._rate.get(i)
            if rate is None:
                out[i] = prior_rate
            else:
                blend = min(1.0, self._samples[i] / self.min_samples)
                out[i] = blend * rate + (1.0 - blend) * prior_rate
        return out

    def weight(self, index: int) -> float:
        """One replica's weight (see :meth:`weights`)."""
        return self.weights([index])[index]
