"""Baseline scheduling policies: FIFO and (speculative) SJF.

Both are *non-preemptive iteration-level* schedulers: at every engine
iteration, ``select`` gets a chance to admit waiting requests into the
continuous batch.  FIFO stops at the first request that does not fit — that
strict head-of-line behaviour is exactly what produces the paper's §3.3
blocking effect.  SJF (µServe-style) orders by the *predicted* output length
with an optional linear aging term.

The Chameleon multi-level-queue scheduler lives in :mod:`repro.core.mlq` and
implements the same interface.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Iterable

from repro.serving.admission import AdmissionContext, AdmitResult
from repro.workload.request import Request


class Scheduler(abc.ABC):
    """Interface every scheduling policy implements."""

    #: Whether this policy consumes ``predicted_output_tokens``.
    needs_predictions: bool = False

    @abc.abstractmethod
    def enqueue(self, request: Request, now: float) -> None:
        """Accept a newly-arrived request."""

    @abc.abstractmethod
    def requeue_front(self, request: Request, now: float) -> None:
        """Re-admit a squashed request at the front of its queue."""

    @abc.abstractmethod
    def select(self, ctx: AdmissionContext) -> None:
        """Admit requests for this iteration via ``ctx.try_admit``."""

    @abc.abstractmethod
    def queued_requests(self) -> Iterable[Request]:
        """The requests currently waiting (order unspecified)."""

    @abc.abstractmethod
    def drain(self) -> list[Request]:
        """Remove and return every queued request (in queue order).

        Used by replica-failure evacuation: a dead replica's local queue is
        migrated back to the cluster dispatcher, so the scheduler must give
        the requests up rather than hold them forever.
        """

    def queue_len(self) -> int:
        return sum(1 for _ in self.queued_requests())

    def queued_adapter_ids(self) -> set:
        """Adapters queued requests will need (for cache retention, §4.2.2)."""
        return {
            r.adapter_id for r in self.queued_requests() if r.adapter_id is not None
        }

    def on_finish(self, request: Request, now: float) -> None:
        """A previously-admitted request completed."""

    def on_schedule(self, now: float) -> None:
        """Called at the start of every scheduling round (refresh hooks)."""


class FifoScheduler(Scheduler):
    """Strict first-in-first-out admission (the S-LoRA default).

    The head of the queue blocks everything behind it: if the head cannot be
    admitted (memory, adapter room, batch cap), no younger request is tried.
    """

    def __init__(self) -> None:
        self._queue: deque[Request] = deque()

    def enqueue(self, request: Request, now: float) -> None:
        self._queue.append(request)

    def requeue_front(self, request: Request, now: float) -> None:
        self._queue.appendleft(request)

    def select(self, ctx: AdmissionContext) -> None:
        while self._queue:
            result = ctx.try_admit(self._queue[0])
            if result is not AdmitResult.ADMITTED:
                break
            self._queue.popleft()

    def queued_requests(self) -> Iterable[Request]:
        return list(self._queue)

    def drain(self) -> list[Request]:
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def queue_len(self) -> int:
        return len(self._queue)


class SjfScheduler(Scheduler):
    """Speculative shortest-job-first (µServe [46]) with linear aging.

    Priority of a waiting request is its predicted output length minus
    ``aging_rate * wait_seconds``; the smallest priority is served first.
    With ``aging_rate = 0`` this is pure SJF and long requests can starve —
    the behaviour Figure 15/16 of the paper demonstrates.
    """

    needs_predictions = True

    def __init__(self, aging_rate: float = 0.0) -> None:
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0, got {aging_rate}")
        self.aging_rate = aging_rate
        self._queue: list[Request] = []

    def _priority(self, request: Request, now: float) -> float:
        predicted = request.predicted_output_tokens
        if predicted is None:
            raise RuntimeError("SJF requires output-length predictions")
        waited = now - (request.enqueue_time if request.enqueue_time is not None else now)
        return predicted - self.aging_rate * waited

    def enqueue(self, request: Request, now: float) -> None:
        self._queue.append(request)

    def requeue_front(self, request: Request, now: float) -> None:
        self._queue.append(request)  # order is recomputed every round anyway

    def select(self, ctx: AdmissionContext) -> None:
        now = ctx.now
        self._queue.sort(key=lambda r: self._priority(r, now))
        admitted = []
        for request in self._queue:
            result = ctx.try_admit(request)
            if result is not AdmitResult.ADMITTED:
                break
            admitted.append(request)
        if admitted:
            taken = set(id(r) for r in admitted)
            self._queue = [r for r in self._queue if id(r) not in taken]

    def queued_requests(self) -> Iterable[Request]:
        return list(self._queue)

    def drain(self) -> list[Request]:
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def queue_len(self) -> int:
        return len(self._queue)
