"""Adapter residency management.

The base class owns everything both systems share: residency states, pinning
via reference counters, transfer orchestration over the PCIe link, usage
metadata (recency / decayed frequency), queue-aware retention, and hit/miss
telemetry.  The two concrete managers differ only in what happens when an
adapter goes idle and in the eviction order:

* :class:`SloraAdapterManager` — the baseline (§2, Figure 1): adapters are
  fetched on demand (with asynchronous prefetch for queued requests) and
  **discarded** as soon as no running or queued request needs them.
* :class:`repro.core.cache.ChameleonCacheManager` — keeps idle adapters in a
  dynamically-sized cache carved out of idle GPU memory, with a cost-aware
  eviction policy (§4.2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.adapters.registry import AdapterRegistry
from repro.hardware.cluster import TensorParallelGroup
from repro.hardware.gpu import GpuDevice
from repro.hardware.pcie import PcieLink, Transfer
from repro.sim.simulator import Simulator
from repro.workload.request import Request

#: Half-life of the decayed usage-frequency counter, seconds.
FREQUENCY_HALF_LIFE = 120.0


class AdapterState(enum.Enum):
    MISSING = "missing"
    LOADING = "loading"
    RESIDENT = "resident"


@dataclass
class AdapterEntry:
    """Runtime state + §4.2 metadata for one adapter on one device.

    The metadata fields mirror the paper's cache-entry list: adapter id,
    rank, last-used timestamp, usage frequency, and reference counter.
    """

    adapter_id: int
    rank: int
    size_bytes: int
    state: AdapterState = AdapterState.MISSING
    refcount: int = 0
    last_used: float = float("-inf")
    frequency: float = 0.0
    _freq_updated: float = 0.0
    transfer: Optional[Transfer] = None
    gdsf_h: float = 0.0   # greedy-dual score, maintained by the GDSF policy

    def record_use(self, now: float) -> None:
        """Bump recency and the exponentially-decayed frequency counter."""
        self.frequency = self.decayed_frequency(now) + 1.0
        self._freq_updated = now
        self.last_used = now

    def decayed_frequency(self, now: float) -> float:
        dt = max(0.0, now - self._freq_updated)
        return self.frequency * math.pow(0.5, dt / FREQUENCY_HALF_LIFE)


@dataclass
class AdapterManagerStats:
    """Telemetry for Figure 14 and the §5.2.5 hit-rate claim."""

    hits: int = 0                 # resident at admission
    overlapped: int = 0           # in flight at admission (prefetch overlap)
    misses: int = 0               # load started at admission
    evictions: int = 0
    evicted_bytes: int = 0
    loads: int = 0
    loaded_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.overlapped + self.misses
        return self.hits / total if total else float("nan")


class AdapterManagerBase:
    """Shared residency/transfer machinery; see module docstring."""

    def __init__(
        self,
        sim: Simulator,
        gpu: GpuDevice,
        link: PcieLink,
        registry: AdapterRegistry,
        prefetch_on_arrival: bool = True,
    ) -> None:
        self.sim = sim
        self.gpu = gpu
        self.link = link
        self.registry = registry
        self.prefetch_on_arrival = prefetch_on_arrival
        self.entries: dict[int, AdapterEntry] = {
            a.adapter_id: AdapterEntry(a.adapter_id, a.rank, a.size_bytes)
            for a in registry
        }
        self.stats = AdapterManagerStats()
        self._queued_needed: set[int] = set()
        self._ready_callbacks: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entry(self, adapter_id: int) -> AdapterEntry:
        return self.entries[adapter_id]

    def is_resident(self, adapter_id: int) -> bool:
        return self.entries[adapter_id].state is AdapterState.RESIDENT

    def is_loading(self, adapter_id: int) -> bool:
        return self.entries[adapter_id].state is AdapterState.LOADING

    def refcount(self, adapter_id: int) -> int:
        return self.entries[adapter_id].refcount

    def resident_bytes(self) -> int:
        return self.gpu.used("adapter") + self.gpu.used("adapter_cache")

    def idle_resident_ids(self) -> list[int]:
        """Resident adapters with no active users (eviction candidates)."""
        return [
            e.adapter_id for e in self.entries.values()
            if e.state is AdapterState.RESIDENT and e.refcount == 0
        ]

    def on_ready(self, callback: Callable[[int], None]) -> None:
        """Register an engine hook fired when an adapter load completes."""
        self._ready_callbacks.append(callback)

    def set_queued_needed(self, adapter_ids: Iterable[int]) -> None:
        """Scheduler tells us which adapters queued requests will need (§4.2.2)."""
        self._queued_needed = set(adapter_ids)

    # ------------------------------------------------------------------ #
    # Request lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_request_arrival(self, request: Request) -> None:
        """Record usage metadata and (optionally) prefetch for the queue."""
        aid = request.adapter_id
        if aid is None:
            return
        entry = self.entries[aid]
        entry.record_use(self.sim.now)
        if self.prefetch_on_arrival:
            self.prefetch(aid)

    def prefetch(self, adapter_id: int) -> bool:
        """Start loading an adapter into *free* memory (never evicts).

        Returns True if the adapter is resident, already in flight, or a load
        was started.
        """
        entry = self.entries[adapter_id]
        if entry.state is not AdapterState.MISSING:
            return True
        if not self.gpu.can_fit(entry.size_bytes):
            return False
        self._start_load(entry)
        return True

    def acquire(self, adapter_id: int) -> AdapterState:
        """Pin an adapter for an admitted request; load it if missing.

        The caller must have ensured room for the adapter (``make_room``)
        before calling.  Returns the adapter's state after the call —
        ``RESIDENT`` (a cache hit) or ``LOADING``.
        """
        entry = self.entries[adapter_id]
        entry.record_use(self.sim.now)
        if entry.state is AdapterState.RESIDENT:
            self.stats.hits += 1
            if entry.refcount == 0:
                # Idle cached copy becomes in-use: accounting moves only.
                self.gpu.move("adapter_cache", "adapter", entry.size_bytes)
            entry.refcount += 1
            return AdapterState.RESIDENT
        if entry.state is AdapterState.LOADING:
            self.stats.overlapped += 1
            entry.refcount += 1
            return AdapterState.LOADING
        self.stats.misses += 1
        self._start_load(entry)
        entry.refcount += 1
        return AdapterState.LOADING

    def release(self, adapter_id: int) -> None:
        """Unpin an adapter when its request finishes (or is squashed)."""
        entry = self.entries[adapter_id]
        if entry.refcount <= 0:
            raise RuntimeError(f"release of unpinned adapter {adapter_id}")
        entry.refcount -= 1
        if entry.refcount == 0 and entry.state is AdapterState.RESIDENT:
            self._handle_idle(entry)

    # ------------------------------------------------------------------ #
    # Memory reclamation
    # ------------------------------------------------------------------ #
    def make_room(
        self,
        needed_bytes: int,
        spare_queued: bool = False,
        exclude: Optional[set] = None,
    ) -> bool:
        """Evict idle adapters until ``needed_bytes`` fit in free memory.

        Eviction eligibility follows §4.2.2: only refcount-zero adapters;
        adapters needed by queued requests are spared when possible
        (``spare_queued``) and sacrificed only under pressure.  Adapters in
        ``exclude`` (e.g. the one the request being admitted uses) are never
        touched.  Returns True if enough bytes are now free.
        """
        if self.gpu.free_bytes >= needed_bytes:
            return True
        now = self.sim.now
        exclude = exclude or set()
        tiers: list[list[AdapterEntry]] = [[], []]
        for aid in self.idle_resident_ids():
            if aid in exclude:
                continue
            entry = self.entries[aid]
            tiers[0 if aid not in self._queued_needed else 1].append(entry)
        tier_list = tiers[:1] if spare_queued else tiers
        for tier in tier_list:
            for entry in self._eviction_order(tier, now):
                if self.gpu.free_bytes >= needed_bytes:
                    return True
                self._evict(entry)
        return self.gpu.free_bytes >= needed_bytes

    def evictable_bytes(self, include_queued: bool = True) -> int:
        total = 0
        for aid in self.idle_resident_ids():
            if not include_queued and aid in self._queued_needed:
                continue
            total += self.entries[aid].size_bytes
        return total

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _start_load(self, entry: AdapterEntry) -> None:
        """Reserve bytes and put the transfer on the link."""
        self.gpu.reserve("adapter", entry.size_bytes)
        entry.state = AdapterState.LOADING
        self.stats.loads += 1
        self.stats.loaded_bytes += entry.size_bytes

        def _done(xfer: Transfer, entry: AdapterEntry = entry) -> None:
            self._on_load_complete(entry)

        if isinstance(self.gpu, TensorParallelGroup):
            entry.transfer = self.gpu.submit_adapter_load(
                self.link, entry.size_bytes, callback=_done, tag=f"adapter-{entry.adapter_id}"
            )
        else:
            entry.transfer = self.link.submit(
                entry.size_bytes, callback=_done, tag=f"adapter-{entry.adapter_id}"
            )

    def _on_load_complete(self, entry: AdapterEntry) -> None:
        entry.state = AdapterState.RESIDENT
        entry.transfer = None
        if entry.refcount == 0:
            self._handle_idle(entry)
        for callback in self._ready_callbacks:
            callback(entry.adapter_id)

    def _evict(self, entry: AdapterEntry) -> None:
        if entry.refcount != 0 or entry.state is not AdapterState.RESIDENT:
            raise RuntimeError(f"cannot evict pinned/non-resident adapter {entry.adapter_id}")
        self.gpu.release("adapter_cache", entry.size_bytes)
        entry.state = AdapterState.MISSING
        self.stats.evictions += 1
        self.stats.evicted_bytes += entry.size_bytes
        self._on_evicted(entry)

    # -- subclass hooks -------------------------------------------------- #
    def _handle_idle(self, entry: AdapterEntry) -> None:
        """Called when a resident adapter's refcount drops to zero."""
        raise NotImplementedError

    def _eviction_order(self, candidates: list[AdapterEntry], now: float) -> list[AdapterEntry]:
        """Order eviction candidates, first-to-evict first."""
        raise NotImplementedError

    def _on_evicted(self, entry: AdapterEntry) -> None:
        """Policy hook after an eviction (e.g. GDSF aging)."""


class SloraAdapterManager(AdapterManagerBase):
    """The S-LoRA baseline: fetch on demand, prefetch for the queue, no cache.

    An adapter whose last user finishes is discarded immediately *unless* a
    queued request needs it (the prefetch-retention the baseline performs);
    retained-idle adapters are evicted in LRU order under memory pressure.
    """

    def _handle_idle(self, entry: AdapterEntry) -> None:
        if entry.adapter_id in self._queued_needed:
            self.gpu.move("adapter", "adapter_cache", entry.size_bytes)
            return
        self.gpu.release("adapter", entry.size_bytes)
        entry.state = AdapterState.MISSING

    def _eviction_order(self, candidates: list[AdapterEntry], now: float) -> list[AdapterEntry]:
        return sorted(candidates, key=lambda e: e.last_used)
